//! Property-based tests for the aggregating funnel: uniqueness and
//! accounting hold for arbitrary shard counts, window lengths, thread
//! counts and per-thread operation counts.

use proptest::prelude::*;
use sec_sync::funnel::AggregatingFunnel;
use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn funnel_values_unique_and_accounted(
        shards in 1usize..5,
        window in 0u32..200,
        threads in 1usize..5,
        per_thread in 1usize..300,
    ) {
        let funnel = Arc::new(AggregatingFunnel::new(shards, window));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = Arc::clone(&funnel);
                thread::spawn(move || {
                    (0..per_thread).map(|_| f.fetch_add_one(t)).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                prop_assert!(all.insert(v), "duplicate funnel value {v}");
            }
        }
        prop_assert_eq!(all.len(), threads * per_thread);
        // Gaps allowed, undercounting not.
        prop_assert!(funnel.load() >= (threads * per_thread) as u64);
        // Values never exceed the central counter.
        let max = all.iter().max().copied().unwrap_or(0);
        prop_assert!(max < funnel.load());
    }

    #[test]
    fn funnel_single_thread_is_gap_free(
        shards in 1usize..5,
        n in 1usize..500,
    ) {
        // One thread cannot be descheduled past its own generation, so
        // its tickets are never abandoned: values are exactly 0..n.
        let funnel = AggregatingFunnel::new(shards, 0);
        let got: Vec<u64> = (0..n).map(|_| funnel.fetch_add_one(0)).collect();
        for (i, v) in got.iter().enumerate() {
            prop_assert_eq!(*v, i as u64);
        }
        prop_assert_eq!(funnel.load(), n as u64);
    }
}
