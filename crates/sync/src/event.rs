//! Spin-then-park waiting: the event subsystem behind every blocking
//! wait in the SEC families (DESIGN.md §11).
//!
//! SEC is a *blocking* protocol: a thread that announced into a batch
//! waits on its batch's freezer (for the batch-pointer swap) or on its
//! batch's combiner (for the `applied` flag). Pure spin loops on those
//! flags are fine while threads ≤ cores, but once the host is
//! oversubscribed the awaited thread is probably *descheduled*, and a
//! spinning waiter burns the very CPU time the waker needs —
//! `yield_now` storms merely move the problem into the scheduler. The
//! cure is the classic three-stage discipline: spin briefly (the wait
//! is usually nanoseconds), then get out of the way entirely with
//! [`std::thread::park`], and have the waker wake exactly the
//! registered waiters. Dependency-free and `std`-only — a futex in
//! spirit, built from `park`/`unpark` tokens.
//!
//! Three pieces:
//!
//! * [`WaitPolicy`] — the knob: [`Spin`](WaitPolicy::Spin),
//!   [`SpinThenYield`](WaitPolicy::SpinThenYield) (the pre-parking
//!   behaviour of this code base), or
//!   [`SpinThenPark`](WaitPolicy::SpinThenPark) (the default);
//! * [`WaitCell`] — the single-waiter primitive: one event, one
//!   parked thread, a strict no-lost-wakeup handshake;
//! * [`WaitQueue`] — the multi-waiter, *keyed* generalization the SEC
//!   aggregators embed: waiters register under a key (the batch
//!   address), wakers wake exactly the registrations of their key.
//!
//! # The no-lost-wakeup handshake
//!
//! A wakeup is lost when the waiter parks *after* the waker looked for
//! waiters, having checked the condition *before* the waker set it.
//! Both primitives close that window the same way:
//!
//! * the **waiter** registers itself first, then re-checks the
//!   condition, and only then parks;
//! * the **waker** makes the condition true first (with at least
//!   `Release` ordering), then looks for registered waiters.
//!
//! With a `SeqCst` fence between each side's store and load (the
//! Dekker store→load pattern), one of the two must observe the other:
//! either the waker sees the registration and unparks, or the waiter's
//! re-check sees the condition and never parks. Park tokens make the
//! residual races benign: an `unpark` delivered before the `park`
//! makes the park return immediately, and a stray token at most causes
//! one spurious wakeup later — every park loop re-checks its condition
//! and [`WaitStats`] counts those events.

use crate::{Backoff, TtasLock};
use core::fmt;
use core::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread::{self, Thread};

/// How a blocking wait behaves after its initial optimistic check.
///
/// This is the `SecConfig::wait` knob (park is the default): it governs
/// the stack/queue/deque/pool waits on batch freezing and combining.
/// Anonymous waits with no registerable waker (an elimination partner
/// publishing its slot, the queue's empty-rendezvous window) degrade
/// parking to yielding — see [`spin_wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Busy-spin with exponential backoff, never giving the slice back
    /// to the OS. Optimal when threads ≤ cores and waits are short;
    /// pathological when oversubscribed (the `oversub` bench
    /// quantifies by how much).
    Spin,
    /// Spin briefly, then `yield_now` each round — the pre-parking
    /// behaviour of this code base ([`Backoff::snooze`] forever).
    /// Better than spinning when oversubscribed, but every waiter
    /// stays runnable, so the scheduler round-robins through threads
    /// that have nothing to do.
    SpinThenYield,
    /// Spin through the backoff's bounded segment (whose final step
    /// donates the slice once — on a saturated host that donation is
    /// usually the waker's schedule-in), then park the thread until
    /// the freezer/combiner wakes it. Parked waiters leave the run
    /// queue entirely; the waker pays one `unpark` per registered
    /// waiter of its batch.
    SpinThenPark {
        /// Extra backoff rounds before parking, on top of the
        /// backoff's own bounded segment: the spin phase ends once
        /// the backoff is exhausted ([`Backoff::is_completed`])
        /// **and** at least this many extra rounds have run. `0`
        /// parks as soon as the backoff completes; the no-lost-wakeup
        /// test battery forces it to maximize park traffic.
        spin_rounds: u32,
    },
}

impl WaitPolicy {
    /// Default pre-park rounds for [`WaitPolicy::spin_then_park`],
    /// counted *after* the [`Backoff`]'s own bounded segment (which
    /// [`WaitQueue::wait_until`] always runs to exhaustion first):
    /// zero — a waiter parks as soon as the backoff completes (~63
    /// pause iterations and one slice donation). Raising this buys
    /// more pre-park slice donations, which keeps short waits off the
    /// park/unpark syscall path but also hides exactly the waits the
    /// parking counters exist to expose; the `oversub` ablation showed
    /// the throughput difference on a saturated host to be within
    /// noise either way, so the default prefers the observable
    /// behaviour.
    pub const DEFAULT_SPIN_ROUNDS: u32 = 0;

    /// The default parking policy ([`SpinThenPark`](Self::SpinThenPark)
    /// with [`DEFAULT_SPIN_ROUNDS`](Self::DEFAULT_SPIN_ROUNDS)).
    pub const fn spin_then_park() -> Self {
        WaitPolicy::SpinThenPark {
            spin_rounds: Self::DEFAULT_SPIN_ROUNDS,
        }
    }

    /// `true` for [`WaitPolicy::SpinThenPark`].
    pub fn parks(&self) -> bool {
        matches!(self, WaitPolicy::SpinThenPark { .. })
    }

    /// Short label for CSV/series naming (`spin`, `yield`, `park`).
    pub fn label(&self) -> &'static str {
        match self {
            WaitPolicy::Spin => "spin",
            WaitPolicy::SpinThenYield => "yield",
            WaitPolicy::SpinThenPark { .. } => "park",
        }
    }
}

impl Default for WaitPolicy {
    /// Parking is the default: it is never worse than yielding by more
    /// than the spin phase, and oversubscribed it is the only policy
    /// whose waiters cost nothing.
    fn default() -> Self {
        Self::spin_then_park()
    }
}

impl fmt::Display for WaitPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Relaxed park/wake counters, embeddable wherever waits happen (the
/// SEC structures surface them through `SecStats` → `BatchReport` →
/// the bench CSV columns).
#[derive(Debug, Default)]
pub struct WaitStats {
    parks: AtomicU64,
    unparks: AtomicU64,
    spurious: AtomicU64,
}

impl WaitStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times a thread parked ([`std::thread::park`] calls).
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    /// Unparks issued by wakers to registered waiters.
    pub fn unparks(&self) -> u64 {
        self.unparks.load(Ordering::Relaxed)
    }

    /// Wakeups after which the awaited condition was still false
    /// (stray park tokens, cross-batch wakes); the waiter re-parked.
    pub fn spurious(&self) -> u64 {
        self.spurious.load(Ordering::Relaxed)
    }

    /// Resets all counters (between measurement phases).
    pub fn reset(&self) {
        self.parks.store(0, Ordering::Relaxed);
        self.unparks.store(0, Ordering::Relaxed);
        self.spurious.store(0, Ordering::Relaxed);
    }
}

/// Policy-aware wait for conditions with **no registerable waker**: the
/// publisher doesn't know a wait queue to notify (an announcer storing
/// its elimination slot, an enqueue combiner closing the queue's
/// swing-then-link gap). Such waits are bounded by another thread's
/// few-instruction progress, so [`WaitPolicy::SpinThenPark`] degrades
/// to yielding here — parking without a waker would hang, and taxing
/// every publish with a notify would put a fence on the hot path.
pub fn spin_wait<F: FnMut() -> bool>(policy: WaitPolicy, mut ready: F) {
    let mut backoff = Backoff::new();
    loop {
        if ready() {
            return;
        }
        match policy {
            WaitPolicy::Spin => backoff.spin(),
            WaitPolicy::SpinThenYield | WaitPolicy::SpinThenPark { .. } => backoff.snooze(),
        }
    }
}

/// A single-waiter event cell: at most one thread waits at a time; any
/// thread may notify. The minimal no-lost-wakeup building block — the
/// parking test battery proves the handshake on this primitive, and
/// [`WaitQueue`] is its keyed multi-waiter generalization.
///
/// # Examples
///
/// ```
/// use sec_sync::event::WaitCell;
/// use std::sync::Arc;
///
/// let cell = Arc::new(WaitCell::new());
/// let c = Arc::clone(&cell);
/// let waiter = std::thread::spawn(move || c.wait());
/// cell.notify();
/// waiter.join().unwrap();
/// ```
pub struct WaitCell {
    /// The event flag; consumed (reset) by the waiter that observes it.
    notified: AtomicBool,
    /// The registered waiter. A spin lock keeps the slot handoff
    /// race-free without allocating; it is never held across a park.
    waiter: TtasLock<Option<Thread>>,
}

impl WaitCell {
    /// Creates an un-notified cell.
    pub fn new() -> Self {
        Self {
            notified: AtomicBool::new(false),
            waiter: TtasLock::new(None),
        }
    }

    /// Blocks until [`notify`](Self::notify), consuming the
    /// notification. Returns the number of times the thread parked —
    /// `0` when the notification had already arrived (the
    /// wake-before-park interleaving); a plain park-then-genuine-wake
    /// returns `1`; anything higher means spurious wakeups were
    /// absorbed along the way.
    pub fn wait(&self) -> u64 {
        // Fast path: the event already fired.
        if self.notified.swap(false, Ordering::Acquire) {
            return 0;
        }
        // Register, then re-check — the waiter half of the handshake.
        *self.waiter.lock() = Some(thread::current());
        fence(Ordering::SeqCst);
        let mut parks = 0;
        loop {
            if self.notified.swap(false, Ordering::Acquire) {
                self.waiter.lock().take();
                return parks;
            }
            thread::park();
            parks += 1;
        }
    }

    /// Fires the event: sets the flag, then unparks the registered
    /// waiter if there is one — the waker half of the handshake (flag
    /// first, *then* look for the waiter).
    pub fn notify(&self) {
        self.notified.store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        if let Some(t) = self.waiter.lock().take() {
            t.unpark();
        }
    }

    /// `true` if a notification is pending (diagnostic).
    pub fn is_notified(&self) -> bool {
        self.notified.load(Ordering::Acquire)
    }
}

impl Default for WaitCell {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for WaitCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitCell")
            .field("notified", &self.is_notified())
            .finish()
    }
}

/// A keyed multi-waiter park queue — one per SEC aggregator, shared by
/// the generations of batches that pass through it.
///
/// Waiters register under a `key` (the batch address) and park;
/// [`notify_key`](Self::notify_key) wakes exactly the registrations of
/// that key. Keying by address makes wake filtering precise without
/// tying the queue's lifetime to the (recycled, destructor-less) batch
/// blocks: the queue lives in the long-lived aggregator, so nothing
/// here is ever reclaimed while referenced. Address reuse across batch
/// generations can at worst deliver a wake to a same-address waiter of
/// another generation — a spurious wakeup, absorbed by the re-check
/// loop and counted in [`WaitStats`].
///
/// The registration list is a `Vec` behind a spin lock: registration
/// is strictly slow-path (a waiter has already spun through its
/// policy's spin phase), the list is bounded by the structure's thread
/// capacity, and the `Vec` keeps its allocation across generations —
/// steady-state parking allocates nothing.
pub struct WaitQueue {
    waiters: TtasLock<Vec<(usize, Thread)>>,
    /// Mirror of `waiters.len()`: lets `notify_key` skip the lock when
    /// nobody is registered (the common case — wakers outnumber parks
    /// by orders of magnitude under light load).
    registered: AtomicUsize,
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            waiters: TtasLock::new(Vec::new()),
            registered: AtomicUsize::new(0),
        }
    }

    /// Number of currently registered waiters (diagnostic).
    pub fn registered(&self) -> usize {
        self.registered.load(Ordering::Relaxed)
    }

    fn register(&self, key: usize) {
        let mut ws = self.waiters.lock();
        ws.push((key, thread::current()));
        self.registered.store(ws.len(), Ordering::Relaxed);
    }

    /// Removes this thread's registration under `key`, if a waker has
    /// not already consumed it.
    fn deregister(&self, key: usize) {
        let me = thread::current().id();
        let mut ws = self.waiters.lock();
        if let Some(i) = ws.iter().position(|(k, t)| *k == key && t.id() == me) {
            ws.swap_remove(i);
            self.registered.store(ws.len(), Ordering::Relaxed);
        }
    }

    /// Blocks until `ready()` returns true, following `policy`.
    ///
    /// The contract with the waker: whoever makes `ready()` true must
    /// publish that write (at least `Release`) **before** calling
    /// [`notify_key`](Self::notify_key) with the same `key`. Under that
    /// contract no wakeup is lost (see the module docs); `ready` must
    /// be safe to call repeatedly and from spurious wakeups.
    pub fn wait_until<F: FnMut() -> bool>(
        &self,
        key: usize,
        policy: WaitPolicy,
        stats: &WaitStats,
        mut ready: F,
    ) {
        // Spin phase (all policies; Spin/SpinThenYield never leave it).
        let mut backoff = Backoff::new();
        let mut extra = 0u32;
        loop {
            if ready() {
                return;
            }
            match policy {
                WaitPolicy::Spin => backoff.spin(),
                WaitPolicy::SpinThenYield => backoff.snooze(),
                WaitPolicy::SpinThenPark { spin_rounds } => {
                    // `is_completed` bounds the spin phase: the
                    // backoff spins through its exponential segment
                    // and hands the slice over once (its first yield
                    // often *is* the waker's schedule-in on a saturated
                    // host — measurably cheaper than an immediate
                    // park/unpark round trip); after that, plus the
                    // configured extra rounds, the waiter parks.
                    if !backoff.is_completed() || extra < spin_rounds {
                        backoff.snooze();
                        extra = extra.saturating_add(u32::from(backoff.is_completed()));
                    } else {
                        break;
                    }
                }
            }
        }
        // Park phase (SpinThenPark only): register → fence → re-check
        // → park, re-registering after every spurious wakeup.
        loop {
            self.register(key);
            fence(Ordering::SeqCst);
            if ready() {
                self.deregister(key);
                return;
            }
            stats.parks.fetch_add(1, Ordering::Relaxed);
            thread::park();
            self.deregister(key);
            if ready() {
                return;
            }
            stats.spurious.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Wakes every waiter registered under `key`. Call only *after*
    /// publishing the write that makes the waiters' condition true.
    ///
    /// Unparks happen while the registration lock is held: `unpark`
    /// never blocks, the critical section is bounded by the batch's
    /// waiter count, and the only threads that can contend for the
    /// lock are already on their slow path — the alternative (drain
    /// into a buffer, unpark outside) would put an allocation on the
    /// waker's critical path, which this code base keeps
    /// allocation-free (DESIGN.md §10).
    pub fn notify_key(&self, key: usize, stats: &WaitStats) {
        // Dekker pairing with the waiter's register→fence→re-check: if
        // the waiter's registration is not visible here, our
        // condition write is visible to its re-check.
        fence(Ordering::SeqCst);
        if self.registered.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut woken = 0u64;
        {
            let mut ws = self.waiters.lock();
            let mut i = 0;
            while i < ws.len() {
                if ws[i].0 == key {
                    ws.swap_remove(i).1.unpark();
                    woken += 1;
                } else {
                    i += 1;
                }
            }
            self.registered.store(ws.len(), Ordering::Relaxed);
        }
        if woken > 0 {
            stats.unparks.fetch_add(woken, Ordering::Relaxed);
        }
    }

    /// Wakes **all** registered waiters regardless of key (teardown /
    /// tests).
    pub fn notify_all(&self, stats: &WaitStats) {
        fence(Ordering::SeqCst);
        if self.registered.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut woken = 0u64;
        {
            let mut ws = self.waiters.lock();
            for (_, t) in ws.drain(..) {
                t.unpark();
                woken += 1;
            }
            self.registered.store(0, Ordering::Relaxed);
        }
        stats.unparks.fetch_add(woken, Ordering::Relaxed);
    }
}

impl Default for WaitQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for WaitQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitQueue")
            .field("registered", &self.registered())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn policy_default_is_park() {
        assert!(WaitPolicy::default().parks());
        assert_eq!(WaitPolicy::default().label(), "park");
        assert_eq!(WaitPolicy::Spin.label(), "spin");
        assert_eq!(WaitPolicy::SpinThenYield.label(), "yield");
        assert_eq!(format!("{}", WaitPolicy::Spin), "spin");
    }

    #[test]
    fn cell_wake_before_park_returns_immediately() {
        let cell = WaitCell::new();
        cell.notify();
        assert!(cell.is_notified());
        assert_eq!(cell.wait(), 0, "pre-delivered event: no park");
        assert!(!cell.is_notified(), "wait consumed the notification");
    }

    #[test]
    fn cell_park_before_wake() {
        let cell = Arc::new(WaitCell::new());
        let c = Arc::clone(&cell);
        let waiter = thread::spawn(move || c.wait());
        thread::yield_now();
        cell.notify();
        waiter.join().unwrap();
    }

    #[test]
    fn queue_wakes_only_matching_key() {
        let q = WaitQueue::new();
        let stats = WaitStats::new();
        let flag = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                q.wait_until(
                    7,
                    WaitPolicy::SpinThenPark { spin_rounds: 0 },
                    &stats,
                    || flag.load(Ordering::Acquire),
                );
            });
            // A non-matching notify must not satisfy the waiter: its
            // condition stays false, so at worst it re-parks.
            q.notify_key(99, &stats);
            flag.store(true, Ordering::Release);
            q.notify_key(7, &stats);
        });
        assert_eq!(q.registered(), 0, "waiter deregistered on exit");
    }

    #[test]
    fn spin_wait_terminates_under_all_policies() {
        for policy in [
            WaitPolicy::Spin,
            WaitPolicy::SpinThenYield,
            WaitPolicy::spin_then_park(),
        ] {
            let flag = Arc::new(AtomicBool::new(false));
            let f = Arc::clone(&flag);
            let setter = thread::spawn(move || {
                thread::yield_now();
                f.store(true, Ordering::Release);
            });
            spin_wait(policy, || flag.load(Ordering::Acquire));
            setter.join().unwrap();
        }
    }

    #[test]
    fn stats_reset_zeroes() {
        let s = WaitStats::new();
        s.parks.fetch_add(3, Ordering::Relaxed);
        s.unparks.fetch_add(2, Ordering::Relaxed);
        s.spurious.fetch_add(1, Ordering::Relaxed);
        s.reset();
        assert_eq!((s.parks(), s.unparks(), s.spurious()), (0, 0, 0));
    }
}
