//! Timestamp source for the TSI (timestamped-interval) stack.
//!
//! The paper's TSI baseline [Dodds et al., POPL '15] tags every pushed
//! element with an *interval* `[start, end]` obtained from two reads of
//! the x86 `RDTSCP` instruction separated by a configurable delay. Two
//! elements with non-overlapping intervals are ordered; overlapping
//! intervals mean the pushes were concurrent and may be returned in
//! either order.
//!
//! On hosts without a TSC we substitute a monotonic software clock
//! (documented in DESIGN.md §3): `Instant`-based nanoseconds, strictly
//! monotonic per process. The *algorithmic* behaviour of TSI — pop-side
//! scans and interval-overlap tests — is identical under either source.

use core::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A point in `TscClock` time (opaque monotonic ticks).
pub type Timestamp = u64;

/// Monotonic timestamp source: `RDTSC` on x86_64, software elsewhere.
///
/// # Examples
///
/// ```
/// use sec_sync::TscClock;
/// let clock = TscClock::new();
/// let a = clock.now();
/// let b = clock.now();
/// assert!(b >= a);
/// ```
#[derive(Debug)]
pub struct TscClock {
    /// Origin for the software fallback (also used to make x86 values
    /// small-ish, which helps debugging; correctness needs only
    /// monotonicity).
    origin: Instant,
    /// Fallback tie-breaker: guarantees strict monotonicity even if the
    /// OS clock's resolution is coarse.
    last: AtomicU64,
}

impl TscClock {
    /// Creates a new clock. All timestamps from one clock are mutually
    /// comparable; do not compare timestamps across clocks.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            last: AtomicU64::new(0),
        }
    }

    /// Reads the current timestamp.
    #[inline]
    pub fn now(&self) -> Timestamp {
        #[cfg(target_arch = "x86_64")]
        {
            // Safety: `_rdtsc` has no preconditions; it is available on
            // every x86_64 CPU.
            unsafe { core::arch::x86_64::_rdtsc() }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.software_now()
        }
    }

    /// Software clock: monotonic nanoseconds with an atomic max so two
    /// calls never return the same (or decreasing) values across threads
    /// observing each other.
    #[allow(dead_code)] // used on non-x86_64; kept testable everywhere
    fn software_now(&self) -> Timestamp {
        let raw = self.origin.elapsed().as_nanos() as u64;
        let mut prev = self.last.load(Ordering::Relaxed);
        loop {
            let next = raw.max(prev + 1);
            match self
                .last
                .compare_exchange_weak(prev, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return next,
                Err(p) => prev = p,
            }
        }
    }

    /// Takes an *interval* timestamp: two clock reads separated by
    /// `delay_ticks` iterations of a pause loop.
    ///
    /// A longer delay widens intervals, which raises the chance that a
    /// concurrent pop's interval overlaps a push's interval — TSI's
    /// analogue of elimination. The paper uses the TSI benchmark's
    /// default delay; our TSI implementation exposes it as a tunable.
    #[inline]
    pub fn interval(&self, delay_ticks: u32) -> (Timestamp, Timestamp) {
        let start = self.now();
        for _ in 0..delay_ticks {
            core::hint::spin_loop();
        }
        let end = self.now();
        (start, end.max(start))
    }
}

impl TscClock {
    /// Measures how long one clock tick is in wall-clock nanoseconds.
    ///
    /// Spins for roughly a millisecond bracketing the tick counter with
    /// two `Instant` reads — long enough to average out the measurement
    /// jitter of the bracket itself, short enough to be paid once at
    /// trace-recorder construction. On the software fallback (ticks
    /// *are* nanoseconds) the result comes out as ≈ 1.0 naturally.
    pub fn calibrate(&self) -> Calibration {
        let wall = Instant::now();
        let t0 = self.now();
        while wall.elapsed() < std::time::Duration::from_millis(1) {
            core::hint::spin_loop();
        }
        let ticks = self.now().saturating_sub(t0);
        let ns = wall.elapsed().as_nanos() as u64;
        let ns_per_tick = if ticks == 0 {
            1.0 // degenerate clock (or time travel); treat ticks as ns
        } else {
            ns as f64 / ticks as f64
        };
        Calibration { ns_per_tick }
    }
}

/// The tick→nanosecond conversion for one [`TscClock`], measured by
/// [`TscClock::calibrate`]. Timestamps are meaningful only relative to
/// the clock that produced them; a `Calibration` is likewise tied to
/// its clock (TSC frequency differs across hosts).
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    ns_per_tick: f64,
}

impl Calibration {
    /// Nanoseconds per clock tick (≈ 1.0 on the software fallback,
    /// ≈ 1/GHz on an invariant-TSC x86).
    pub fn ns_per_tick(&self) -> f64 {
        self.ns_per_tick
    }

    /// Converts a tick *delta* to nanoseconds.
    #[inline]
    pub fn ticks_to_ns(&self, ticks: u64) -> u64 {
        (ticks as f64 * self.ns_per_tick) as u64
    }

    /// Converts a tick *delta* to fractional microseconds (the unit of
    /// Chrome-trace `ts`/`dur` fields).
    #[inline]
    pub fn ticks_to_us(&self, ticks: u64) -> f64 {
        ticks as f64 * self.ns_per_tick / 1_000.0
    }
}

impl Default for TscClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn now_is_monotonic_single_thread() {
        let c = TscClock::new();
        let mut prev = c.now();
        for _ in 0..1_000 {
            let t = c.now();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn software_clock_is_strictly_monotonic() {
        let c = TscClock::new();
        let mut prev = c.software_now();
        for _ in 0..1_000 {
            let t = c.software_now();
            assert!(t > prev, "software clock must be strictly monotonic");
            prev = t;
        }
    }

    #[test]
    fn software_clock_is_monotonic_across_threads() {
        let c = Arc::new(TscClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let mut prev = 0;
                    for _ in 0..1_000 {
                        let t = c.software_now();
                        assert!(t > prev);
                        prev = t;
                    }
                    prev
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn calibration_is_sane() {
        let c = TscClock::new();
        let cal = c.calibrate();
        // A tick is somewhere between a tenth of a nanosecond (10 GHz
        // TSC) and a microsecond (pathologically coarse fallback).
        assert!(cal.ns_per_tick() > 0.0);
        assert!(cal.ns_per_tick() < 1_000.0);
        assert_eq!(cal.ticks_to_ns(0), 0);
        let ns = cal.ticks_to_ns(1_000_000);
        assert!(ns > 0);
        let us = cal.ticks_to_us(1_000_000);
        assert!((us - ns as f64 / 1_000.0).abs() < 1.0);
    }

    #[test]
    fn interval_is_well_formed() {
        let c = TscClock::new();
        let (s, e) = c.interval(0);
        assert!(e >= s);
        let (s2, e2) = c.interval(100);
        assert!(e2 >= s2);
        assert!(s2 >= s);
    }

    #[test]
    fn longer_delay_widens_intervals_on_average() {
        let c = TscClock::new();
        let width = |delay| {
            (0..64)
                .map(|_| {
                    let (s, e) = c.interval(delay);
                    e - s
                })
                .sum::<u64>()
        };
        // Not a strict guarantee on noisy machines, but 0 vs 10_000
        // pause iterations differ by orders of magnitude in practice.
        assert!(width(10_000) > width(0));
    }
}
