//! Cache-line padding to avoid false sharing.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line.
///
/// Hot shared variables that are written by different threads (per-thread
/// reservation slots, shard counters, the combiner lock word, …) must not
/// share a cache line, otherwise every write by one thread invalidates the
/// line in every other core's cache ("false sharing"). Wrapping each such
/// value in `CachePadded` gives it a line of its own.
///
/// We use 128-byte alignment on x86_64 and aarch64: modern Intel parts
/// prefetch cache lines in adjacent pairs (the "spatial prefetcher"), and
/// Apple/ARM server parts have 128-byte lines outright, so 64-byte padding
/// is not enough to fully decouple neighbours. Other targets use 64 bytes.
///
/// # Examples
///
/// ```
/// use sec_sync::CachePadded;
/// use std::sync::atomic::AtomicUsize;
///
/// struct Shards {
///     counters: Vec<CachePadded<AtomicUsize>>,
/// }
/// let s = Shards { counters: (0..4).map(|_| CachePadded::new(AtomicUsize::new(0))).collect() };
/// assert_eq!(std::mem::align_of_val(&*s.counters[0]) <= 128, true);
/// ```
#[cfg_attr(
    any(
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "powerpc64"
    ),
    repr(align(128))
)]
#[cfg_attr(
    not(any(
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "powerpc64"
    )),
    repr(align(64))
)]
#[derive(Default)]
pub struct CachePadded<T> {
    value: T,
}

// `CachePadded` adds no sharing of its own; it inherits `T`'s thread-safety.
unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::mem;

    #[test]
    fn alignment_is_at_least_one_cache_line() {
        assert!(mem::align_of::<CachePadded<u8>>() >= 64);
        assert!(mem::size_of::<CachePadded<u8>>() >= 64);
    }

    #[test]
    fn two_padded_values_never_share_a_line() {
        let pair = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn from_and_debug() {
        let p: CachePadded<i32> = 7.into();
        assert_eq!(format!("{p:?}"), "CachePadded(7)");
    }

    #[test]
    fn clone_copies_value() {
        let p = CachePadded::new(vec![1, 2, 3]);
        let q = p.clone();
        assert_eq!(*q, vec![1, 2, 3]);
    }
}
