//! Bounded exponential backoff for spin loops.

use core::fmt;
use core::hint;

/// Exponential backoff for contended retry loops and blocking waits.
///
/// Two distinct situations call for backoff in this code base and they
/// need different treatment:
///
/// 1. **Optimistic retries** (a failed CAS on `stackTop`): back off a
///    short, exponentially growing number of [`hint::spin_loop`]
///    iterations so that competing threads spread out in time
///    ([`Self::spin`]).
/// 2. **Blocking waits** (a SEC thread waiting for the freezer or the
///    combiner of its batch): the awaited thread may be *descheduled* —
///    on an oversubscribed machine it almost certainly is — so after a
///    few spin rounds the waiter must get out of the scheduler's way
///    ([`Self::snooze`] yields; the [`crate::event`] subsystem goes
///    further and *parks*). Blocking waits in the SEC families do not
///    call `snooze` in raw loops anymore: they run through
///    [`crate::event::WaitQueue::wait_until`] or
///    [`crate::event::spin_wait`], which use `Backoff` as the spin
///    engine of their policy-selected spin phase and, under
///    `WaitPolicy::SpinThenPark`, hand over to `thread::park` once the
///    backoff completes.
///
/// The implementation follows the shape used throughout the concurrency
/// literature (and by `crossbeam_utils::Backoff`, reimplemented here to
/// keep the substrate self-contained): the spin count doubles with each
/// step up to `2^SPIN_LIMIT`, after which `snooze` switches to
/// [`std::thread::yield_now`].
///
/// # Examples
///
/// ```
/// use sec_sync::Backoff;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// fn wait_until_set(flag: &AtomicBool) {
///     let mut backoff = Backoff::new();
///     while !flag.load(Ordering::Acquire) {
///         backoff.snooze(); // yields once the flag stays unset for a while
///     }
/// }
/// # wait_until_set(&AtomicBool::new(true));
/// ```
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Below this step, `snooze` busy-spins; at or above it, it yields.
    const SPIN_LIMIT: u32 = 6;
    /// Hard cap so `spin` never exceeds `2^YIELD_LIMIT` pause iterations.
    const YIELD_LIMIT: u32 = 10;

    /// Creates a backoff in its initial (shortest-wait) state.
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets to the initial state. Call after the awaited condition was
    /// observed, before reusing the value for an unrelated wait.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Backs off in a *lock-free* retry loop (e.g. after a failed CAS).
    ///
    /// Never yields to the OS: the caller is not blocked on another
    /// specific thread, it merely wants to decorrelate retries.
    pub fn spin(&mut self) {
        let rounds = 1u32 << self.step.min(Self::SPIN_LIMIT);
        for _ in 0..rounds {
            hint::spin_loop();
        }
        if self.step <= Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Backs off in a *blocking* wait (the awaited thread must run for
    /// the condition to become true).
    ///
    /// Starts as `spin`, but once the condition has stayed false for
    /// `2^SPIN_LIMIT` iterations it yields the time slice, letting the
    /// freezer/combiner/writer run even on a single hardware thread.
    pub fn snooze(&mut self) {
        if self.step < Self::SPIN_LIMIT {
            let rounds = 1u32 << self.step;
            for _ in 0..rounds {
                hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// `true` once the exponential spin segment is exhausted — from
    /// here on, `snooze` yields (and `spin` stays at its cap).
    ///
    /// Callers that can fall back to a different strategy use this to
    /// bound their spin phase. The parking subsystem is the production
    /// consumer: [`crate::event::WaitQueue::wait_until`] under
    /// `WaitPolicy::SpinThenPark` spins until the backoff completes
    /// (plus the policy's configured extra rounds) and only then parks
    /// the thread.
    pub fn is_completed(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff")
            .field("step", &self.step)
            .field("is_completed", &self.is_completed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn starts_incomplete_and_completes_after_snoozes() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=Backoff::SPIN_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut b = Backoff::new();
        for _ in 0..10 {
            b.snooze();
        }
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_never_completes() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        // `spin` saturates at SPIN_LIMIT + 1 and stays "incomplete" from
        // the snooze perspective only if the step stopped incrementing.
        // What matters is that it terminates quickly; assert the bound.
        assert!(b.step <= Backoff::SPIN_LIMIT + 1);
    }

    #[test]
    fn snooze_makes_progress_when_oversubscribed() {
        // A waiter and a setter on (potentially) one core: the waiter
        // must yield, otherwise this test would time out on 1 CPU.
        let flag = Arc::new(AtomicBool::new(false));
        let setter = {
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                thread::yield_now();
                flag.store(true, Ordering::Release);
            })
        };
        let mut b = Backoff::new();
        while !flag.load(Ordering::Acquire) {
            b.snooze();
        }
        setter.join().unwrap();
    }

    #[test]
    fn debug_output_mentions_step() {
        let b = Backoff::new();
        assert!(format!("{b:?}").contains("step"));
    }
}
