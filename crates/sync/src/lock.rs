//! A test-and-test-and-set spin lock.
//!
//! The flat-combining baseline needs a *try-lock* with the cheapest
//! possible uncontended path: a thread that fails to become the combiner
//! must not wait for the lock — it parks on its publication record
//! instead. `std::sync::Mutex`/`parking_lot` would block, so FC papers
//! (and the original FC code) use a raw TAS word. We implement the
//! classic TTAS refinement: read the word until it looks free, then try
//! the atomic swap, so failed acquisitions stay in the local cache.

use crate::Backoff;
use core::cell::UnsafeCell;
use core::fmt;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spin lock protecting a `T`.
///
/// # Examples
///
/// ```
/// use sec_sync::TtasLock;
///
/// let lock = TtasLock::new(0u64);
/// if let Some(mut g) = lock.try_lock() {
///     *g += 1;
/// }
/// assert_eq!(*lock.lock(), 1);
/// ```
pub struct TtasLock<T: ?Sized> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// Safety: the lock provides the mutual exclusion required to hand out
// `&mut T` across threads; `T: Send` suffices (same bounds as `Mutex`).
unsafe impl<T: ?Sized + Send> Send for TtasLock<T> {}
unsafe impl<T: ?Sized + Send> Sync for TtasLock<T> {}

impl<T> TtasLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> TtasLock<T> {
    /// Attempts to acquire the lock without waiting.
    ///
    /// This is the combiner election primitive of flat combining: exactly
    /// one of the competing threads obtains the guard; the rest observe
    /// `None` and go wait on their own records.
    #[inline]
    pub fn try_lock(&self) -> Option<TtasGuard<'_, T>> {
        // Test first: a plain load keeps the line shared while locked.
        if self.locked.load(Ordering::Relaxed) {
            return None;
        }
        if self.locked.swap(true, Ordering::Acquire) {
            return None;
        }
        Some(TtasGuard { lock: self })
    }

    /// Acquires the lock, spinning (with backoff + eventual yielding)
    /// until it is available.
    #[inline]
    pub fn lock(&self) -> TtasGuard<'_, T> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            // Blocking wait: the holder must run for us to proceed.
            backoff.snooze();
        }
    }

    /// `true` if some thread currently holds the lock.
    ///
    /// Only a hint: the answer may be stale by the time the caller acts
    /// on it. Flat combining uses it to re-check whether a combiner is
    /// still active before retrying the try-lock.
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Returns a mutable reference to the value, without locking.
    ///
    /// Safe because `&mut self` proves no other reference exists.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for TtasLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("TtasLock").field("value", &&*g).finish(),
            None => f
                .debug_struct("TtasLock")
                .field("value", &"<locked>")
                .finish(),
        }
    }
}

impl<T: Default> Default for TtasLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`TtasLock`]; releases the lock on drop.
pub struct TtasGuard<'a, T: ?Sized> {
    lock: &'a TtasLock<T>,
}

impl<T: ?Sized> Deref for TtasGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for TtasGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for TtasGuard<'_, T> {
    fn drop(&mut self) {
        // Release pairs with the Acquire swap in `try_lock`, publishing
        // all writes made under the lock to the next holder.
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for TtasGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn uncontended_lock_unlock() {
        let l = TtasLock::new(1);
        {
            let mut g = l.lock();
            *g = 2;
        }
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = TtasLock::new(());
        let g = l.try_lock().unwrap();
        assert!(l.try_lock().is_none());
        assert!(l.is_locked());
        drop(g);
        assert!(!l.is_locked());
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut l = TtasLock::new(5);
        *l.get_mut() += 1;
        assert_eq!(*l.lock(), 6);
    }

    #[test]
    fn debug_shows_locked_state() {
        let l = TtasLock::new(3);
        assert!(format!("{l:?}").contains('3'));
        let _g = l.lock();
        assert!(format!("{l:?}").contains("locked"));
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1_000;
        let l = Arc::new(TtasLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), THREADS * PER_THREAD);
    }

    #[test]
    fn guard_publishes_writes() {
        // Increment a plain (non-atomic) pair under the lock and check
        // both halves always agree — detects missing Release/Acquire.
        let l = Arc::new(TtasLock::new((0u64, 0u64)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..500 {
                        let mut g = l.lock();
                        g.0 += 1;
                        g.1 += 1;
                        assert_eq!(g.0, g.1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let g = l.lock();
        assert_eq!(g.0, 2_000);
        assert_eq!(g.1, 2_000);
    }
}
