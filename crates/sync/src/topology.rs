//! Host-topology discovery for the benchmark harness.
//!
//! The paper's evaluation sweeps thread counts up to (and past) the
//! hardware-thread count of each machine and marks the oversubscription
//! point. This module answers "how many hardware threads does this host
//! have" and produces the paper-style sweep of thread counts, so the
//! same harness runs on a 1-core CI container and a 192-thread Sapphire
//! Rapids box.

use std::num::NonZeroUsize;
use std::thread;

/// Number of hardware threads available to this process.
///
/// Falls back to 1 when the OS refuses to answer.
pub fn hardware_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builds the thread-count sweep used by every figure: powers-of-two-ish
/// steps from 1 up to `oversubscribe_factor` × the hardware threads,
/// always including the hardware-thread count itself (the paper's
/// oversubscription mark) and `max_cap` as an upper bound.
///
/// # Examples
///
/// ```
/// use sec_sync::topology::thread_sweep;
/// let s = thread_sweep(8, 2, 64);
/// assert_eq!(s, vec![1, 2, 4, 8, 16]);
/// assert!(s.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn thread_sweep(hw_threads: usize, oversubscribe_factor: usize, max_cap: usize) -> Vec<usize> {
    let hw = hw_threads.max(1);
    let limit = (hw * oversubscribe_factor.max(1)).min(max_cap.max(1));
    let mut sweep = Vec::new();
    let mut n = 1;
    while n < limit {
        sweep.push(n);
        n *= 2;
    }
    sweep.push(limit);
    if !sweep.contains(&hw) && hw < limit {
        sweep.push(hw);
        sweep.sort_unstable();
    }
    sweep.dedup();
    sweep
}

/// The default sweep for this host: up to 2× oversubscription, capped at
/// 64 logical threads so a CI container finishes in reasonable time.
pub fn default_sweep() -> Vec<usize> {
    thread_sweep(hardware_threads(), 2, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_threads_is_positive() {
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn sweep_is_sorted_unique_and_bounded() {
        for hw in [1, 2, 3, 8, 12, 56, 96, 192] {
            for over in [1, 2, 4] {
                let s = thread_sweep(hw, over, 256);
                assert!(!s.is_empty());
                assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
                assert_eq!(*s.first().unwrap(), 1);
                assert!(*s.last().unwrap() <= (hw * over).min(256));
            }
        }
    }

    #[test]
    fn sweep_contains_the_oversubscription_point() {
        let s = thread_sweep(12, 2, 256);
        assert!(s.contains(&12), "{s:?}");
        assert!(s.contains(&24), "{s:?}");
    }

    #[test]
    fn sweep_handles_degenerate_inputs() {
        assert_eq!(thread_sweep(0, 0, 0), vec![1]);
        assert_eq!(thread_sweep(1, 1, 64), vec![1]);
        assert_eq!(thread_sweep(1, 2, 64), vec![1, 2]);
    }

    #[test]
    fn sweep_respects_cap() {
        let s = thread_sweep(96, 4, 32);
        assert_eq!(*s.last().unwrap(), 32);
    }

    #[test]
    fn default_sweep_runs() {
        let s = default_sweep();
        assert!(!s.is_empty());
    }
}
