//! Host-topology discovery for the benchmark harness.
//!
//! The paper's evaluation sweeps thread counts up to (and past) the
//! hardware-thread count of each machine and marks the oversubscription
//! point. This module answers "how many hardware threads does this host
//! have" and produces the paper-style sweep of thread counts, so the
//! same harness runs on a 1-core CI container and a 192-thread Sapphire
//! Rapids box.

use std::num::NonZeroUsize;
use std::sync::OnceLock;
use std::thread;

/// Number of hardware threads available to this process.
///
/// Falls back to 1 when the OS refuses to answer.
pub fn hardware_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Number of hardware threads sharing one physical core (the SMT
/// width), discovered from sysfs on Linux and cached for the process.
///
/// SMT siblings share L1/L2, so an elimination partner on the sibling
/// hyperthread is the cheapest partner there is — the topology-aware
/// shard mapping keeps siblings on the same aggregator. Falls back to 1
/// (every hardware thread its own neighbourhood) when the OS exposes no
/// topology, which degrades the mapping to plain block sharding.
pub fn smt_width() -> usize {
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        discover_smt_width()
            .unwrap_or(1)
            .clamp(1, hardware_threads())
    })
}

fn discover_smt_width() -> Option<usize> {
    let s = std::fs::read_to_string("/sys/devices/system/cpu/cpu0/topology/thread_siblings_list")
        .ok()?;
    parse_cpu_list(s.trim())
}

/// Parses a sysfs CPU list (`"0-1"`, `"0,64"`, `"0-3,8-11"`) into the
/// number of CPUs it names; `None` on malformed input.
///
/// # Examples
///
/// ```
/// use sec_sync::topology::parse_cpu_list;
/// assert_eq!(parse_cpu_list("0-1"), Some(2));
/// assert_eq!(parse_cpu_list("0,64"), Some(2));
/// assert_eq!(parse_cpu_list("0-3,8-11"), Some(8));
/// assert_eq!(parse_cpu_list("junk"), None);
/// ```
pub fn parse_cpu_list(s: &str) -> Option<usize> {
    let mut n = 0usize;
    for part in s.split(',') {
        let part = part.trim();
        if let Some((a, b)) = part.split_once('-') {
            let a: usize = a.trim().parse().ok()?;
            let b: usize = b.trim().parse().ok()?;
            if b < a {
                return None;
            }
            n += b - a + 1;
        } else {
            part.parse::<usize>().ok()?;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(n)
    }
}

/// Number of `width`-sized hardware-thread neighbourhoods needed to
/// cover `threads` threads (at least 1; the last neighbourhood may be
/// partial).
pub fn neighbourhoods(threads: usize, width: usize) -> usize {
    threads.max(1).div_ceil(width.max(1))
}

/// Builds the thread-count sweep used by every figure: powers-of-two-ish
/// steps from 1 up to `oversubscribe_factor` × the hardware threads,
/// always including the hardware-thread count itself (the paper's
/// oversubscription mark) and `max_cap` as an upper bound.
///
/// # Examples
///
/// ```
/// use sec_sync::topology::thread_sweep;
/// let s = thread_sweep(8, 2, 64);
/// assert_eq!(s, vec![1, 2, 4, 8, 16]);
/// assert!(s.windows(2).all(|w| w[0] < w[1]));
/// ```
pub fn thread_sweep(hw_threads: usize, oversubscribe_factor: usize, max_cap: usize) -> Vec<usize> {
    let hw = hw_threads.max(1);
    let limit = (hw * oversubscribe_factor.max(1)).min(max_cap.max(1));
    let mut sweep = Vec::new();
    let mut n = 1;
    while n < limit {
        sweep.push(n);
        n *= 2;
    }
    sweep.push(limit);
    if !sweep.contains(&hw) && hw < limit {
        sweep.push(hw);
        sweep.sort_unstable();
    }
    sweep.dedup();
    sweep
}

/// The default sweep for this host: up to 2× oversubscription, capped at
/// 64 logical threads so a CI container finishes in reasonable time.
pub fn default_sweep() -> Vec<usize> {
    thread_sweep(hardware_threads(), 2, 64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_threads_is_positive() {
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn sweep_is_sorted_unique_and_bounded() {
        for hw in [1, 2, 3, 8, 12, 56, 96, 192] {
            for over in [1, 2, 4] {
                let s = thread_sweep(hw, over, 256);
                assert!(!s.is_empty());
                assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
                assert_eq!(*s.first().unwrap(), 1);
                assert!(*s.last().unwrap() <= (hw * over).min(256));
            }
        }
    }

    #[test]
    fn sweep_contains_the_oversubscription_point() {
        let s = thread_sweep(12, 2, 256);
        assert!(s.contains(&12), "{s:?}");
        assert!(s.contains(&24), "{s:?}");
    }

    #[test]
    fn sweep_handles_degenerate_inputs() {
        assert_eq!(thread_sweep(0, 0, 0), vec![1]);
        assert_eq!(thread_sweep(1, 1, 64), vec![1]);
        assert_eq!(thread_sweep(1, 2, 64), vec![1, 2]);
    }

    #[test]
    fn sweep_respects_cap() {
        let s = thread_sweep(96, 4, 32);
        assert_eq!(*s.last().unwrap(), 32);
    }

    #[test]
    fn default_sweep_runs() {
        let s = default_sweep();
        assert!(!s.is_empty());
    }

    #[test]
    fn smt_width_is_positive_and_bounded() {
        let w = smt_width();
        assert!(w >= 1);
        assert!(w <= hardware_threads());
    }

    #[test]
    fn cpu_list_parsing() {
        assert_eq!(parse_cpu_list("0"), Some(1));
        assert_eq!(parse_cpu_list("0-1"), Some(2));
        assert_eq!(parse_cpu_list("0,64"), Some(2));
        assert_eq!(parse_cpu_list("0-3, 8-11"), Some(8));
        assert_eq!(parse_cpu_list("3-1"), None);
        assert_eq!(parse_cpu_list(""), None);
        assert_eq!(parse_cpu_list("a-b"), None);
    }

    #[test]
    fn neighbourhood_counts() {
        assert_eq!(neighbourhoods(8, 2), 4);
        assert_eq!(neighbourhoods(9, 2), 5);
        assert_eq!(neighbourhoods(4, 1), 4);
        assert_eq!(neighbourhoods(0, 0), 1);
        assert_eq!(neighbourhoods(3, 8), 1);
    }
}
