//! An MCS queue lock.
//!
//! The CC-Synch combining baseline descends from the MCS lock
//! (Mellor-Crummey & Scott, 1991): both thread a queue of
//! cache-line-local records through a single swapped tail pointer, and
//! both make each waiter spin on *its own* record instead of a shared
//! word. Having the genuine article in the substrate lets the
//! `lock_ablation` benchmark separate how much of CC-Synch's advantage
//! over a TTAS-guarded stack comes from the queue-lock handoff pattern
//! alone and how much from combining proper.
//!
//! Each acquisition enqueues a heap-allocated record (the record's
//! address must stay stable while a successor links behind it, so it
//! cannot live in the guard itself, which the caller may move). That is
//! one small allocation per `lock`; the ablation benchmark measures the
//! handoff under contention, where this cost is noise. Use
//! [`TtasLock`](crate::TtasLock) when allocation-free acquisition
//! matters more than FIFO fairness.

use crate::Backoff;
use core::cell::UnsafeCell;
use core::fmt;
use core::ops::{Deref, DerefMut};
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// One waiter's queue record.
///
/// `locked` is what the owner spins on; `next` is how the owner finds
/// the successor to release.
struct McsNode {
    locked: AtomicBool,
    next: AtomicPtr<McsNode>,
}

/// An MCS queue lock protecting a `T`.
///
/// FIFO-fair: threads acquire in the order their swap on the tail
/// pointer took effect, and each spins only on its own record — under
/// heavy contention the coherence traffic per handoff is one line, not a
/// stampede on a shared word.
///
/// # Examples
///
/// ```
/// use sec_sync::McsLock;
///
/// let lock = McsLock::new(0u64);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 1);
/// ```
pub struct McsLock<T: ?Sized> {
    tail: AtomicPtr<McsNode>,
    value: UnsafeCell<T>,
}

// Safety: mutual exclusion hands out `&mut T` across threads; `T: Send`
// is the required and sufficient bound (same as `Mutex`).
unsafe impl<T: ?Sized + Send> Send for McsLock<T> {}
unsafe impl<T: ?Sized + Send> Sync for McsLock<T> {}

impl<T> McsLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            tail: AtomicPtr::new(ptr::null_mut()),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> McsLock<T> {
    /// Acquires the lock, enqueueing behind current waiters (FIFO).
    pub fn lock(&self) -> McsGuard<'_, T> {
        let node = Box::into_raw(Box::new(McsNode {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        // AcqRel: Acquire pairs with the Release of the predecessor's
        // swap so we see its record initialized; Release publishes ours.
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if !pred.is_null() {
            // Link behind the predecessor, then spin on our own record.
            // Safety: `pred` stays alive until its owner's unlock, and
            // its owner cannot finish unlock before reading `next` —
            // which is exactly this store.
            unsafe { (*pred).next.store(node, Ordering::Release) };
            let mut backoff = Backoff::new();
            // Safety: `node` is ours until unlock.
            while unsafe { (*node).locked.load(Ordering::Acquire) } {
                backoff.snooze();
            }
        }
        McsGuard { lock: self, node }
    }

    /// Attempts to acquire the lock only if no thread holds or awaits it.
    pub fn try_lock(&self) -> Option<McsGuard<'_, T>> {
        let node = Box::into_raw(Box::new(McsNode {
            locked: AtomicBool::new(true),
            next: AtomicPtr::new(ptr::null_mut()),
        }));
        match self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => Some(McsGuard { lock: self, node }),
            Err(_) => {
                // Safety: the node was never published.
                drop(unsafe { Box::from_raw(node) });
                None
            }
        }
    }

    /// `true` if some thread holds or is queued for the lock (a hint).
    pub fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    /// Returns a mutable reference to the value, without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for McsLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_locked() {
            f.debug_struct("McsLock")
                .field("value", &"<locked>")
                .finish()
        } else {
            // Racy but only used for diagnostics.
            f.debug_struct("McsLock")
                .field("value", &"<unlocked>")
                .finish()
        }
    }
}

impl<T: Default> Default for McsLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`McsLock`]; releases (and hands off) on drop.
pub struct McsGuard<'a, T: ?Sized> {
    lock: &'a McsLock<T>,
    node: *mut McsNode,
}

// Safety: the guard is the exclusive access token; sending it to another
// thread is sound for `T: Send` (the MCS handoff itself is address-based,
// not thread-identity-based).
unsafe impl<T: ?Sized + Send> Send for McsGuard<'_, T> {}

impl<T: ?Sized> Deref for McsGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: the guard holds the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for McsGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for McsGuard<'_, T> {
    fn drop(&mut self) {
        let node = self.node;
        // Safety: `node` is ours until the handoff below completes.
        let mut next = unsafe { (*node).next.load(Ordering::Acquire) };
        if next.is_null() {
            // No visible successor: try to swing tail back to empty.
            // Release publishes the critical section to the next acquirer.
            if self
                .lock
                .tail
                .compare_exchange(node, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                // Safety: unlinked from the queue; nobody can reach it.
                drop(unsafe { Box::from_raw(node) });
                return;
            }
            // A successor swapped tail but has not linked yet; wait for
            // the link (it is at most one store away).
            let mut backoff = Backoff::new();
            loop {
                next = unsafe { (*node).next.load(Ordering::Acquire) };
                if !next.is_null() {
                    break;
                }
                backoff.spin();
            }
        }
        // Hand the lock to the successor. Release publishes our critical
        // section; the successor's Acquire load of `locked` pairs with it.
        unsafe { (*next).locked.store(false, Ordering::Release) };
        // Safety: we are fully unlinked now; the successor spins on its
        // own record and never touches ours again.
        drop(unsafe { Box::from_raw(node) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn uncontended_lock_unlock() {
        let l = McsLock::new(1);
        *l.lock() = 2;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = McsLock::new(());
        let g = l.try_lock().unwrap();
        assert!(l.try_lock().is_none());
        assert!(l.is_locked());
        drop(g);
        assert!(!l.is_locked());
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut l = McsLock::new(5);
        *l.get_mut() += 1;
        assert_eq!(*l.lock(), 6);
    }

    #[test]
    fn reacquire_after_release_many_times() {
        let l = McsLock::new(0u32);
        for _ in 0..1_000 {
            *l.lock() += 1;
        }
        assert_eq!(*l.lock(), 1_000);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1_000;
        let l = Arc::new(McsLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), THREADS * PER_THREAD);
    }

    #[test]
    fn guard_publishes_writes() {
        let l = Arc::new(McsLock::new((0u64, 0u64)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..500 {
                        let mut g = l.lock();
                        g.0 += 1;
                        g.1 += 1;
                        assert_eq!(g.0, g.1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), (2_000, 2_000));
    }

    #[test]
    fn handoff_is_fifo_pairwise() {
        // One holder, two queued waiters enqueued in a known order: the
        // first-enqueued waiter must acquire first. We establish the
        // enqueue order by waiting for `tail` to change between spawns.
        let l = Arc::new(McsLock::new(Vec::<u32>::new()));
        let g = l.lock();
        let mut joins = Vec::new();
        for id in 0..2u32 {
            let l2 = Arc::clone(&l);
            let before = l.tail.load(Ordering::Relaxed);
            joins.push(thread::spawn(move || {
                l2.lock().push(id);
            }));
            // Wait until this waiter is visibly enqueued.
            while l.tail.load(Ordering::Relaxed) == before {
                thread::yield_now();
            }
        }
        drop(g);
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*l.lock(), vec![0, 1]);
    }
}
