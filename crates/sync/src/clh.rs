//! A CLH queue lock.
//!
//! The second classic queue lock (Craig; Landin & Hagersten, 1993),
//! included alongside [`McsLock`](crate::McsLock) so the
//! `lock_ablation` benchmark can compare both handoff disciplines
//! against TTAS and `std::sync::Mutex` under the combining-style
//! critical sections the stack baselines execute. CLH differs from MCS
//! in *where* a waiter spins: on the **predecessor's** record rather
//! than its own. On cache-coherent machines that is one extra remote
//! read per handoff; on NUMA it is the reason MCS usually wins — which
//! is exactly the effect the ablation demonstrates.
//!
//! Node lifecycle: the queue always contains one node per waiter plus
//! one retired node (the initial dummy, or the previous holder's). A
//! thread that completes `lock` owns its predecessor's now-retired node
//! and frees it on unlock; the lock's `Drop` frees the final tail node.

use crate::Backoff;
use core::cell::UnsafeCell;
use core::fmt;
use core::ops::{Deref, DerefMut};
use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// One queue record: `true` while its owner holds or awaits the lock.
struct ClhNode {
    locked: AtomicBool,
}

/// A CLH queue lock protecting a `T`.
///
/// FIFO-fair, one swap per acquisition, spin on the predecessor's
/// record.
///
/// # Examples
///
/// ```
/// use sec_sync::ClhLock;
///
/// let lock = ClhLock::new(0u64);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 1);
/// ```
pub struct ClhLock<T: ?Sized> {
    tail: AtomicPtr<ClhNode>,
    value: UnsafeCell<T>,
}

// Safety: mutual exclusion hands out `&mut T` across threads.
unsafe impl<T: ?Sized + Send> Send for ClhLock<T> {}
unsafe impl<T: ?Sized + Send> Sync for ClhLock<T> {}

impl<T> ClhLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub fn new(value: T) -> Self {
        // The dummy node reads as "released" so the first acquirer
        // passes its spin immediately.
        let dummy = Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(false),
        }));
        Self {
            tail: AtomicPtr::new(dummy),
            value: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        // `Drop` frees the tail node; moving the value out first.
        // Safety: `self` is owned, no other thread can touch `value`.
        let value = unsafe { self.value.get().read() };
        let this = core::mem::ManuallyDrop::new(self);
        // Safety: the tail node is the only remaining allocation.
        drop(unsafe { Box::from_raw(this.tail.load(Ordering::Relaxed)) });
        value
    }
}

impl<T: ?Sized> ClhLock<T> {
    /// Acquires the lock, enqueueing behind current waiters (FIFO).
    pub fn lock(&self) -> ClhGuard<'_, T> {
        let node = Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(true),
        }));
        // AcqRel: Release publishes our node's initialization to the
        // successor that swaps after us; Acquire pairs with the
        // predecessor's Release so its node is fully visible.
        let pred = self.tail.swap(node, Ordering::AcqRel);
        let mut backoff = Backoff::new();
        // Safety: `pred` stays allocated until *we* free it (we are its
        // unique successor; its owner never touches it after releasing).
        while unsafe { (*pred).locked.load(Ordering::Acquire) } {
            backoff.snooze();
        }
        ClhGuard {
            lock: self,
            node,
            pred,
        }
    }

    /// Attempts to acquire the lock only if it is free right now.
    ///
    /// CLH has no natural try-lock (the swap is unconditional), so this
    /// peeks at the tail: if the tail node reads as released, the lock
    /// *may* be free and we do a full `lock` knowing the wait is at
    /// worst the race window. Returns `None` when the tail is held.
    pub fn try_lock(&self) -> Option<ClhGuard<'_, T>> {
        let tail = self.tail.load(Ordering::Acquire);
        // Safety: the tail node is always a valid allocation.
        if unsafe { (*tail).locked.load(Ordering::Acquire) } {
            return None;
        }
        Some(self.lock())
    }

    /// `true` if some thread holds or is queued for the lock (a hint).
    pub fn is_locked(&self) -> bool {
        let tail = self.tail.load(Ordering::Acquire);
        // Safety: as above.
        unsafe { (*tail).locked.load(Ordering::Relaxed) }
    }

    /// Returns a mutable reference to the value, without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized> Drop for ClhLock<T> {
    fn drop(&mut self) {
        // Safety: no guards outstanding (they borrow `self`), so the
        // tail node is the single retired node left in the queue.
        drop(unsafe { Box::from_raw(self.tail.load(Ordering::Relaxed)) });
    }
}

impl<T: fmt::Debug> fmt::Debug for ClhLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = if self.is_locked() {
            "<locked>"
        } else {
            "<unlocked>"
        };
        f.debug_struct("ClhLock").field("state", &state).finish()
    }
}

impl<T: Default> Default for ClhLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// RAII guard for [`ClhLock`]; releases (and hands off) on drop.
pub struct ClhGuard<'a, T: ?Sized> {
    lock: &'a ClhLock<T>,
    node: *mut ClhNode,
    pred: *mut ClhNode,
}

// Safety: exclusive access token; see `McsGuard`.
unsafe impl<T: ?Sized + Send> Send for ClhGuard<'_, T> {}

impl<T: ?Sized> Deref for ClhGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: the guard holds the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> DerefMut for ClhGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for ClhGuard<'_, T> {
    fn drop(&mut self) {
        // Release pairs with the successor's Acquire spin on our node,
        // publishing the critical section.
        // Safety: our node stays allocated until our successor (or the
        // lock's Drop) frees it; the predecessor's node is retired and
        // uniquely ours to free.
        unsafe {
            (*self.node).locked.store(false, Ordering::Release);
            drop(Box::from_raw(self.pred));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn uncontended_lock_unlock() {
        let l = ClhLock::new(1);
        *l.lock() = 2;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = ClhLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        assert!(l.is_locked());
        drop(g);
        assert!(!l.is_locked());
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_lock() {
        let mut l = ClhLock::new(5);
        *l.get_mut() += 1;
        assert_eq!(*l.lock(), 6);
    }

    #[test]
    fn reacquire_after_release_many_times() {
        // Exercises the node-recycling path: each acquisition frees the
        // predecessor's node, so 1000 rounds with a leak would trip
        // sanitizers and balloon RSS.
        let l = ClhLock::new(0u32);
        for _ in 0..1_000 {
            *l.lock() += 1;
        }
        assert_eq!(*l.lock(), 1_000);
    }

    #[test]
    fn into_inner_returns_value() {
        let l = ClhLock::new(String::from("x"));
        l.lock().push('y');
        assert_eq!(l.into_inner(), "xy");
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1_000;
        let l = Arc::new(ClhLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), THREADS * PER_THREAD);
    }

    #[test]
    fn guard_publishes_writes() {
        let l = Arc::new(ClhLock::new((0u64, 0u64)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..500 {
                        let mut g = l.lock();
                        g.0 += 1;
                        g.1 += 1;
                        assert_eq!(g.0, g.1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), (2_000, 2_000));
    }
}
