//! # `sec-sync` — concurrency primitives substrate
//!
//! This crate collects the low-level building blocks shared by the SEC
//! stack, its five competitor implementations, the reclamation subsystem
//! and the benchmark harness:
//!
//! * [`CachePadded`] — false-sharing avoidance for per-thread and
//!   per-shard hot state,
//! * [`Backoff`] — bounded exponential spin backoff that degrades to
//!   [`std::thread::yield_now`], the spin engine of every retry loop
//!   and of the spin phase of every blocking wait,
//! * [`event`] — spin-then-park waiting ([`event::WaitPolicy`],
//!   [`event::WaitCell`], [`event::WaitQueue`]): the no-lost-wakeup
//!   park/unpark subsystem behind SEC's freezer/combiner waits on
//!   oversubscribed machines (DESIGN.md §11),
//! * [`TtasLock`] — a test-and-test-and-set spin lock (the combiner lock
//!   of the flat-combining baseline),
//! * [`McsLock`] / [`ClhLock`] — the two classic queue locks; CC-Synch
//!   descends from MCS, and the `lock_ablation` benchmark uses all four
//!   locks to isolate the handoff discipline from combining proper,
//! * [`TscClock`] — the timestamp source of the TSI baseline (`RDTSC` on
//!   x86_64, a monotonic software clock elsewhere),
//! * [`funnel::AggregatingFunnel`] — a software fetch&add built from
//!   nested sharding (the aggregating-funnels lineage of SEC, used by the
//!   ablation benchmarks),
//! * [`topology`] — host parallelism discovery for the harness.
//!
//! Everything here is dependency-free: `std` is used for threads and
//! time only.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod backoff;
mod clh;
mod clock;
mod lock;
mod mcs;
mod pad;

pub mod event;
pub mod funnel;
pub mod topology;

pub use backoff::Backoff;
pub use clh::{ClhGuard, ClhLock};
pub use clock::{Calibration, Timestamp, TscClock};
pub use lock::{TtasGuard, TtasLock};
pub use mcs::{McsGuard, McsLock};
pub use pad::CachePadded;
