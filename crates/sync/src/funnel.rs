//! A software fetch&add built from nested sharding ("aggregating
//! funnels", Roh et al., PPoPP '25 — reference \[21\] of the SEC paper).
//!
//! SEC borrows its two-level contention-dispersal scheme — threads are
//! partitioned over *shards* (aggregators) and, within a shard, gathered
//! into *generations* (batches) whose first arrival acts on behalf of the
//! rest — from this construction. We implement it (a) to document the
//! lineage in executable form and (b) as the substrate for the ablation
//! benchmark `faa_ablation`, which compares a hardware `fetch_add`, a
//! lock-protected counter and the funnel under rising thread counts.
//!
//! ## Semantics
//!
//! [`AggregatingFunnel::fetch_add_one`] returns values that are **unique**
//! and **monotone per thread**, but not necessarily **gap-free**: a thread
//! that is descheduled long enough for its generation's result slot to be
//! recycled abandons its ticket and retries, skipping a counter value.
//! (SEC itself does *not* reuse this module: its per-batch counters are
//! plain hardware `fetch&increment`, exactly as in the paper; batch
//! indices there must be gap-free.) Gaps only waste counter range, which
//! is why the packed layout below budgets 40 bits for the central value.
//!
//! ## How a shard works
//!
//! Each shard holds one *generation word* packing `(generation:40 |
//! arrivals:24)`. A thread joins the current generation with a hardware
//! F&I on the low bits. The arrival with index 0 becomes the *delegate*:
//! it waits a short aggregation window (more arrivals ⇒ fewer central
//! F&As), then *closes* the generation with a single `swap` that both
//! advances the generation tag and reads the final arrival count — the
//! same pattern as SEC's batch freeze. The delegate performs one central
//! `fetch_add(count)` and publishes the base through a small ring of
//! result slots tagged with the generation; the other arrivals return
//! `base + index`.

use crate::{Backoff, CachePadded};
use core::sync::atomic::{AtomicU64, Ordering};

/// Bits of the generation word used for the arrival count.
const COUNT_BITS: u32 = 24;
/// Mask extracting the arrival count.
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;
/// Bits of a result slot used for the base value.
const BASE_BITS: u32 = 40;
/// Mask extracting the base value.
const BASE_MASK: u64 = (1 << BASE_BITS) - 1;
/// Result-slot ring size per shard (power of two).
const SLOTS: usize = 64;

/// One funnel shard: a generation word plus the result-slot ring.
struct Shard {
    /// Packed `(generation << COUNT_BITS) | arrivals`.
    gen_word: AtomicU64,
    /// Ring of packed `(generation_tag << BASE_BITS) | base` results.
    /// `generation_tag` is the low `64 - BASE_BITS` bits of the
    /// generation; exact-match acceptance plus bounded waiting makes tag
    /// wrap-around harmless (a waiter that sleeps through 2^24
    /// generations retries from scratch anyway).
    results: [AtomicU64; SLOTS],
}

impl Shard {
    fn new() -> Self {
        // Start at generation 1 so the all-zero result slots never match
        // a real (generation, base) pair.
        Self {
            gen_word: AtomicU64::new(1 << COUNT_BITS),
            results: [const { AtomicU64::new(0) }; SLOTS],
        }
    }
}

/// A sharded software fetch&add counter.
///
/// # Examples
///
/// ```
/// use sec_sync::funnel::AggregatingFunnel;
///
/// let f = AggregatingFunnel::new(2, 0);
/// let a = f.fetch_add_one(0);
/// let b = f.fetch_add_one(0);
/// assert_ne!(a, b);
/// assert!(f.load() >= 2);
/// ```
pub struct AggregatingFunnel {
    center: CachePadded<AtomicU64>,
    shards: Box<[CachePadded<Shard>]>,
    /// Delegate aggregation window, in spin-loop iterations.
    window_spins: u32,
}

impl AggregatingFunnel {
    /// Creates a funnel with `num_shards` shards (≥ 1) and the given
    /// delegate aggregation window (0 disables the wait).
    pub fn new(num_shards: usize, window_spins: u32) -> Self {
        let n = num_shards.max(1);
        Self {
            center: CachePadded::new(AtomicU64::new(0)),
            shards: (0..n).map(|_| CachePadded::new(Shard::new())).collect(),
            window_spins,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Current value of the central counter (values handed out so far,
    /// including skipped ones).
    pub fn load(&self) -> u64 {
        self.center.load(Ordering::Acquire)
    }

    /// Obtains a unique counter value. `shard_hint` selects the shard
    /// (callers pass their thread id; any value is accepted).
    pub fn fetch_add_one(&self, shard_hint: usize) -> u64 {
        let shard = &self.shards[shard_hint % self.shards.len()];
        loop {
            if let Some(v) = self.try_ticket(shard) {
                return v;
            }
            // Missed generation (slot recycled while we slept): retry.
        }
    }

    /// One attempt: join the current generation and either delegate or
    /// wait for the delegate. `None` means the ticket was abandoned.
    fn try_ticket(&self, shard: &Shard) -> Option<u64> {
        // AcqRel: the returned word orders us against the delegate's
        // closing swap (same role as SEC's pushCount F&I ordering).
        let word = shard.gen_word.fetch_add(1, Ordering::AcqRel);
        let generation = word >> COUNT_BITS;
        let index = word & COUNT_MASK;

        debug_assert!(index < COUNT_MASK, "shard arrival count overflow");

        if index == 0 {
            // Delegate: aggregation window, then close the generation.
            for _ in 0..self.window_spins {
                core::hint::spin_loop();
            }
            let closed = shard
                .gen_word
                .swap((generation + 1) << COUNT_BITS, Ordering::AcqRel);
            let count = closed & COUNT_MASK;
            debug_assert!(count >= 1, "delegate's own arrival must be counted");
            debug_assert_eq!(closed >> COUNT_BITS, generation);

            let base = self.center.fetch_add(count, Ordering::AcqRel);
            debug_assert!(base + count <= BASE_MASK, "central counter overflow");

            // Publish (generation, base) for the other arrivals.
            let tag = generation & !(u64::MAX << (64 - BASE_BITS));
            let packed = (tag << BASE_BITS) | (base & BASE_MASK);
            shard.results[(generation as usize) % SLOTS].store(packed, Ordering::Release);
            return Some(base);
        }

        // Non-delegate: wait for our generation's base to appear.
        let slot = &shard.results[(generation as usize) % SLOTS];
        let want_tag = generation & !(u64::MAX << (64 - BASE_BITS));
        let mut backoff = Backoff::new();
        let mut patience = 0u32;
        loop {
            let packed = slot.load(Ordering::Acquire);
            let tag = packed >> BASE_BITS;
            if tag == want_tag {
                let base = packed & BASE_MASK;
                // A stale arrival (we joined after the close) still gets
                // a valid value: the close's swap read our increment iff
                // index < count, and indices ≥ count belong to the next
                // generation — but gen_word hands those out under the
                // *next* generation tag, so reaching here means our
                // index was counted.
                return Some(base + index);
            }
            if backoff.is_completed() {
                patience += 1;
                if patience > 1 << 12 {
                    // Slot will never show our tag (overwritten or the
                    // delegate is gone past recycling): abandon ticket.
                    return None;
                }
            }
            backoff.snooze();
        }
    }
}

impl core::fmt::Debug for AggregatingFunnel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("AggregatingFunnel")
            .field("shards", &self.shards.len())
            .field("window_spins", &self.window_spins)
            .field("value", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sequential_values_are_unique_and_counted() {
        let f = AggregatingFunnel::new(1, 0);
        let mut seen = HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(f.fetch_add_one(0)));
        }
        assert!(f.load() >= 100);
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let f = AggregatingFunnel::new(0, 0);
        assert_eq!(f.shards(), 1);
        let _ = f.fetch_add_one(7);
    }

    #[test]
    fn values_are_unique_across_threads_and_shards() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        let f = Arc::new(AggregatingFunnel::new(2, 32));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let f = Arc::clone(&f);
                thread::spawn(move || {
                    (0..PER_THREAD)
                        .map(|_| f.fetch_add_one(tid))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(all.insert(v), "duplicate funnel value {v}");
            }
        }
        assert_eq!(all.len(), THREADS * PER_THREAD);
        // Gaps are allowed but the central counter accounts for them.
        assert!(f.load() >= (THREADS * PER_THREAD) as u64);
    }

    #[test]
    fn aggregation_reduces_central_faas() {
        // With a wide window and many threads per shard, the central
        // counter advances in multi-unit steps, i.e. strictly fewer
        // closes than tickets. We can't observe closes directly, but we
        // can check the invariant load() >= tickets always holds and the
        // structure stays consistent under a parallel burst.
        const THREADS: usize = 4;
        const PER_THREAD: usize = 1_000;
        let f = Arc::new(AggregatingFunnel::new(1, 200));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let f = Arc::clone(&f);
                thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        let _ = f.fetch_add_one(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(f.load() >= (THREADS * PER_THREAD) as u64);
    }

    #[test]
    fn debug_format_includes_shard_count() {
        let f = AggregatingFunnel::new(3, 0);
        assert!(format!("{f:?}").contains('3'));
    }
}
