//! A mutex-protected sequential stack (**LCK**): the sanity floor.
//!
//! Every concurrent-stack paper's implicit zeroth baseline is "just put
//! a lock around `Vec::push`/`Vec::pop`". The SEC paper does not plot
//! it (its curves would sit below CC/FC, which *are* smarter global
//! locks), but having it in the lineup lets the test suite and the
//! `lock_ablation` benchmark anchor two claims from the paper's
//! narrative:
//!
//! * combining (FC/CC) beats a plain lock because the combiner executes
//!   many operations per lock handoff instead of one, and
//! * even the best single-lock discipline flattens out, which is the
//!   bottleneck SEC's sharding removes.
//!
//! Uses `std::sync::Mutex` (the obvious thing a downstream user would
//! write). The queue-lock variants of the same shape live in the
//! `lock_ablation` benchmark, built on `sec_sync::{McsLock, ClhLock,
//! TtasLock}`.

use core::fmt;
use sec_core::{ConcurrentStack, StackHandle};
use std::sync::Mutex;

/// A `Mutex<Vec<T>>` stack.
///
/// # Examples
///
/// ```
/// use sec_baselines::LockedStack;
/// use sec_core::{ConcurrentStack, StackHandle};
///
/// let s: LockedStack<u32> = LockedStack::new(2);
/// let mut h = s.register();
/// h.push(7);
/// assert_eq!(h.peek(), Some(7));
/// assert_eq!(h.pop(), Some(7));
/// ```
pub struct LockedStack<T> {
    items: Mutex<Vec<T>>,
}

impl<T> LockedStack<T> {
    /// Creates a stack. `max_threads` is accepted for interface symmetry
    /// with the other stacks; a lock needs no per-thread state.
    pub fn new(max_threads: usize) -> Self {
        let _ = max_threads;
        Self {
            items: Mutex::new(Vec::new()),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> LockedHandle<'_, T> {
        LockedHandle { stack: self }
    }

    /// Current number of elements (takes the lock).
    pub fn len(&self) -> usize {
        self.items.lock().unwrap().len()
    }

    /// `true` when the stack holds no elements (takes the lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for LockedStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedStack")
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Default for LockedStack<T> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for LockedStack<T> {
    type Handle<'a>
        = LockedHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> LockedHandle<'_, T> {
        LockedStack::register(self)
    }

    fn name(&self) -> &'static str {
        "LCK"
    }
}

/// Per-thread handle to a [`LockedStack`] (stateless; exists to satisfy
/// the shared interface).
pub struct LockedHandle<'a, T> {
    stack: &'a LockedStack<T>,
}

impl<T> StackHandle<T> for LockedHandle<'_, T> {
    fn push(&mut self, value: T) {
        self.stack.items.lock().unwrap().push(value);
    }

    fn pop(&mut self) -> Option<T> {
        self.stack.items.lock().unwrap().pop()
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        self.stack.items.lock().unwrap().last().cloned()
    }
}

/// A `Mutex<VecDeque<T>>` FIFO queue (**LCK-Q**): the queue family's
/// sanity floor, playing the role [`LockedStack`] plays for the stacks
/// — the obvious thing a downstream user would write, against which
/// both MS's lock-freedom and SEC-Q's batching must justify themselves.
///
/// # Examples
///
/// ```
/// use sec_baselines::LockedQueue;
/// use sec_core::{ConcurrentQueue, QueueHandle};
///
/// let q: LockedQueue<u32> = LockedQueue::new(2);
/// let mut h = q.register();
/// h.enqueue(7);
/// assert_eq!(h.dequeue(), Some(7));
/// ```
pub struct LockedQueue<T> {
    items: Mutex<std::collections::VecDeque<T>>,
}

impl<T> LockedQueue<T> {
    /// Creates a queue. `max_threads` is accepted for interface symmetry
    /// with the other queues; a lock needs no per-thread state.
    pub fn new(max_threads: usize) -> Self {
        let _ = max_threads;
        Self {
            items: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> LockedQueueHandle<'_, T> {
        LockedQueueHandle { queue: self }
    }

    /// Current number of elements (takes the lock).
    pub fn len(&self) -> usize {
        self.items.lock().unwrap().len()
    }

    /// `true` when the queue holds no elements (takes the lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> fmt::Debug for LockedQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedQueue")
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Default for LockedQueue<T> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<T: Send + 'static> sec_core::ConcurrentQueue<T> for LockedQueue<T> {
    type Handle<'a>
        = LockedQueueHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> LockedQueueHandle<'_, T> {
        LockedQueue::register(self)
    }

    fn name(&self) -> &'static str {
        "LCK-Q"
    }
}

/// Per-thread handle to a [`LockedQueue`] (stateless; exists to satisfy
/// the shared interface).
pub struct LockedQueueHandle<'a, T> {
    queue: &'a LockedQueue<T>,
}

impl<T> sec_core::QueueHandle<T> for LockedQueueHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        self.queue.items.lock().unwrap().push_back(value);
    }

    fn dequeue(&mut self) -> Option<T> {
        self.queue.items.lock().unwrap().pop_front()
    }
}

/// A `Mutex<HashMap<K, V>>` keyed map (**LCK-M**): the map family's
/// sanity floor — the obvious thing a downstream user would write,
/// against which SecMap's per-shard batching must justify itself. One
/// global lock means every operation serializes, whatever the key
/// distribution; SecMap's claim is precisely that hot-key traffic
/// batches instead.
///
/// # Examples
///
/// ```
/// use sec_baselines::LockedHashMap;
/// use sec_core::{ConcurrentMap, MapHandle};
///
/// let m: LockedHashMap<u32, u32> = LockedHashMap::new(2);
/// let mut h = m.register();
/// assert_eq!(h.insert(1, 10), None);
/// assert_eq!(h.get(&1), Some(10));
/// assert_eq!(h.remove(&1), Some(10));
/// ```
pub struct LockedHashMap<K, V> {
    items: Mutex<std::collections::HashMap<K, V>>,
}

impl<K: std::hash::Hash + Eq, V> LockedHashMap<K, V> {
    /// Creates a map. `max_threads` is accepted for interface symmetry
    /// with [`SecMap`](sec_core::SecMap); a lock needs no per-thread
    /// state.
    pub fn new(max_threads: usize) -> Self {
        let _ = max_threads;
        Self {
            items: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> LockedHashMapHandle<'_, K, V> {
        LockedHashMapHandle { map: self }
    }

    /// Current number of key-value pairs (takes the lock).
    pub fn len(&self) -> usize {
        self.items.lock().unwrap().len()
    }

    /// `true` when the map holds no pairs (takes the lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: std::hash::Hash + Eq, V> fmt::Debug for LockedHashMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedHashMap")
            .field("len", &self.len())
            .finish()
    }
}

impl<K: std::hash::Hash + Eq, V> Default for LockedHashMap<K, V> {
    fn default() -> Self {
        Self::new(0)
    }
}

impl<K, V> sec_core::ConcurrentMap<K, V> for LockedHashMap<K, V>
where
    K: std::hash::Hash + Eq + Send + 'static,
    V: Clone + Send + 'static,
{
    type Handle<'a>
        = LockedHashMapHandle<'a, K, V>
    where
        Self: 'a;

    fn register(&self) -> LockedHashMapHandle<'_, K, V> {
        LockedHashMap::register(self)
    }

    fn name(&self) -> &'static str {
        "LCK-M"
    }
}

/// Per-thread handle to a [`LockedHashMap`] (stateless; exists to
/// satisfy the shared interface).
pub struct LockedHashMapHandle<'a, K, V> {
    map: &'a LockedHashMap<K, V>,
}

impl<K, V> sec_core::MapHandle<K, V> for LockedHashMapHandle<'_, K, V>
where
    K: std::hash::Hash + Eq,
    V: Clone,
{
    fn get(&mut self, key: &K) -> Option<V> {
        self.map.items.lock().unwrap().get(key).cloned()
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.map.items.lock().unwrap().insert(key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        self.map.items.lock().unwrap().remove(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_core::{ConcurrentMap as _, ConcurrentQueue as _, MapHandle as _, QueueHandle as _};
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn locked_queue_is_fifo() {
        let q: LockedQueue<u32> = LockedQueue::new(1);
        let mut h = q.register();
        for i in 0..50 {
            h.enqueue(i);
        }
        assert_eq!(q.len(), 50);
        for i in 0..50 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
        assert!(q.is_empty());
        assert_eq!(q.name(), "LCK-Q");
    }

    #[test]
    fn locked_queue_concurrent_conservation() {
        const THREADS: usize = 4;
        const PER: usize = 2_000;
        let q: LockedQueue<usize> = LockedQueue::new(THREADS);
        let got: Vec<Vec<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut h = q.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.enqueue(t * PER + i);
                            if i % 2 == 1 {
                                if let Some(v) = h.dequeue() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v));
        }
        let mut h = q.register();
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), THREADS * PER);
    }

    #[test]
    fn locked_map_sequential_contract() {
        let m: LockedHashMap<u32, String> = LockedHashMap::new(1);
        let mut h = m.register();
        assert_eq!(h.get(&1), None);
        assert_eq!(h.insert(1, "a".into()), None);
        assert_eq!(h.insert(1, "b".into()), Some("a".into()));
        assert_eq!(h.get(&1), Some("b".into()));
        assert_eq!(h.remove(&1), Some("b".into()));
        assert_eq!(h.remove(&1), None);
        assert!(m.is_empty());
        assert_eq!(m.name(), "LCK-M");
    }

    #[test]
    fn locked_map_concurrent_accounting() {
        const THREADS: usize = 4;
        const PER: usize = 1_000;
        let m: LockedHashMap<usize, usize> = LockedHashMap::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let m = &m;
                scope.spawn(move || {
                    let mut h = m.register();
                    for i in 0..PER {
                        let k = t * PER + i;
                        assert_eq!(h.insert(k, k + 1), None);
                    }
                    for i in 0..PER {
                        let k = t * PER + i;
                        assert_eq!(h.remove(&k), Some(k + 1));
                    }
                });
            }
        });
        assert!(m.is_empty());
    }

    #[test]
    fn sequential_lifo() {
        let s: LockedStack<u32> = LockedStack::new(1);
        let mut h = s.register();
        for i in 0..50 {
            h.push(i);
        }
        assert_eq!(s.len(), 50);
        for i in (0..50).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn peek_is_non_destructive() {
        let s: LockedStack<u32> = LockedStack::new(1);
        let mut h = s.register();
        assert_eq!(h.peek(), None);
        h.push(9);
        assert_eq!(h.peek(), Some(9));
        assert_eq!(h.peek(), Some(9));
        assert_eq!(h.pop(), Some(9));
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 8;
        const PER: usize = 2_000;
        let s: LockedStack<usize> = LockedStack::new(THREADS);
        let got: Vec<Vec<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut h = s.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.push(t * PER + i);
                            if i % 2 == 1 {
                                if let Some(v) = h.pop() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v));
        }
        let mut h = s.register();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), THREADS * PER);
    }
}
