//! The Treiber stack (**TRB**): the classic lock-free CAS-loop stack
//! (Treiber '86), every other algorithm's point of reference.
//!
//! All contention lands on the single `top` pointer; under load the CAS
//! loop produces the cache-invalidation storm the SEC paper's
//! introduction describes. We add bounded exponential backoff on CAS
//! failure (standard practice, also how the paper's benchmark suite
//! configures TRB) — without it the curve collapses even earlier.

use core::fmt;
use core::mem::ManuallyDrop;
use core::ptr;
use core::sync::atomic::{AtomicPtr, Ordering};
use sec_core::{ConcurrentStack, StackHandle};
use sec_reclaim::{Collector, Handle as ReclaimHandle};
use sec_sync::{Backoff, CachePadded};

/// A Treiber-style node; also reused by the EB stack (whose fast path
/// *is* a Treiber stack).
pub(crate) struct Node<T> {
    pub(crate) value: ManuallyDrop<T>,
    pub(crate) next: *mut Node<T>,
}

// Safety: a node is a `T` plus a pointer the algorithms manage; sending
// one between threads is sending its `T` (required for retire-on-pop,
// where the freeing thread may differ from the allocating one).
unsafe impl<T: Send> Send for Node<T> {}

impl<T> Node<T> {
    /// Heap-allocates a detached node.
    pub(crate) fn alloc(value: T) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value: ManuallyDrop::new(value),
            next: ptr::null_mut(),
        }))
    }
}

/// The Treiber stack.
///
/// # Examples
///
/// ```
/// use sec_baselines::TreiberStack;
/// use sec_core::{ConcurrentStack, StackHandle};
///
/// let s: TreiberStack<u32> = TreiberStack::new(2);
/// let mut h = s.register();
/// h.push(7);
/// assert_eq!(h.pop(), Some(7));
/// ```
pub struct TreiberStack<T: Send + 'static> {
    top: CachePadded<AtomicPtr<Node<T>>>,
    collector: Collector,
}

unsafe impl<T: Send> Send for TreiberStack<T> {}
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T: Send + 'static> TreiberStack<T> {
    /// Creates a stack for up to `max_threads` concurrent threads.
    pub fn new(max_threads: usize) -> Self {
        Self {
            top: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            collector: Collector::new(max_threads),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> TreiberHandle<'_, T> {
        TreiberHandle {
            stack: self,
            reclaim: self
                .collector
                .register()
                .expect("TreiberStack: more threads than max_threads"),
        }
    }
}

impl<T: Send + 'static> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        let mut cur = self.top.load(Ordering::Relaxed);
        while !cur.is_null() {
            let mut boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next;
            unsafe { ManuallyDrop::drop(&mut boxed.value) };
        }
    }
}

impl<T: Send + 'static> fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreiberStack").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for TreiberStack<T> {
    type Handle<'a>
        = TreiberHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> TreiberHandle<'_, T> {
        TreiberStack::register(self)
    }

    fn name(&self) -> &'static str {
        "TRB"
    }
}

/// Per-thread handle to a [`TreiberStack`].
pub struct TreiberHandle<'a, T: Send + 'static> {
    stack: &'a TreiberStack<T>,
    reclaim: ReclaimHandle<'a>,
}

impl<T: Send + 'static> StackHandle<T> for TreiberHandle<'_, T> {
    fn push(&mut self, value: T) {
        let node = Node::alloc(value);
        let _guard = self.reclaim.pin();
        let mut backoff = Backoff::new();
        loop {
            let cur = self.stack.top.load(Ordering::Acquire);
            // Exclusive access until the CAS succeeds: plain write.
            unsafe { (*node).next = cur };
            if self
                .stack
                .top
                .compare_exchange(cur, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            backoff.spin();
        }
    }

    fn pop(&mut self) -> Option<T> {
        let guard = self.reclaim.pin();
        let mut backoff = Backoff::new();
        loop {
            let cur = self.stack.top.load(Ordering::Acquire);
            if cur.is_null() {
                return None;
            }
            // Safety: pinned, so `cur` cannot have been freed; no ABA
            // because a node's address cannot be recycled while we are
            // pinned (epoch reclamation).
            let next = unsafe { (*cur).next };
            if self
                .stack
                .top
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Safety: the CAS made us the unique owner of `cur`.
                let value = ManuallyDrop::into_inner(unsafe { ptr::read(&(*cur).value) });
                unsafe { guard.retire(cur) };
                return Some(value);
            }
            backoff.spin();
        }
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let _guard = self.reclaim.pin();
        let cur = self.stack.top.load(Ordering::Acquire);
        if cur.is_null() {
            None
        } else {
            // Safety: pinned; value bytes remain valid (consumption by a
            // concurrent pop is a non-destructive read).
            Some(ManuallyDrop::into_inner(unsafe { (*cur).value.clone() }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_lifo() {
        let s: TreiberStack<u32> = TreiberStack::new(1);
        let mut h = s.register();
        for i in 0..50 {
            h.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn peek_matches_top() {
        let s: TreiberStack<u32> = TreiberStack::new(1);
        let mut h = s.register();
        assert_eq!(h.peek(), None);
        h.push(3);
        assert_eq!(h.peek(), Some(3));
        h.push(4);
        assert_eq!(h.peek(), Some(4));
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 8;
        const PER: usize = 2_000;
        let s: TreiberStack<usize> = TreiberStack::new(THREADS);
        let got: Vec<Vec<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut h = s.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.push(t * PER + i);
                            if i % 2 == 1 {
                                if let Some(v) = h.pop() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v));
        }
        let mut h = s.register();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), THREADS * PER);
    }

    #[test]
    fn drops_remaining_values_on_teardown() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s: TreiberStack<P> = TreiberStack::new(1);
            let mut h = s.register();
            for _ in 0..10 {
                h.push(P(Arc::clone(&drops)));
            }
            drop(h.pop());
        }
        assert_eq!(drops.load(AOrd::Relaxed), 10);
    }
}
