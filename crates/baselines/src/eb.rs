//! The elimination-backoff stack (**EB**) — Hendler, Shavit, Yerushalmi,
//! SPAA '04 ("A scalable lock-free stack algorithm").
//!
//! The fast path is a Treiber stack. A thread whose CAS on `top` fails
//! *backs off into an elimination array*: it parks an exchange record in
//! a random slot and waits a bounded time for a thread of the opposite
//! type; a push/pop pair that meets there cancels out without ever
//! touching `top`. The slot range adapts to the observed contention
//! (shrink on timeout, grow on collision), as in the original.
//!
//! The cost SEC's related-work section calls out is visible in the code:
//! a successful elimination takes **three CASes** (park, claim, and the
//! loser's failed withdraw — or park/withdraw-failure/claim), and pairs
//! can miss each other entirely by picking different slots, capping the
//! elimination degree. SEC replaces all of this with two
//! fetch&increments on batch counters.

use crate::treiber::Node;
use core::fmt;
use core::mem::ManuallyDrop;
use core::ptr;
use core::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use sec_core::{ConcurrentStack, StackHandle};
use sec_reclaim::{Collector, Guard, Handle as ReclaimHandle};
use sec_sync::{Backoff, CachePadded};

/// Exchange-record states.
const WAITING: u32 = 0;
const TAKEN: u32 = 1;

/// Operation tag of an exchange record.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Push,
    Pop,
}

/// A parked request in the elimination array.
struct Exchange<T> {
    kind: Kind,
    /// Push: the parked node (set at creation). Pop: the response slot a
    /// claiming push deposits its node into.
    node: AtomicPtr<Node<T>>,
    /// WAITING → TAKEN, set by the claiming partner.
    state: AtomicU32,
}

impl<T> Exchange<T> {
    fn alloc(kind: Kind, node: *mut Node<T>) -> *mut Exchange<T> {
        Box::into_raw(Box::new(Exchange {
            kind,
            node: AtomicPtr::new(node),
            state: AtomicU32::new(WAITING),
        }))
    }
}

/// Outcome of one elimination attempt.
enum Elim<T> {
    /// Pair found: for a push, the node was handed over; for a pop, the
    /// value is here.
    Done(Option<T>),
    /// No partner; go back to the CAS loop.
    Miss,
}

/// The elimination-backoff stack.
///
/// # Examples
///
/// ```
/// use sec_baselines::EbStack;
/// use sec_core::{ConcurrentStack, StackHandle};
///
/// let s: EbStack<u32> = EbStack::new(2);
/// let mut h = s.register();
/// h.push(3);
/// assert_eq!(h.pop(), Some(3));
/// ```
pub struct EbStack<T: Send + 'static> {
    top: CachePadded<AtomicPtr<Node<T>>>,
    /// The elimination array: each slot holds at most one parked
    /// exchange record.
    slots: Box<[CachePadded<AtomicPtr<Exchange<T>>>]>,
    collector: Collector,
}

unsafe impl<T: Send> Send for EbStack<T> {}
unsafe impl<T: Send> Sync for EbStack<T> {}

impl<T: Send + 'static> EbStack<T> {
    /// Creates a stack for up to `max_threads` threads, with an
    /// elimination array of `max_threads.min(32)` slots (HSY size the
    /// array to the machine; contention adapts the *used* range).
    pub fn new(max_threads: usize) -> Self {
        let n = max_threads.max(1);
        Self {
            top: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            slots: (0..n.min(32))
                .map(|_| CachePadded::new(AtomicPtr::new(ptr::null_mut())))
                .collect(),
            collector: Collector::new(n),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> EbHandle<'_, T> {
        let reclaim = self
            .collector
            .register()
            .expect("EbStack: more threads than max_threads");
        let seed = 0x9E37_79B9_u32 ^ (reclaim.slot() as u32).wrapping_mul(0x85EB_CA6B);
        EbHandle {
            stack: self,
            reclaim,
            state: ElimState {
                range: 1,
                rng: seed | 1,
            },
        }
    }
}

impl<T: Send + 'static> Drop for EbStack<T> {
    fn drop(&mut self) {
        let mut cur = self.top.load(Ordering::Relaxed);
        while !cur.is_null() {
            let mut boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next;
            unsafe { ManuallyDrop::drop(&mut boxed.value) };
        }
        // No exchange record can be parked at rest: every operation
        // unparks (or hands off) its record before returning.
    }
}

impl<T: Send + 'static> fmt::Debug for EbStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EbStack")
            .field("elimination_slots", &self.slots.len())
            .finish()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for EbStack<T> {
    type Handle<'a>
        = EbHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> EbHandle<'_, T> {
        EbStack::register(self)
    }

    fn name(&self) -> &'static str {
        "EB"
    }
}

/// Per-thread adaptive elimination state (kept apart from the handle so
/// the borrow of the reclamation guard and the mutable state don't
/// alias).
struct ElimState {
    /// Adaptive elimination range: random slots are drawn from
    /// `0..range` (≤ array size). Timeouts shrink it, collisions grow it.
    range: usize,
    /// xorshift state for slot selection.
    rng: u32,
}

impl ElimState {
    fn next_slot(&mut self) -> usize {
        // xorshift32: fast, no external RNG on the hot path.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.rng = x;
        (x as usize) % self.range
    }

    fn grow(&mut self, max: usize) {
        self.range = (self.range + 1).min(max);
    }

    fn shrink(&mut self) {
        self.range = (self.range / 2).max(1);
    }
}

/// Per-thread handle to an [`EbStack`].
pub struct EbHandle<'a, T: Send + 'static> {
    stack: &'a EbStack<T>,
    reclaim: ReclaimHandle<'a>,
    state: ElimState,
}

impl<T: Send + 'static> EbStack<T> {
    /// One elimination attempt: claim an opposite-kind record if one is
    /// parked in a random slot, otherwise park our own record and wait a
    /// bounded time for a partner.
    ///
    /// `my_node` is the node being pushed (null for pops). `Done(None)`
    /// for a push means the node was handed over; `Done(Some(v))` for a
    /// pop carries the exchanged value.
    ///
    /// CAS accounting (the "three CASes" of the paper's comparison):
    /// park (1), partner's claim (2), and our withdraw — which *fails*
    /// if a partner arrived (3).
    fn attempt_eliminate(
        &self,
        state: &mut ElimState,
        my_kind: Kind,
        my_node: *mut Node<T>,
        guard: &Guard<'_, '_>,
    ) -> Elim<T> {
        let max_range = self.slots.len();
        let slot = &self.slots[state.next_slot()];
        let cur = slot.load(Ordering::Acquire);

        if !cur.is_null() {
            // Occupied: claim it if the kinds are opposite (no
            // allocation on this path).
            if unsafe { (*cur).kind } == my_kind {
                state.grow(max_range); // crowded with same-kind traffic
                return Elim::Miss;
            }
            if slot
                .compare_exchange(cur, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                state.grow(max_range);
                return Elim::Miss;
            }
            state.grow(max_range); // successful collision: the array pays off
            return match my_kind {
                Kind::Push => {
                    // Hand our node to the waiting pop, then signal.
                    unsafe {
                        (*cur).node.store(my_node, Ordering::Release);
                        (*cur).state.store(TAKEN, Ordering::Release);
                    }
                    Elim::Done(None)
                }
                Kind::Pop => {
                    // Take the waiting push's node, then signal.
                    let theirs = unsafe { (*cur).node.load(Ordering::Acquire) };
                    unsafe { (*cur).state.store(TAKEN, Ordering::Release) };
                    // Safety: the claim CAS made us the unique consumer.
                    let value = ManuallyDrop::into_inner(unsafe { ptr::read(&(*theirs).value) });
                    unsafe { guard.retire(theirs) };
                    Elim::Done(Some(value))
                }
            };
        }

        // Empty slot: park our own record.
        let ex = Exchange::alloc(my_kind, my_node);
        if slot
            .compare_exchange(ptr::null_mut(), ex, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            state.grow(max_range); // someone beat us to the slot: crowded
                                   // Nobody ever saw `ex`: free it directly.
            drop(unsafe { Box::from_raw(ex) });
            return Elim::Miss;
        }
        // Bounded wait for a partner.
        let mut backoff = Backoff::new();
        for _ in 0..32 {
            if unsafe { (*ex).state.load(Ordering::Acquire) } == TAKEN {
                return self.finish_taken(ex, guard);
            }
            backoff.snooze();
        }
        // Timeout: withdraw.
        if slot
            .compare_exchange(ex, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            state.shrink(); // lonely slot: tighten the range
                            // Concurrent claimers may have loaded the pointer before our
                            // withdraw, so free through the collector.
            unsafe { guard.retire(ex) };
            return Elim::Miss;
        }
        // Withdraw failed: a partner claimed us between the last state
        // check and the CAS — wait for it to finish.
        let mut backoff = Backoff::new();
        while unsafe { (*ex).state.load(Ordering::Acquire) } != TAKEN {
            backoff.snooze();
        }
        self.finish_taken(ex, guard)
    }

    /// Our parked record was claimed: extract the outcome.
    fn finish_taken(&self, ex: *mut Exchange<T>, guard: &Guard<'_, '_>) -> Elim<T> {
        let kind = unsafe { (*ex).kind };
        let result = match kind {
            // Push: our node now belongs to the claiming pop.
            Kind::Push => Elim::Done(None),
            Kind::Pop => {
                let node = unsafe { (*ex).node.load(Ordering::Acquire) };
                debug_assert!(!node.is_null(), "claimed pop without a deposited node");
                // Safety: the depositing push relinquished the node.
                let value = ManuallyDrop::into_inner(unsafe { ptr::read(&(*node).value) });
                unsafe { guard.retire(node) };
                Elim::Done(Some(value))
            }
        };
        unsafe { guard.retire(ex) };
        result
    }
}

impl<T: Send + 'static> StackHandle<T> for EbHandle<'_, T> {
    fn push(&mut self, value: T) {
        let node = Node::alloc(value);
        let Self {
            stack,
            reclaim,
            state,
        } = self;
        let guard = reclaim.pin();
        loop {
            // Fast path: Treiber CAS.
            let cur = stack.top.load(Ordering::Acquire);
            unsafe { (*node).next = cur };
            if stack
                .top
                .compare_exchange(cur, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // Contention: eliminate instead of retrying immediately.
            match stack.attempt_eliminate(state, Kind::Push, node, &guard) {
                Elim::Done(_) => return,
                Elim::Miss => {}
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        let Self {
            stack,
            reclaim,
            state,
        } = self;
        let guard = reclaim.pin();
        loop {
            let cur = stack.top.load(Ordering::Acquire);
            if cur.is_null() {
                return None;
            }
            let next = unsafe { (*cur).next };
            if stack
                .top
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let value = ManuallyDrop::into_inner(unsafe { ptr::read(&(*cur).value) });
                unsafe { guard.retire(cur) };
                return Some(value);
            }
            match stack.attempt_eliminate(state, Kind::Pop, ptr::null_mut(), &guard) {
                Elim::Done(v) => return v,
                Elim::Miss => {}
            }
        }
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let _guard = self.reclaim.pin();
        let cur = self.stack.top.load(Ordering::Acquire);
        if cur.is_null() {
            None
        } else {
            Some(ManuallyDrop::into_inner(unsafe { (*cur).value.clone() }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_lifo() {
        let s: EbStack<u32> = EbStack::new(1);
        let mut h = s.register();
        for i in 0..50 {
            h.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn peek_matches_top() {
        let s: EbStack<u32> = EbStack::new(1);
        let mut h = s.register();
        assert_eq!(h.peek(), None);
        h.push(1);
        h.push(2);
        assert_eq!(h.peek(), Some(2));
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 8;
        const PER: usize = 1_500;
        let s: EbStack<usize> = EbStack::new(THREADS);
        let got: Vec<Vec<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut h = s.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.push(t * PER + i);
                            if i % 2 == 1 {
                                if let Some(v) = h.pop() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v), "duplicate {v}");
        }
        let mut h = s.register();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v), "duplicate {v} in drain");
        }
        assert_eq!(seen.len(), THREADS * PER, "lost values");
    }

    #[test]
    fn values_dropped_exactly_once_with_elimination_traffic() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        const THREADS: usize = 8;
        const PER: usize = 800;
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s: EbStack<P> = EbStack::new(THREADS);
            thread::scope(|scope| {
                for t in 0..THREADS {
                    let s = &s;
                    let drops = &drops;
                    scope.spawn(move || {
                        let mut h = s.register();
                        for i in 0..PER {
                            if (t + i) % 2 == 0 {
                                h.push(P(Arc::clone(drops)));
                            } else {
                                drop(h.pop());
                            }
                        }
                    });
                }
            });
        }
        assert_eq!(drops.load(AOrd::Relaxed), THREADS * PER / 2);
    }

    #[test]
    fn adaptive_range_stays_in_bounds() {
        let s: EbStack<u32> = EbStack::new(4);
        let mut h = s.register();
        for _ in 0..100 {
            h.state.shrink();
            assert!(h.state.range >= 1);
        }
        for _ in 0..100 {
            h.state.grow(s.slots.len());
            assert!(h.state.range <= s.slots.len());
        }
        // Slot draws stay inside the current range.
        h.state.range = 3;
        for _ in 0..100 {
            assert!(h.state.next_slot() < 3);
        }
    }
}
