//! The Treiber stack over **hazard-pointer** reclamation (**TRB-HP**).
//!
//! Same algorithm as [`TreiberStack`](crate::TreiberStack), different
//! reclamation substrate: pops protect the observed top with a hazard
//! pointer before dereferencing it, instead of relying on an epoch pin.
//! The paper's §4 points out that SEC (and by extension each baseline)
//! composes with any standard reclamation scheme; the `recl_ablation`
//! benchmark uses this stack against the epoch-based one to measure
//! what that choice costs on a CAS-loop hot path:
//!
//! * **EBR**: ~2 relaxed stores per operation (pin/unpin) + an amortized
//!   announcement scan — but garbage is unbounded under a stalled reader;
//! * **HP**: one hazard store + `SeqCst` fence per *attempt* of the pop
//!   loop — a real per-op cost at high contention, but at most
//!   `2 × threads` nodes can ever be unreclaimed here.
//!
//! One subtlety absent from the EBR variant: with hazard pointers the
//! pop must re-validate `top` *after* publishing the hazard (done inside
//! [`HpHandle::protect`]) because a node freed between the load and the
//! publication could otherwise be dereferenced. ABA remains impossible
//! for the winning CAS: a protected node cannot be freed, hence its
//! address cannot be recycled while it is the CAS comparand.

use core::fmt;
use core::mem::ManuallyDrop;
use core::ptr;
use core::sync::atomic::{AtomicPtr, Ordering};
use sec_core::{ConcurrentStack, StackHandle};
use sec_reclaim::{HpDomain, HpHandle};
use sec_sync::{Backoff, CachePadded};

/// Node layout; `next` is immutable once the node is published.
struct Node<T> {
    value: ManuallyDrop<T>,
    next: *mut Node<T>,
}

// Safety: as for the EBR Treiber node — the freeing thread may differ
// from the allocating one, so moving the `T` across threads must be ok.
unsafe impl<T: Send> Send for Node<T> {}

/// Hazard slot assignment: slot 0 protects the observed `top` in `pop`
/// and `peek`. (Push never dereferences shared nodes, so it needs none.)
const HP_TOP: usize = 0;

/// The Treiber stack with hazard-pointer reclamation.
///
/// # Examples
///
/// ```
/// use sec_baselines::TreiberHpStack;
/// use sec_core::{ConcurrentStack, StackHandle};
///
/// let s: TreiberHpStack<u32> = TreiberHpStack::new(2);
/// let mut h = s.register();
/// h.push(7);
/// assert_eq!(h.pop(), Some(7));
/// ```
pub struct TreiberHpStack<T: Send + 'static> {
    top: CachePadded<AtomicPtr<Node<T>>>,
    domain: HpDomain,
}

unsafe impl<T: Send> Send for TreiberHpStack<T> {}
unsafe impl<T: Send> Sync for TreiberHpStack<T> {}

impl<T: Send + 'static> TreiberHpStack<T> {
    /// Creates a stack for up to `max_threads` concurrent threads.
    pub fn new(max_threads: usize) -> Self {
        Self {
            top: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            domain: HpDomain::new(max_threads, 1),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> TreiberHpHandle<'_, T> {
        TreiberHpHandle {
            stack: self,
            hp: self
                .domain
                .register()
                .expect("TreiberHpStack: more threads than max_threads"),
        }
    }

    /// Reclamation counters of the underlying domain (diagnostics).
    pub fn domain(&self) -> &HpDomain {
        &self.domain
    }
}

impl<T: Send + 'static> Drop for TreiberHpStack<T> {
    fn drop(&mut self) {
        let mut cur = self.top.load(Ordering::Relaxed);
        while !cur.is_null() {
            let mut boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next;
            unsafe { ManuallyDrop::drop(&mut boxed.value) };
        }
    }
}

impl<T: Send + 'static> fmt::Debug for TreiberHpStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TreiberHpStack")
            .field("domain", &self.domain)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for TreiberHpStack<T> {
    type Handle<'a>
        = TreiberHpHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> TreiberHpHandle<'_, T> {
        TreiberHpStack::register(self)
    }

    fn name(&self) -> &'static str {
        "TRB-HP"
    }
}

/// Per-thread handle to a [`TreiberHpStack`].
pub struct TreiberHpHandle<'a, T: Send + 'static> {
    stack: &'a TreiberHpStack<T>,
    hp: HpHandle<'a>,
}

impl<T: Send + 'static> StackHandle<T> for TreiberHpHandle<'_, T> {
    fn push(&mut self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value: ManuallyDrop::new(value),
            next: ptr::null_mut(),
        }));
        let mut backoff = Backoff::new();
        loop {
            let cur = self.stack.top.load(Ordering::Acquire);
            // Exclusive access until the CAS succeeds: plain write. We
            // never dereference `cur`, so no hazard is needed.
            unsafe { (*node).next = cur };
            if self
                .stack
                .top
                .compare_exchange(cur, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            backoff.spin();
        }
    }

    fn pop(&mut self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            let cur = self.hp.protect(HP_TOP, &self.stack.top);
            if cur.is_null() {
                self.hp.clear(HP_TOP);
                return None;
            }
            // Safety: `cur` is hazard-protected and was re-validated
            // against `top`, so it is not freed; `next` is immutable.
            let next = unsafe { (*cur).next };
            if self
                .stack
                .top
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Safety: the CAS made us the unique owner of `cur`.
                let value = ManuallyDrop::into_inner(unsafe { ptr::read(&(*cur).value) });
                self.hp.clear(HP_TOP);
                // Safety: unlinked by the CAS, never touched again here.
                unsafe { self.hp.retire(cur) };
                return Some(value);
            }
            backoff.spin();
        }
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let cur = self.hp.protect(HP_TOP, &self.stack.top);
        let out = if cur.is_null() {
            None
        } else {
            // Safety: protected; a concurrent pop's value read is
            // non-destructive for `T: Clone` (bytes stay intact until
            // the node is freed, which the hazard prevents).
            Some(ManuallyDrop::into_inner(unsafe { (*cur).value.clone() }))
        };
        self.hp.clear(HP_TOP);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sequential_lifo() {
        let s: TreiberHpStack<u32> = TreiberHpStack::new(1);
        let mut h = s.register();
        for i in 0..50 {
            h.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn peek_matches_top() {
        let s: TreiberHpStack<u32> = TreiberHpStack::new(1);
        let mut h = s.register();
        assert_eq!(h.peek(), None);
        h.push(3);
        assert_eq!(h.peek(), Some(3));
        h.push(4);
        assert_eq!(h.peek(), Some(4));
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 8;
        const PER: usize = 2_000;
        let s: TreiberHpStack<usize> = TreiberHpStack::new(THREADS);
        let got: Vec<Vec<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut h = s.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.push(t * PER + i);
                            if i % 2 == 1 {
                                if let Some(v) = h.pop() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v));
        }
        let mut h = s.register();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), THREADS * PER);
    }

    #[test]
    fn popped_nodes_are_eventually_freed() {
        // Push/pop enough to cross the scan threshold several times and
        // verify the domain actually frees garbage (not just defers).
        let s: TreiberHpStack<u64> = TreiberHpStack::new(1);
        let mut h = s.register();
        for i in 0..5_000 {
            h.push(i);
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(s.domain().retired_count(), 5_000);
        h.hp.scan();
        assert_eq!(s.domain().freed_count(), 5_000);
    }

    #[test]
    fn values_drop_exactly_once() {
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s: TreiberHpStack<P> = TreiberHpStack::new(4);
            thread::scope(|scope| {
                for _ in 0..4 {
                    let s = &s;
                    let drops = Arc::clone(&drops);
                    scope.spawn(move || {
                        let mut h = s.register();
                        for i in 0..500 {
                            h.push(P(Arc::clone(&drops)));
                            if i % 3 != 0 {
                                drop(h.pop());
                            }
                        }
                    });
                }
            });
        } // teardown drops stack remainder + domain orphans
        assert_eq!(drops.load(Ordering::Relaxed), 4 * 500);
    }
}
