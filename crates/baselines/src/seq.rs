//! The sequential stack applied by the FC and CC combiners.
//!
//! Flat combining and CC-Synch turn a *sequential* data structure into a
//! concurrent one; the structure itself is a plain vector. Kept as its
//! own type so the combiner code reads like the papers ("apply the
//! announced operation to the sequential object") and so tests can use
//! it as the reference model.

/// A sequential LIFO stack (the combiners' underlying object, and the
/// reference model for the test suite).
#[derive(Debug, Clone, Default)]
pub struct SeqStack<T> {
    items: Vec<T>,
}

impl<T> SeqStack<T> {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Creates an empty stack with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            items: Vec::with_capacity(cap),
        }
    }

    /// Pushes `value`.
    pub fn push(&mut self, value: T) {
        self.items.push(value);
    }

    /// Pops the most recent element.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop()
    }

    /// Reads the top element.
    pub fn peek(&self) -> Option<&T> {
        self.items.last()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_semantics() {
        let mut s = SeqStack::new();
        assert!(s.is_empty());
        assert_eq!(s.pop(), None);
        s.push(1);
        s.push(2);
        assert_eq!(s.peek(), Some(&2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let s: SeqStack<u8> = SeqStack::with_capacity(16);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
