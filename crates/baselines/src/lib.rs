//! # `sec-baselines` — the five competitor stacks of the paper's evaluation
//!
//! Each implementation follows its original publication, shares the
//! [`ConcurrentStack`]/[`StackHandle`] interface with SEC, and uses the
//! same epoch-based reclamation substrate (`sec-reclaim`), so the
//! benchmark comparisons measure the algorithms rather than incidental
//! infrastructure differences:
//!
//! | name | type | source |
//! |------|------|--------|
//! | [`TreiberStack`] (**TRB**) | lock-free CAS loop | Treiber '86 |
//! | [`EbStack`] (**EB**) | lock-free + elimination-array backoff | Hendler, Shavit, Yerushalmi SPAA '04 |
//! | [`FcStack`] (**FC**) | flat combining over a sequential stack | Hendler, Incze, Shavit, Tzafrir SPAA '10 |
//! | [`CcStack`] (**CC**) | CC-Synch combining queue over a sequential stack | Fatourou, Kallimanis PPoPP '12 |
//! | [`TsiStack`] (**TSI**) | interval-timestamped per-thread pools | Dodds, Haas, Kirsch POPL '15 |
//!
//! Two auxiliary stacks extend the lineup beyond the paper's figures:
//! [`TreiberHpStack`] (**TRB-HP**) swaps the reclamation substrate to
//! hazard pointers for the reclamation ablation (paper §4's "other
//! schemes apply"), and [`LockedStack`] (**LCK**) is the
//! `Mutex<Vec<T>>` sanity floor.
//!
//! The queue family (`SecQueue`'s competitors, sharing the
//! [`ConcurrentQueue`]/[`QueueHandle`] interface):
//!
//! | name | type | source |
//! |------|------|--------|
//! | [`MsQueue`] (**MS**) | lock-free dummy-node linked list | Michael & Scott PODC '96 |
//! | [`LockedQueue`] (**LCK-Q**) | `Mutex<VecDeque<T>>` | the sanity floor |
//!
//! The map family (`SecMap`'s competitor, sharing the
//! [`ConcurrentMap`]/[`MapHandle`] interface):
//!
//! | name | type | source |
//! |------|------|--------|
//! | [`LockedHashMap`] (**LCK-M**) | `Mutex<HashMap<K, V>>` | the sanity floor |
//!
//! [`ConcurrentStack`]: sec_core::ConcurrentStack
//! [`StackHandle`]: sec_core::StackHandle
//! [`ConcurrentQueue`]: sec_core::ConcurrentQueue
//! [`QueueHandle`]: sec_core::QueueHandle
//! [`ConcurrentMap`]: sec_core::ConcurrentMap
//! [`MapHandle`]: sec_core::MapHandle

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ccsynch;
pub mod eb;
pub mod fc;
pub mod locked;
pub mod ms;
pub mod seq;
pub mod treiber;
pub mod treiber_hp;
pub mod tsi;

pub use ccsynch::{CcHandle, CcStack};
pub use eb::{EbHandle, EbStack};
pub use fc::{FcHandle, FcStack};
pub use locked::{
    LockedHandle, LockedHashMap, LockedHashMapHandle, LockedQueue, LockedQueueHandle, LockedStack,
};
pub use ms::{MsHandle, MsQueue};
pub use seq::SeqStack;
pub use treiber::{TreiberHandle, TreiberStack};
pub use treiber_hp::{TreiberHpHandle, TreiberHpStack};
pub use tsi::{TsiHandle, TsiStack};
