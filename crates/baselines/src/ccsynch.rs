//! The CC-Synch stack (**CC**) — Fatourou & Kallimanis, PPoPP '12
//! ("Revisiting the combining synchronization technique").
//!
//! CC-Synch replaces flat combining's lock + publication list with a
//! SWAP-based queue of request nodes: a thread announces by swapping its
//! pre-allocated node onto the queue's tail, writes its request into the
//! node it received, and spins on that node's `wait` flag. The thread
//! whose `wait` clears with `completed == false` is the **combiner**: it
//! walks the queue serving up to `MAX_COMBINE` requests (including its
//! own), then hands the combiner role to the next waiting node. Node
//! recycling is built in: the node a thread receives from the swap
//! becomes its announcement node for the *next* operation, so steady
//! state allocates nothing.
//!
//! Like FC, CC applies the operations to a sequential stack, one
//! combiner at a time — SEC's evaluation shows both saturating at high
//! thread counts for the same reason (a single serving thread).

use crate::seq::SeqStack;
use core::cell::UnsafeCell;
use core::fmt;
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use sec_core::{ConcurrentStack, StackHandle};
use sec_sync::{Backoff, CachePadded};

/// Upper bound on requests served per combiner stint (the paper's `h`);
/// bounds combiner latency so the role rotates under sustained load.
const MAX_COMBINE: usize = 512;

/// Request kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Op {
    None,
    Push,
    Pop,
    Peek,
}

type PeekShim<T> = fn(&SeqStack<T>, &mut Option<T>);

/// A combining-queue node. Protocol ownership: the *announcer* writes
/// `op`/`cell`/`shim` and then publishes via `next` (Release); the
/// *combiner* reads them after loading `next` (Acquire) and writes the
/// response before clearing `wait` (Release).
struct CcNode<T> {
    op: UnsafeCell<Op>,
    cell: UnsafeCell<Option<T>>,
    shim: UnsafeCell<Option<PeekShim<T>>>,
    /// Spin flag: true while the request is neither served nor elected.
    wait: AtomicBool,
    /// Written by the combiner before clearing `wait`: `true` = served,
    /// `false` = "you are the next combiner".
    completed: UnsafeCell<bool>,
    next: AtomicPtr<CcNode<T>>,
}

impl<T> CcNode<T> {
    fn alloc() -> *mut CcNode<T> {
        Box::into_raw(Box::new(CcNode {
            op: UnsafeCell::new(Op::None),
            cell: UnsafeCell::new(None),
            shim: UnsafeCell::new(None),
            wait: AtomicBool::new(false),
            completed: UnsafeCell::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// The CC-Synch stack.
///
/// # Examples
///
/// ```
/// use sec_baselines::CcStack;
/// use sec_core::{ConcurrentStack, StackHandle};
///
/// let s: CcStack<u32> = CcStack::new(2);
/// let mut h = s.register();
/// h.push(5);
/// assert_eq!(h.pop(), Some(5));
/// ```
pub struct CcStack<T: Send + 'static> {
    /// Queue tail; SWAP target. Initially a fresh "empty" node whose
    /// `wait` is false — the first announcer becomes combiner at once.
    tail: CachePadded<AtomicPtr<CcNode<T>>>,
    /// The sequential stack. Only ever touched by the unique combiner
    /// (the queue *is* the lock), hence `UnsafeCell` without a `Mutex`.
    stack: UnsafeCell<SeqStack<T>>,
    /// Registration bookkeeping (capacity check only).
    slots: Box<[AtomicBool]>,
}

// Safety: the combining queue serializes all access to `stack`; nodes
// transfer `T: Send` payloads between threads under the wait/next
// protocol documented on `CcNode`.
unsafe impl<T: Send> Send for CcStack<T> {}
unsafe impl<T: Send> Sync for CcStack<T> {}

impl<T: Send + 'static> CcStack<T> {
    /// Creates a stack for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self {
            tail: CachePadded::new(AtomicPtr::new(CcNode::alloc())),
            stack: UnsafeCell::new(SeqStack::new()),
            slots: (0..max_threads.max(1))
                .map(|_| AtomicBool::new(false))
                .collect(),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> CcHandle<'_, T> {
        for (i, s) in self.slots.iter().enumerate() {
            if !s.load(Ordering::Relaxed)
                && s.compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return CcHandle {
                    stack: self,
                    slot: i,
                    spare: CcNode::alloc(),
                };
            }
        }
        panic!("CcStack: more threads registered than max_threads");
    }

    /// Serves one request against the sequential stack.
    ///
    /// # Safety
    ///
    /// Caller must be the unique combiner and `node`'s request must be
    /// published (reached via an Acquire load of a `next` pointer).
    unsafe fn apply(&self, node: *mut CcNode<T>) {
        // Safety: combiner exclusivity per the caller contract.
        unsafe {
            let stack = &mut *self.stack.get();
            match *(*node).op.get() {
                Op::Push => {
                    let v = (*(*node).cell.get()).take().expect("push without value");
                    stack.push(v);
                }
                Op::Pop => {
                    *(*node).cell.get() = stack.pop();
                }
                Op::Peek => {
                    let shim = (*(*node).shim.get()).take().expect("peek without shim");
                    shim(stack, &mut *(*node).cell.get());
                }
                Op::None => unreachable!("combiner reached an unpublished node"),
            }
        }
    }
}

impl<T: Send + 'static> Drop for CcStack<T> {
    fn drop(&mut self) {
        // At rest the queue is exactly one (empty) node: every served
        // node was recycled into its announcer's spare.
        let tail = self.tail.load(Ordering::Relaxed);
        if !tail.is_null() {
            drop(unsafe { Box::from_raw(tail) });
        }
        // `self.stack` drops its remaining values itself.
    }
}

impl<T: Send + 'static> fmt::Debug for CcStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CcStack")
            .field("max_threads", &self.slots.len())
            .finish()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for CcStack<T> {
    type Handle<'a>
        = CcHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> CcHandle<'_, T> {
        CcStack::register(self)
    }

    fn name(&self) -> &'static str {
        "CC"
    }
}

/// Per-thread handle to a [`CcStack`]; owns the thread's spare node.
pub struct CcHandle<'a, T: Send + 'static> {
    stack: &'a CcStack<T>,
    slot: usize,
    /// The node this thread will announce with next (recycled from the
    /// node received at its previous announcement).
    spare: *mut CcNode<T>,
}

// Safety: the handle owns its spare node exclusively.
unsafe impl<T: Send> Send for CcHandle<'_, T> {}

impl<T: Send + 'static> CcHandle<'_, T> {
    /// The CC-Synch protocol: announce, wait, maybe combine.
    fn run(&mut self, op: Op, arg: Option<T>, shim: Option<PeekShim<T>>) -> Option<T> {
        let next = self.spare;
        // Prepare the node we are installing as the new tail.
        unsafe {
            (*next).wait.store(true, Ordering::Relaxed);
            *(*next).completed.get() = false;
            (*next).next.store(ptr::null_mut(), Ordering::Relaxed);
        }

        // Announce: SWAP hands us the previous tail — *our* request node.
        let cur = self.stack.tail.swap(next, Ordering::AcqRel);

        // Fill in the request, then publish it by linking `next`
        // (Release: the combiner's Acquire load of `next` sees op/cell).
        unsafe {
            *(*cur).op.get() = op;
            *(*cur).cell.get() = arg;
            *(*cur).shim.get() = shim;
            (*cur).next.store(next, Ordering::Release);
        }
        // Recycle: `cur` is ours once our request completes.
        self.spare = cur;

        // Wait for service or election.
        let mut backoff = Backoff::new();
        while unsafe { (*cur).wait.load(Ordering::Acquire) } {
            backoff.snooze();
        }

        if unsafe { *(*cur).completed.get() } {
            // Served by another combiner.
            return unsafe { (*(*cur).cell.get()).take() };
        }

        // We are the combiner: serve from our own node onwards.
        let mut tmp = cur;
        let mut served = 0;
        loop {
            let nextp = unsafe { (*tmp).next.load(Ordering::Acquire) };
            if nextp.is_null() || served >= MAX_COMBINE {
                break;
            }
            // Safety: we are the unique combiner; `tmp`'s request is
            // published (non-null next).
            unsafe {
                self.stack.apply(tmp);
                *(*tmp).completed.get() = true;
                (*tmp).wait.store(false, Ordering::Release);
            }
            served += 1;
            tmp = nextp;
        }
        // Hand over: `tmp` is either an empty tail node (its future
        // announcer finds wait == false, completed == false and combines
        // immediately) or a pending request at the MAX_COMBINE bound
        // (its announcer becomes the next combiner and serves itself
        // first).
        unsafe { (*tmp).wait.store(false, Ordering::Release) };

        unsafe { (*(*cur).cell.get()).take() }
    }
}

impl<T: Send + 'static> StackHandle<T> for CcHandle<'_, T> {
    fn push(&mut self, value: T) {
        let _ = self.run(Op::Push, Some(value), None);
    }

    fn pop(&mut self) -> Option<T> {
        self.run(Op::Pop, None, None)
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        self.run(Op::Peek, None, Some(|s, out| *out = s.peek().cloned()))
    }
}

impl<T: Send + 'static> Drop for CcHandle<'_, T> {
    fn drop(&mut self) {
        // The spare is the node we received at our last announcement
        // (or a fresh one): fully released, referenced by nobody.
        drop(unsafe { Box::from_raw(self.spare) });
        self.stack.slots[self.slot].store(false, Ordering::Release);
    }
}

impl<T: Send + 'static> fmt::Debug for CcHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CcHandle")
            .field("slot", &self.slot)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_lifo() {
        let s: CcStack<u32> = CcStack::new(1);
        let mut h = s.register();
        for i in 0..50 {
            h.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn peek_is_non_destructive() {
        let s: CcStack<u32> = CcStack::new(1);
        let mut h = s.register();
        assert_eq!(h.peek(), None);
        h.push(9);
        assert_eq!(h.peek(), Some(9));
        assert_eq!(h.peek(), Some(9));
        assert_eq!(h.pop(), Some(9));
    }

    #[test]
    fn handle_drop_and_reregister() {
        let s: CcStack<u32> = CcStack::new(2);
        for round in 0..4 {
            let mut h = s.register();
            h.push(round);
            assert_eq!(h.pop(), Some(round));
        }
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 8;
        const PER: usize = 1_500;
        let s: CcStack<usize> = CcStack::new(THREADS);
        let got: Vec<Vec<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut h = s.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.push(t * PER + i);
                            if i % 2 == 1 {
                                if let Some(v) = h.pop() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v));
        }
        let mut h = s.register();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), THREADS * PER);
    }

    #[test]
    fn values_dropped_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s: CcStack<P> = CcStack::new(4);
            thread::scope(|scope| {
                for _ in 0..4 {
                    let s = &s;
                    let drops = &drops;
                    scope.spawn(move || {
                        let mut h = s.register();
                        for i in 0..500 {
                            h.push(P(Arc::clone(drops)));
                            if i % 3 == 0 {
                                drop(h.pop());
                            }
                        }
                    });
                }
            });
        }
        assert_eq!(drops.load(AOrd::Relaxed), 4 * 500);
    }

    #[test]
    fn combiner_handoff_under_oversubscription() {
        const THREADS: usize = 12;
        let s: CcStack<usize> = CcStack::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                scope.spawn(move || {
                    let mut h = s.register();
                    for i in 0..800 {
                        if (t + i) % 2 == 0 {
                            h.push(i);
                        } else {
                            h.pop();
                        }
                    }
                });
            }
        });
    }
}
