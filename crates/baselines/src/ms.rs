//! The Michael–Scott queue (**MS**): the classic lock-free linked-list
//! FIFO queue (Michael & Scott, PODC '96), the queue family's point of
//! reference exactly as Treiber is the stack family's.
//!
//! Head and tail each sit on their own cache line; every operation
//! fights for one of them with a CAS per element, which is the
//! per-operation contention SEC-Q's batched splice/unlink amortizes
//! away. Uses the standard dummy-node representation with tail-lag
//! helping, over the same epoch-based reclamation substrate as the
//! other baselines, so the `queue_bench` comparison measures the
//! algorithms rather than incidental infrastructure.

use core::fmt;
use core::mem::MaybeUninit;
use core::ptr;
use core::sync::atomic::{AtomicPtr, Ordering};
use sec_core::{ConcurrentQueue, QueueHandle};
use sec_reclaim::{Collector, Handle as ReclaimHandle};
use sec_sync::{Backoff, CachePadded};

/// An MS-queue node; the value is `MaybeUninit` because the dummy at
/// the head owns no value (it is either the initial sentinel or a node
/// whose value a dequeue already consumed).
struct Node<T> {
    value: MaybeUninit<T>,
    next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    fn alloc(value: T) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value: MaybeUninit::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }

    fn alloc_dummy() -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value: MaybeUninit::uninit(),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// The Michael–Scott queue.
///
/// # Examples
///
/// ```
/// use sec_baselines::MsQueue;
/// use sec_core::{ConcurrentQueue, QueueHandle};
///
/// let q: MsQueue<u32> = MsQueue::new(2);
/// let mut h = q.register();
/// h.enqueue(7);
/// h.enqueue(8);
/// assert_eq!(h.dequeue(), Some(7));
/// assert_eq!(h.dequeue(), Some(8));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct MsQueue<T: Send + 'static> {
    head: CachePadded<AtomicPtr<Node<T>>>,
    tail: CachePadded<AtomicPtr<Node<T>>>,
    collector: Collector,
}

unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T: Send + 'static> MsQueue<T> {
    /// Creates a queue for up to `max_threads` concurrent threads.
    pub fn new(max_threads: usize) -> Self {
        let dummy = Node::alloc_dummy();
        Self {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            collector: Collector::new(max_threads),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> MsHandle<'_, T> {
        MsHandle {
            queue: self,
            reclaim: self
                .collector
                .register()
                .expect("MsQueue: more threads than max_threads"),
        }
    }
}

impl<T: Send + 'static> Drop for MsQueue<T> {
    fn drop(&mut self) {
        let dummy = self.head.load(Ordering::Relaxed);
        let mut cur = unsafe { (*dummy).next.load(Ordering::Relaxed) };
        // The dummy's value was consumed (or never existed).
        drop(unsafe { Box::from_raw(dummy) });
        while !cur.is_null() {
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next.load(Ordering::Relaxed);
            // Safety: nodes past the dummy still own their values.
            unsafe { boxed.value.assume_init() };
        }
    }
}

impl<T: Send + 'static> fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsQueue").finish_non_exhaustive()
    }
}

impl<T: Send + 'static> ConcurrentQueue<T> for MsQueue<T> {
    type Handle<'a>
        = MsHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> MsHandle<'_, T> {
        MsQueue::register(self)
    }

    fn name(&self) -> &'static str {
        "MS"
    }
}

/// Per-thread handle to an [`MsQueue`].
pub struct MsHandle<'a, T: Send + 'static> {
    queue: &'a MsQueue<T>,
    reclaim: ReclaimHandle<'a>,
}

impl<T: Send + 'static> QueueHandle<T> for MsHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        let node = Node::alloc(value);
        let _guard = self.reclaim.pin();
        let mut backoff = Backoff::new();
        loop {
            let tail = self.queue.tail.load(Ordering::Acquire);
            // Safety: pinned, so `tail` cannot have been freed.
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if !next.is_null() {
                // Tail lags; help swing it and retry.
                let _ = self.queue.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            if unsafe { &(*tail).next }
                .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Swing tail to the new node; a failure means someone
                // helped us, which is fine.
                let _ = self.queue.tail.compare_exchange(
                    tail,
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                return;
            }
            backoff.spin();
        }
    }

    fn dequeue(&mut self) -> Option<T> {
        let guard = self.reclaim.pin();
        let mut backoff = Backoff::new();
        loop {
            let head = self.queue.head.load(Ordering::Acquire);
            let tail = self.queue.tail.load(Ordering::Acquire);
            // Safety: pinned, so `head` cannot have been freed.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            if ptr::eq(head, tail) {
                if next.is_null() {
                    return None; // validated empty
                }
                // Tail lags behind a completed link; help it along.
                let _ = self.queue.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                continue;
            }
            if next.is_null() {
                // head != tail but the link is not visible yet; rare
                // transient — retry.
                backoff.snooze();
                continue;
            }
            if self
                .queue
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Safety: the CAS made us the unique consumer of
                // `next`'s value and the unique retirer of the old
                // dummy `head`.
                let value = unsafe { ptr::read(&(*next).value).assume_init() };
                unsafe { guard.retire(head) };
                return Some(value);
            }
            backoff.spin();
        }
    }
}

impl<T: Send + 'static> fmt::Debug for MsHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsHandle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_fifo() {
        let q: MsQueue<u32> = MsQueue::new(1);
        let mut h = q.register();
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 8;
        const PER: usize = 2_000;
        let q: MsQueue<u64> = MsQueue::new(THREADS + 1);
        let got: Vec<Vec<u64>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut h = q.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.enqueue((t * PER + i) as u64);
                            if i % 2 == 1 {
                                if let Some(v) = h.dequeue() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v), "duplicate {v}");
        }
        let mut h = q.register();
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v), "duplicate {v} in drain");
        }
        assert_eq!(seen.len(), THREADS * PER);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        const PRODUCERS: usize = 3;
        const PER: u64 = 3_000;
        let q: MsQueue<u64> = MsQueue::new(PRODUCERS + 1);
        let got: Vec<u64> = thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let q = &q;
                scope.spawn(move || {
                    let mut h = q.register();
                    for i in 0..PER {
                        h.enqueue(((p as u64) << 32) | i);
                    }
                });
            }
            let q = &q;
            scope
                .spawn(move || {
                    let mut h = q.register();
                    let mut got = Vec::new();
                    while got.len() < (PRODUCERS as u64 * PER) as usize {
                        if let Some(v) = h.dequeue() {
                            got.push(v);
                        }
                    }
                    got
                })
                .join()
                .unwrap()
        });
        let mut last = [None::<u64>; PRODUCERS];
        for v in got {
            let (p, i) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
            if let Some(prev) = last[p] {
                assert!(i > prev, "producer {p}: {i} after {prev}");
            }
            last[p] = Some(i);
        }
    }

    #[test]
    fn drops_remaining_values_on_teardown() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q: MsQueue<P> = MsQueue::new(1);
            let mut h = q.register();
            for _ in 0..10 {
                h.enqueue(P(Arc::clone(&drops)));
            }
            drop(h.dequeue());
        }
        assert_eq!(drops.load(AOrd::Relaxed), 10);
    }
}
