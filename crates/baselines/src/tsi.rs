//! The interval timestamped stack (**TSI**) — Dodds, Haas, Kirsch,
//! POPL '15 ("A scalable, correct time-stamped stack"), interval
//! variant (the best-performing one, used by the SEC paper).
//!
//! Each thread owns a *single-producer pool* (a LIFO linked list).
//! `push` inserts into the caller's own pool **without any shared-top
//! synchronization** and then stamps the element with a time *interval*
//! `[start, end]` (two clock reads separated by a tunable delay —
//! `RDTSCP` in the original; see `sec_sync::TscClock` for our source).
//! `pop` scans all pools for the youngest untaken element, picks a
//! maximal one under the interval order (`a > b  iff  a.start > b.end`),
//! and claims it with a CAS on its `taken` flag. An element whose
//! interval begins after the pop started is concurrent with the pop and
//! may be taken immediately — the timestamp analogue of elimination.
//!
//! The asymmetry the SEC paper probes in Figure 3 is structural:
//! `push` is O(1) and synchronization-free, while `pop`/`peek` pay an
//! O(#threads) scan — which is why TSI wins push-only workloads by a
//! wide margin and loses pop-only and read-heavy ones.
//!
//! Emptiness is linearized with a double-collect: a pop that finds no
//! candidate re-reads every pool's version counter (bumped by each
//! push) and reports EMPTY only if nothing changed.

use core::fmt;
use core::mem::ManuallyDrop;
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use sec_core::{ConcurrentStack, StackHandle};
use sec_reclaim::{Collector, Guard, Handle as ReclaimHandle};
use sec_sync::{Backoff, CachePadded, TscClock};

/// Timestamp used before an element's interval is stamped: newer than
/// everything, so concurrent pops may take the element immediately.
const TS_TOP: u64 = u64::MAX;

struct TsNode<T> {
    value: ManuallyDrop<T>,
    start: AtomicU64,
    end: AtomicU64,
    taken: AtomicBool,
    next: AtomicPtr<TsNode<T>>,
}

/// One thread's single-producer pool.
struct Pool<T> {
    /// Newest element first. Written only by the owning thread; read by
    /// every popping thread.
    head: AtomicPtr<TsNode<T>>,
    /// Bumped (after the head store) on every push; the pops'
    /// double-collect emptiness check watches it.
    version: AtomicU64,
    claimed: AtomicBool,
}

/// The interval timestamped stack.
///
/// # Examples
///
/// ```
/// use sec_baselines::TsiStack;
/// use sec_core::{ConcurrentStack, StackHandle};
///
/// let s: TsiStack<u32> = TsiStack::new(2);
/// let mut h = s.register();
/// h.push(11);
/// assert_eq!(h.pop(), Some(11));
/// assert_eq!(h.pop(), None);
/// ```
pub struct TsiStack<T: Send + 'static> {
    pools: Box<[CachePadded<Pool<T>>]>,
    clock: TscClock,
    /// Interval-widening delay in pause iterations (the TSI benchmark's
    /// `delay` parameter; the SEC paper uses the benchmark default).
    delay: u32,
    collector: Collector,
}

unsafe impl<T: Send> Send for TsiStack<T> {}
unsafe impl<T: Send> Sync for TsiStack<T> {}

impl<T: Send + 'static> TsiStack<T> {
    /// Default interval delay (pause iterations between the two clock
    /// reads of a push's interval).
    pub const DEFAULT_DELAY: u32 = 32;

    /// Creates a stack for up to `max_threads` threads with the default
    /// interval delay.
    pub fn new(max_threads: usize) -> Self {
        Self::with_delay(max_threads, Self::DEFAULT_DELAY)
    }

    /// Creates a stack with an explicit interval delay.
    pub fn with_delay(max_threads: usize, delay: u32) -> Self {
        let n = max_threads.max(1);
        Self {
            pools: (0..n)
                .map(|_| {
                    CachePadded::new(Pool {
                        head: AtomicPtr::new(ptr::null_mut()),
                        version: AtomicU64::new(0),
                        claimed: AtomicBool::new(false),
                    })
                })
                .collect(),
            clock: TscClock::new(),
            delay,
            collector: Collector::new(n),
        }
    }

    /// Registers the calling thread, assigning it a pool.
    pub fn register(&self) -> TsiHandle<'_, T> {
        let reclaim = self
            .collector
            .register()
            .expect("TsiStack: more threads than max_threads");
        for (i, p) in self.pools.iter().enumerate() {
            if !p.claimed.load(Ordering::Relaxed)
                && p.claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return TsiHandle {
                    stack: self,
                    pool_idx: i,
                    reclaim,
                };
            }
        }
        unreachable!("collector capacity == pool count");
    }

    /// `a` strictly after `b` in the interval order.
    #[inline]
    fn after(a_start: u64, b_end: u64) -> bool {
        a_start > b_end
    }

    /// Youngest untaken element of pool `idx` (or null).
    fn first_untaken(&self, idx: usize) -> *mut TsNode<T> {
        let mut cur = self.pools[idx].head.load(Ordering::Acquire);
        while !cur.is_null() && unsafe { (*cur).taken.load(Ordering::Acquire) } {
            cur = unsafe { (*cur).next.load(Ordering::Acquire) };
        }
        cur
    }

    /// Scan result: a maximal candidate (node, its start, its end) under
    /// the interval order, or an immediate-take candidate if one began
    /// after `pop_start`.
    fn scan(&self, start_pool: usize, pop_start: u64) -> Option<(*mut TsNode<T>, bool)> {
        let n = self.pools.len();
        let mut best: Option<(*mut TsNode<T>, u64, u64)> = None;
        for off in 0..n {
            let idx = (start_pool + off) % n;
            let cand = self.first_untaken(idx);
            if cand.is_null() {
                continue;
            }
            let s = unsafe { (*cand).start.load(Ordering::Acquire) };
            let e = unsafe { (*cand).end.load(Ordering::Acquire) };
            // Interval elimination: stamped after we began ⇒ concurrent
            // with this pop ⇒ legal to take right now.
            if s > pop_start {
                return Some((cand, true));
            }
            match best {
                Some((_, _, be)) if !Self::after(s, be) => {}
                _ => best = Some((cand, s, e)),
            }
        }
        best.map(|(p, _, _)| (p, false))
    }

    /// Claims `node`; on success moves its value out. The node stays in
    /// its pool (marked taken) until the pool owner prunes it.
    fn try_take(&self, node: *mut TsNode<T>) -> Option<T> {
        let won = unsafe {
            (*node)
                .taken
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        };
        if won {
            // Safety: the CAS made us the unique consumer; the node
            // remains allocated (pool-linked + epoch protection).
            Some(ManuallyDrop::into_inner(unsafe {
                ptr::read(&(*node).value)
            }))
        } else {
            None
        }
    }

    /// Snapshot of all pool versions (for the emptiness double-collect).
    fn versions(&self, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend(self.pools.iter().map(|p| p.version.load(Ordering::Acquire)));
    }
}

impl<T: Send + 'static> Drop for TsiStack<T> {
    fn drop(&mut self) {
        for pool in self.pools.iter() {
            let mut cur = pool.head.load(Ordering::Relaxed);
            while !cur.is_null() {
                let mut boxed = unsafe { Box::from_raw(cur) };
                cur = boxed.next.load(Ordering::Relaxed);
                if !boxed.taken.load(Ordering::Relaxed) {
                    // Value never consumed: drop it with the node.
                    unsafe { ManuallyDrop::drop(&mut boxed.value) };
                }
            }
        }
    }
}

impl<T: Send + 'static> fmt::Debug for TsiStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TsiStack")
            .field("pools", &self.pools.len())
            .field("delay", &self.delay)
            .finish()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for TsiStack<T> {
    type Handle<'a>
        = TsiHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> TsiHandle<'_, T> {
        TsiStack::register(self)
    }

    fn name(&self) -> &'static str {
        "TSI"
    }
}

/// Per-thread handle to a [`TsiStack`]; owns one pool.
pub struct TsiHandle<'a, T: Send + 'static> {
    stack: &'a TsiStack<T>,
    pool_idx: usize,
    reclaim: ReclaimHandle<'a>,
}

impl<T: Send + 'static> TsiHandle<'_, T> {
    /// Unlinks the taken prefix of our own pool (single-producer
    /// maintenance, run on each push as in the original's `insert`).
    fn prune(&self, guard: &Guard<'_, '_>) {
        let pool = &self.stack.pools[self.pool_idx];
        let mut head = pool.head.load(Ordering::Acquire);
        let mut changed = false;
        while !head.is_null() && unsafe { (*head).taken.load(Ordering::Acquire) } {
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            // Safety: only the owner unlinks, so each node is retired
            // exactly once; concurrent scanners are pinned.
            unsafe { guard.retire(head) };
            head = next;
            changed = true;
        }
        if changed {
            pool.head.store(head, Ordering::Release);
        }
    }
}

impl<T: Send + 'static> StackHandle<T> for TsiHandle<'_, T> {
    fn push(&mut self, value: T) {
        let guard = self.reclaim.pin();
        self.prune(&guard);

        let pool = &self.stack.pools[self.pool_idx];
        let node = Box::into_raw(Box::new(TsNode {
            value: ManuallyDrop::new(value),
            start: AtomicU64::new(TS_TOP),
            end: AtomicU64::new(TS_TOP),
            taken: AtomicBool::new(false),
            next: AtomicPtr::new(pool.head.load(Ordering::Relaxed)),
        }));
        // Publish first (with the ⊤ timestamp), then stamp: concurrent
        // pops may already take the ⊤-stamped element (it is trivially
        // "after" their start).
        pool.head.store(node, Ordering::Release);
        pool.version.fetch_add(1, Ordering::AcqRel);

        let (s, e) = self.stack.clock.interval(self.stack.delay);
        unsafe {
            (*node).end.store(e, Ordering::Relaxed);
            // `start` is the field pops order by; Release pairs with
            // their Acquire so a stamped interval is seen whole (a pop
            // reading the new `start` also sees the new `end`).
            (*node).start.store(s, Ordering::Release);
        }
    }

    fn pop(&mut self) -> Option<T> {
        let guard = self.reclaim.pin();
        let pop_start = self.stack.clock.now();
        let mut versions = Vec::with_capacity(self.stack.pools.len());
        let mut backoff = Backoff::new();
        loop {
            self.stack.versions(&mut versions);
            match self.stack.scan(self.pool_idx, pop_start) {
                Some((node, _concurrent)) => {
                    if let Some(v) = self.stack.try_take(node) {
                        drop(guard);
                        return Some(v);
                    }
                    // Lost the race for this candidate: rescan.
                    backoff.spin();
                }
                None => {
                    // Double-collect: EMPTY only if no push intervened.
                    let stable = self
                        .stack
                        .pools
                        .iter()
                        .zip(versions.iter())
                        .all(|(p, &v)| p.version.load(Ordering::Acquire) == v);
                    if stable {
                        return None;
                    }
                    backoff.spin();
                }
            }
        }
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let _guard = self.reclaim.pin();
        let peek_start = self.stack.clock.now();
        let mut versions = Vec::with_capacity(self.stack.pools.len());
        loop {
            self.stack.versions(&mut versions);
            match self.stack.scan(self.pool_idx, peek_start) {
                Some((node, _)) => {
                    // Clone without claiming. The value bytes stay valid
                    // while we are pinned even if a pop claims it now.
                    return Some(ManuallyDrop::into_inner(unsafe { (*node).value.clone() }));
                }
                None => {
                    let stable = self
                        .stack
                        .pools
                        .iter()
                        .zip(versions.iter())
                        .all(|(p, &v)| p.version.load(Ordering::Acquire) == v);
                    if stable {
                        return None;
                    }
                }
            }
        }
    }
}

impl<T: Send + 'static> Drop for TsiHandle<'_, T> {
    fn drop(&mut self) {
        self.stack.pools[self.pool_idx]
            .claimed
            .store(false, Ordering::Release);
    }
}

impl<T: Send + 'static> fmt::Debug for TsiHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TsiHandle")
            .field("pool", &self.pool_idx)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_lifo() {
        let s: TsiStack<u32> = TsiStack::new(1);
        let mut h = s.register();
        for i in 0..50 {
            h.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(h.pop(), Some(i), "at {i}");
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn empty_pop_and_peek() {
        let s: TsiStack<u8> = TsiStack::new(2);
        let mut h = s.register();
        assert_eq!(h.pop(), None);
        assert_eq!(h.peek(), None);
        h.push(1);
        assert_eq!(h.peek(), Some(1));
        assert_eq!(h.pop(), Some(1));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn cross_thread_visibility() {
        // One thread pushes; the other must be able to pop all values.
        let s: TsiStack<u32> = TsiStack::new(2);
        thread::scope(|scope| {
            let s1 = &s;
            let producer = scope.spawn(move || {
                let mut h = s1.register();
                for i in 0..100 {
                    h.push(i);
                }
            });
            producer.join().unwrap();
            let s2 = &s;
            scope.spawn(move || {
                let mut h = s2.register();
                let mut got = HashSet::new();
                for _ in 0..100 {
                    let v = h.pop().expect("value must be visible");
                    assert!(got.insert(v));
                }
                assert_eq!(h.pop(), None);
            });
        });
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 8;
        const PER: usize = 1_000;
        let s: TsiStack<usize> = TsiStack::new(THREADS);
        let got: Vec<Vec<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut h = s.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.push(t * PER + i);
                            if i % 2 == 1 {
                                if let Some(v) = h.pop() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v), "duplicate {v}");
        }
        let mut h = s.register();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v), "duplicate {v} in drain");
        }
        assert_eq!(seen.len(), THREADS * PER, "lost values");
    }

    #[test]
    fn values_dropped_exactly_once_including_taken_unpruned() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let s: TsiStack<P> = TsiStack::new(2);
            let mut h = s.register();
            for _ in 0..10 {
                h.push(P(Arc::clone(&drops)));
            }
            // Pop 5: these nodes stay in the pool marked taken (we never
            // push again, so no pruning happens) — teardown must not
            // double-drop them.
            for _ in 0..5 {
                drop(h.pop());
            }
            drop(h);
        }
        assert_eq!(drops.load(AOrd::Relaxed), 10);
    }

    #[test]
    fn interval_order_is_respected_for_sequential_pushes() {
        // Pushes separated in time have disjoint intervals, so pops
        // must return them in strict LIFO order even from two pools.
        let s: TsiStack<u32> = TsiStack::new(2);
        thread::scope(|scope| {
            let s1 = &s;
            scope
                .spawn(move || {
                    let mut h = s1.register();
                    h.push(1);
                })
                .join()
                .unwrap();
            let s2 = &s;
            scope
                .spawn(move || {
                    let mut h = s2.register();
                    h.push(2);
                    assert_eq!(h.pop(), Some(2), "2 was pushed strictly after 1");
                    assert_eq!(h.pop(), Some(1));
                })
                .join()
                .unwrap();
        });
    }

    #[test]
    fn pruning_reclaims_taken_nodes() {
        let s: TsiStack<u32> = TsiStack::new(1);
        let mut h = s.register();
        for i in 0..100 {
            h.push(i);
            assert_eq!(h.pop(), Some(i));
        }
        // Each push prunes the previous taken node; the collector must
        // have seen retirements.
        assert!(s.collector.stats().retired > 0);
    }
}
