//! The flat-combining stack (**FC**) — Hendler, Incze, Shavit, Tzafrir,
//! SPAA '10.
//!
//! Threads *publish* their operation in a per-thread record; whoever
//! wins a try-lock becomes the **combiner** and applies every published
//! request to a sequential stack, writing responses back into the
//! records. Losers spin locally on their own record. One thread thus
//! executes a whole burst of operations with zero CAS traffic on the
//! data structure itself — the trade-off SEC's evaluation probes: great
//! at moderate concurrency, a serial bottleneck at high thread counts.
//!
//! Implementation notes:
//!
//! * The original uses a dynamic publication *list* with aging/cleanup
//!   because threads come and go; our stacks are constructed for a fixed
//!   maximum thread count, so the publication list is a fixed array of
//!   cache-padded records and no aging is needed.
//! * `peek` requests carry a monomorphized "clone the top" shim function
//!   pointer, created where `T: Clone` is in scope, so the combiner can
//!   serve peeks without `T: Clone` bounds on the whole stack.

use crate::seq::SeqStack;
use core::cell::UnsafeCell;
use core::fmt;
use core::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use sec_core::{ConcurrentStack, StackHandle};
use sec_sync::{Backoff, CachePadded, TtasLock};

/// Record states (the `state` word of a publication record).
const IDLE: u32 = 0;
const REQ_PUSH: u32 = 1;
const REQ_POP: u32 = 2;
const REQ_PEEK: u32 = 3;
const DONE: u32 = 4;

/// Shim type: serves one `peek` against the sequential stack.
type PeekShim<T> = fn(&SeqStack<T>, &mut Option<T>);

/// One thread's publication record.
struct Record<T> {
    /// Request/response state machine word.
    state: AtomicU32,
    /// Argument (push) / response (pop, peek) cell. Owner writes before
    /// the Release store of a request state; combiner reads after its
    /// Acquire load, and vice versa for the response.
    cell: UnsafeCell<Option<T>>,
    /// Clone shim for peek requests (see module docs).
    peek_shim: UnsafeCell<Option<PeekShim<T>>>,
    /// Registration flag for this record slot.
    claimed: AtomicBool,
}

impl<T> Record<T> {
    fn new() -> Self {
        Self {
            state: AtomicU32::new(IDLE),
            cell: UnsafeCell::new(None),
            peek_shim: UnsafeCell::new(None),
            claimed: AtomicBool::new(false),
        }
    }
}

/// The flat-combining stack.
///
/// # Examples
///
/// ```
/// use sec_baselines::FcStack;
/// use sec_core::{ConcurrentStack, StackHandle};
///
/// let s: FcStack<u32> = FcStack::new(2);
/// let mut h = s.register();
/// h.push(1);
/// assert_eq!(h.peek(), Some(1));
/// assert_eq!(h.pop(), Some(1));
/// ```
pub struct FcStack<T: Send + 'static> {
    /// The combiner lock protecting the sequential stack.
    stack: TtasLock<SeqStack<T>>,
    /// The publication "list" (fixed array, see module docs).
    records: Box<[CachePadded<Record<T>>]>,
    /// Combiner scan rounds per lock acquisition (the FC paper's
    /// "combining rounds"; >1 amortizes the lock over late arrivals).
    rounds: u32,
}

// Safety: record cells are only accessed under the state-word protocol
// (owner before Release of a request, combiner between Acquire of the
// request and Release of DONE); `T: Send` values cross threads only
// through those cells.
unsafe impl<T: Send> Send for FcStack<T> {}
unsafe impl<T: Send> Sync for FcStack<T> {}

impl<T: Send + 'static> FcStack<T> {
    /// Creates a stack for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self {
            stack: TtasLock::new(SeqStack::new()),
            records: (0..max_threads.max(1))
                .map(|_| CachePadded::new(Record::new()))
                .collect(),
            rounds: 2,
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> FcHandle<'_, T> {
        for (i, r) in self.records.iter().enumerate() {
            if !r.claimed.load(Ordering::Relaxed)
                && r.claimed
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return FcHandle {
                    stack: self,
                    idx: i,
                };
            }
        }
        panic!("FcStack: more threads registered than max_threads");
    }

    /// The combiner: apply every published request; repeat for
    /// `self.rounds` scans or until a scan finds nothing.
    fn combine(&self, stack: &mut SeqStack<T>) {
        for _ in 0..self.rounds {
            let mut served = 0usize;
            for rec in self.records.iter() {
                let state = rec.state.load(Ordering::Acquire);
                match state {
                    REQ_PUSH => {
                        // Safety: the Acquire above pairs with the
                        // owner's Release; the owner won't touch the
                        // cell again until it sees DONE.
                        let v = unsafe { (*rec.cell.get()).take() }
                            .expect("push request without argument");
                        stack.push(v);
                        rec.state.store(DONE, Ordering::Release);
                        served += 1;
                    }
                    REQ_POP => {
                        let v = stack.pop();
                        unsafe { *rec.cell.get() = v };
                        rec.state.store(DONE, Ordering::Release);
                        served += 1;
                    }
                    REQ_PEEK => {
                        let shim = unsafe { (*rec.peek_shim.get()).take() }
                            .expect("peek request without shim");
                        shim(stack, unsafe { &mut *rec.cell.get() });
                        rec.state.store(DONE, Ordering::Release);
                        served += 1;
                    }
                    _ => {}
                }
            }
            if served == 0 {
                break;
            }
        }
    }
}

impl<T: Send + 'static> fmt::Debug for FcStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FcStack")
            .field("max_threads", &self.records.len())
            .field("rounds", &self.rounds)
            .finish()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for FcStack<T> {
    type Handle<'a>
        = FcHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> FcHandle<'_, T> {
        FcStack::register(self)
    }

    fn name(&self) -> &'static str {
        "FC"
    }
}

/// Per-thread handle to an [`FcStack`].
pub struct FcHandle<'a, T: Send + 'static> {
    stack: &'a FcStack<T>,
    idx: usize,
}

impl<T: Send + 'static> FcHandle<'_, T> {
    fn my_record(&self) -> &Record<T> {
        &self.stack.records[self.idx]
    }

    /// Publish a request and wait for a combiner (possibly ourselves)
    /// to serve it; returns the response cell's content.
    fn run_request(&mut self, req: u32) -> Option<T> {
        let rec = self.my_record();
        rec.state.store(req, Ordering::Release);

        let mut backoff = Backoff::new();
        loop {
            if rec.state.load(Ordering::Acquire) == DONE {
                break;
            }
            // Combiner election: cheap read first, then try-lock.
            if !self.stack.stack.is_locked() {
                if let Some(mut guard) = self.stack.stack.try_lock() {
                    self.stack.combine(&mut guard);
                    drop(guard);
                    // We necessarily served ourselves (our request was
                    // published before we scanned).
                    debug_assert_eq!(rec.state.load(Ordering::Acquire), DONE);
                    break;
                }
            }
            backoff.snooze();
        }

        // Safety: DONE (Acquire) pairs with the combiner's Release; the
        // combiner no longer touches the record.
        let resp = unsafe { (*rec.cell.get()).take() };
        rec.state.store(IDLE, Ordering::Relaxed);
        resp
    }
}

impl<T: Send + 'static> StackHandle<T> for FcHandle<'_, T> {
    fn push(&mut self, value: T) {
        let rec = self.my_record();
        // Safety: we own the record while its state is IDLE.
        unsafe { *rec.cell.get() = Some(value) };
        let _ = self.run_request(REQ_PUSH);
    }

    fn pop(&mut self) -> Option<T> {
        self.run_request(REQ_POP)
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let rec = self.my_record();
        // Monomorphize the clone here, where `T: Clone` holds.
        unsafe { *rec.peek_shim.get() = Some(|s, out| *out = s.peek().cloned()) };
        self.run_request(REQ_PEEK)
    }
}

impl<T: Send + 'static> Drop for FcHandle<'_, T> {
    fn drop(&mut self) {
        let rec = self.my_record();
        debug_assert_eq!(rec.state.load(Ordering::Relaxed), IDLE);
        rec.claimed.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_lifo() {
        let s: FcStack<u32> = FcStack::new(1);
        let mut h = s.register();
        for i in 0..50 {
            h.push(i);
        }
        for i in (0..50).rev() {
            assert_eq!(h.pop(), Some(i));
        }
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn peek_is_non_destructive() {
        let s: FcStack<String> = FcStack::new(1);
        let mut h = s.register();
        h.push("x".into());
        assert_eq!(h.peek(), Some("x".to_string()));
        assert_eq!(h.peek(), Some("x".to_string()));
        assert_eq!(h.pop(), Some("x".to_string()));
        assert_eq!(h.peek(), None);
    }

    #[test]
    fn registration_reuses_slots() {
        let s: FcStack<u8> = FcStack::new(1);
        for _ in 0..3 {
            let mut h = s.register();
            h.push(1);
            assert_eq!(h.pop(), Some(1));
        }
    }

    #[test]
    #[should_panic(expected = "more threads registered")]
    fn over_registration_panics() {
        let s: FcStack<u8> = FcStack::new(1);
        let _a = s.register();
        let _b = s.register();
    }

    #[test]
    fn concurrent_conservation() {
        const THREADS: usize = 8;
        const PER: usize = 1_500;
        let s: FcStack<usize> = FcStack::new(THREADS);
        let got: Vec<Vec<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut h = s.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.push(t * PER + i);
                            if i % 2 == 1 {
                                if let Some(v) = h.pop() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v));
        }
        let mut h = s.register();
        while let Some(v) = h.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), THREADS * PER);
    }

    #[test]
    fn mixed_ops_with_peeks_under_concurrency() {
        const THREADS: usize = 6;
        let s: FcStack<usize> = FcStack::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                scope.spawn(move || {
                    let mut h = s.register();
                    for i in 0..1_000 {
                        match (t + i) % 4 {
                            0 | 1 => h.push(i),
                            2 => {
                                h.pop();
                            }
                            _ => {
                                let _ = h.peek();
                            }
                        }
                    }
                });
            }
        });
    }
}
