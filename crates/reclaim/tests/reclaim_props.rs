//! Property-based tests for both reclamation substrates: for arbitrary
//! thread counts and retire/pin (or protect/scan) patterns, every
//! retired object is dropped exactly once and never while a pre-retire
//! pin / live hazard protects it.

use proptest::prelude::*;
use sec_reclaim::{Collector, HpDomain};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// A payload that records its drop and flags double drops.
struct Tracked {
    dropped: Arc<AtomicBool>,
    counter: Arc<AtomicUsize>,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        assert!(
            !self.dropped.swap(true, Ordering::SeqCst),
            "double drop detected"
        );
        self.counter.fetch_add(1, Ordering::SeqCst);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_retired_object_drops_exactly_once(
        threads in 1usize..5,
        ops in 1usize..400,
        pin_stride in 1usize..8,
    ) {
        let counter = Arc::new(AtomicUsize::new(0));
        let total = threads * ops;
        {
            let collector = Collector::new(threads);
            thread::scope(|s| {
                for t in 0..threads {
                    let collector = &collector;
                    let counter = &counter;
                    s.spawn(move || {
                        let h = collector.register().unwrap();
                        for i in 0..ops {
                            let g = h.pin();
                            let obj = Box::into_raw(Box::new(Tracked {
                                dropped: Arc::new(AtomicBool::new(false)),
                                counter: Arc::clone(counter),
                            }));
                            unsafe { g.retire(obj) };
                            drop(g);
                            if i % pin_stride == 0 {
                                // Extra idle pin/unpin pair: shakes the
                                // epoch forward at varied cadence.
                                drop(h.pin());
                            }
                            let _ = t;
                        }
                        h.flush(32);
                    });
                }
            });
            // Collector drop frees all remaining orphans.
        }
        prop_assert_eq!(counter.load(Ordering::SeqCst), total);
    }

    #[test]
    fn objects_survive_while_a_reader_is_pinned(
        ops in 1usize..200,
    ) {
        // One pinned reader from before every retire: nothing may drop
        // while its guard lives.
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::new(2);
        let reader = collector.register().unwrap();
        let writer = collector.register().unwrap();

        let guard = reader.pin();
        for _ in 0..ops {
            let g = writer.pin();
            let obj = Box::into_raw(Box::new(Tracked {
                dropped: Arc::new(AtomicBool::new(false)),
                counter: Arc::clone(&counter),
            }));
            unsafe { g.retire(obj) };
        }
        // While the reader's pin is live, at most garbage from ≥ 2
        // epochs ago could drop — but the reader pinned at the very
        // first epoch, so nothing may.
        prop_assert_eq!(counter.load(Ordering::SeqCst), 0);
        drop(guard);

        writer.flush(64);
        prop_assert_eq!(counter.load(Ordering::SeqCst), ops);
    }

    /// Hazard pointers: a protected pointer survives an arbitrary
    /// script of unrelated retirements and scans; clearing the hazard
    /// releases it; teardown frees everything exactly once.
    #[test]
    fn hp_protected_pointer_survives_noise(
        noise_batches in prop::collection::vec(1usize..8, 1..24),
    ) {
        let counter = Arc::new(AtomicUsize::new(0));
        let protected_counter = Arc::new(AtomicUsize::new(0));
        let mut retired = 0usize;
        {
            let domain = HpDomain::new(2, 1);
            let reader = domain.register().unwrap();
            let writer = domain.register().unwrap();

            let target = Box::into_raw(Box::new(Tracked {
                dropped: Arc::new(AtomicBool::new(false)),
                counter: Arc::clone(&protected_counter),
            }));
            let src = AtomicPtr::new(target);
            prop_assert_eq!(reader.protect(0, &src), target);
            // Unlink + retire: only the hazard keeps it alive now.
            src.store(std::ptr::null_mut(), Ordering::Release);
            unsafe { writer.retire(target) };
            retired += 1;

            for n in &noise_batches {
                for _ in 0..*n {
                    let obj = Box::into_raw(Box::new(Tracked {
                        dropped: Arc::new(AtomicBool::new(false)),
                        counter: Arc::clone(&counter),
                    }));
                    unsafe { writer.retire(obj) };
                    retired += 1;
                }
                writer.scan();
                // The protected node must still be readable: dereference
                // it (a freed node would trip the double-drop flag under
                // the allocator's reuse, and Miri outright).
                let still_live = !unsafe { &(*target).dropped }.load(Ordering::SeqCst);
                prop_assert!(still_live, "protected node was freed under a live hazard");
                prop_assert_eq!(protected_counter.load(Ordering::SeqCst), 0);
            }

            reader.clear(0);
            writer.scan();
            prop_assert_eq!(protected_counter.load(Ordering::SeqCst), 1);
        }
        prop_assert_eq!(
            counter.load(Ordering::SeqCst) + protected_counter.load(Ordering::SeqCst),
            retired
        );
    }

    /// HP conservation under parallel churn: arbitrary writer/reader
    /// counts; every swapped-out node drops exactly once.
    #[test]
    fn hp_conserves_under_parallel_churn(
        writers in 1usize..4,
        readers in 0usize..3,
        ops in 1usize..300,
    ) {
        let counter = Arc::new(AtomicUsize::new(0));
        let allocated = Arc::new(AtomicUsize::new(0));
        {
            let domain = HpDomain::new(writers + readers, 1);
            let src: AtomicPtr<Tracked> = AtomicPtr::new(std::ptr::null_mut());
            thread::scope(|s| {
                for _ in 0..writers {
                    let domain = &domain;
                    let src = &src;
                    let counter = &counter;
                    let allocated = &allocated;
                    s.spawn(move || {
                        let h = domain.register().unwrap();
                        for _ in 0..ops {
                            let fresh = Box::into_raw(Box::new(Tracked {
                                dropped: Arc::new(AtomicBool::new(false)),
                                counter: Arc::clone(counter),
                            }));
                            allocated.fetch_add(1, Ordering::SeqCst);
                            let old = src.swap(fresh, Ordering::AcqRel);
                            if !old.is_null() {
                                unsafe { h.retire(old) };
                            }
                        }
                        h.scan();
                    });
                }
                for _ in 0..readers {
                    let domain = &domain;
                    let src = &src;
                    s.spawn(move || {
                        let h = domain.register().unwrap();
                        for _ in 0..ops {
                            let p = h.protect(0, src);
                            if !p.is_null() {
                                // Dereference under protection.
                                let d = unsafe { &(*p).dropped };
                                assert!(!d.load(Ordering::SeqCst), "read of freed node");
                            }
                            h.clear(0);
                        }
                    });
                }
            });
            let last = src.load(Ordering::Relaxed);
            if !last.is_null() {
                drop(unsafe { Box::from_raw(last) });
            }
        }
        prop_assert_eq!(counter.load(Ordering::SeqCst), allocated.load(Ordering::SeqCst));
    }
}
