//! # `sec-reclaim` — DEBRA-style epoch-based memory reclamation
//!
//! The SEC paper reclaims stack nodes and batch objects with Brown's
//! DEBRA (PODC '15) epoch-based reclamation. This crate is a
//! from-scratch implementation of the same algorithm class, used
//! uniformly by every stack in this repository:
//!
//! * a global **epoch** counter advances when every pinned thread has
//!   been observed in the current epoch;
//! * each registered thread **pins** itself (announces the epoch it read)
//!   for the duration of each operation and unpins afterwards;
//! * **retired** objects go into one of three per-thread limbo *bags*
//!   indexed by `epoch mod 3`; garbage retired at epoch `e` is freed only
//!   once the global epoch reaches `e + 2`, at which point no pinned
//!   thread can still hold a reference to it;
//! * epoch-advance attempts are **amortized**: a thread only scans the
//!   announcement array every `ADVANCE_PERIOD` pins (DEBRA's key cost
//!   saving over scan-per-operation EBR);
//! * quiesced blocks can be **recycled** instead of freed: under
//!   [`RecyclePolicy::PerThread`] they enter per-thread, size-classed
//!   free lists (bounded, overflowing to a shared pool) and
//!   [`Handle::alloc_boxed`] pops them back out before touching the
//!   heap — see the [`recycle`] module and DESIGN.md §10.
//!
//! ## Usage
//!
//! ```
//! use sec_reclaim::Collector;
//!
//! let collector = Collector::new(4); // up to 4 concurrent threads
//! let handle = collector.register().unwrap();
//! {
//!     let guard = handle.pin();
//!     // ... read shared pointers safely ...
//!     let boxed = Box::into_raw(Box::new(42_u64));
//!     // Transfer the allocation to the collector: freed at a safe time.
//!     unsafe { guard.retire(boxed) };
//! } // unpin
//! ```
//!
//! ## Safety contract
//!
//! A pointer passed to [`Guard::retire`] must be a unique, valid
//! `Box`-allocated pointer that is unreachable for threads that pin
//! *after* the call; threads that were already pinned may keep using it
//! until they unpin. This is exactly the guarantee the stacks need: a
//! node is retired only after it has been unlinked from every shared
//! location.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod bag;
mod collector;
mod handle;
pub mod hp;
pub mod pheap;
pub mod recycle;

pub use collector::{Collector, CollectorStats};
pub use handle::{Guard, Handle};
pub use hp::{HpDomain, HpHandle};
pub use pheap::PersistentHeap;
pub use recycle::RecyclePolicy;

/// A thread scans for an epoch advance every this many pins.
pub(crate) const ADVANCE_PERIOD: u64 = 64;

/// A bag triggers an eager advance attempt past this many deferred items.
pub(crate) const BAG_PRESSURE: usize = 512;
