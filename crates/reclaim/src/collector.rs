//! The global side of the collector: epoch word, announcement slots,
//! orphaned garbage.

use crate::bag::Deferred;
use crate::handle::Handle;
use crate::recycle::{GlobalPool, RecyclePolicy};
use core::fmt;
use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use sec_sync::{CachePadded, TtasLock};

/// Announcement state of one registered thread.
///
/// Layout: `(epoch << 1) | pinned`. A quiescent (unpinned) thread never
/// blocks an epoch advance.
pub(crate) struct Slot {
    pub(crate) state: AtomicU64,
    /// Slot allocation flag: 0 free, 1 claimed.
    pub(crate) claimed: AtomicU64,
}

pub(crate) const PINNED: u64 = 1;

/// Epoch-based garbage collector shared by all threads that operate on
/// one (or several) data structures.
///
/// Fixed capacity: at most `max_threads` simultaneously registered
/// [`Handle`]s — the same model as DEBRA's static thread registry and a
/// natural fit for the stacks, which are also constructed for a maximum
/// thread count.
pub struct Collector {
    /// Global epoch. Starts at 1 so bag tags (initialized 0) never
    /// alias a live epoch.
    epoch: CachePadded<AtomicU64>,
    pub(crate) slots: Box<[CachePadded<Slot>]>,
    /// Garbage inherited from exited threads: `(retire_epoch, item)`.
    orphans: TtasLock<Vec<(u64, Deferred)>>,
    /// Diagnostics: total items freed so far.
    freed: AtomicUsize,
    /// Diagnostics: total items retired so far.
    retired: AtomicUsize,
    /// Retired blocks whose memory entered a free list after
    /// quiescence instead of being freed (DESIGN.md §10).
    cached: AtomicUsize,
    /// Node-recycling policy (fixed before the first registration).
    recycle: RecyclePolicy,
    /// Shared overflow/refill pool behind the per-thread caches.
    pool: GlobalPool,
    /// Allocations served from a free list (flushed from thread-local
    /// counters when handles drop).
    rec_hits: AtomicU64,
    /// Allocations that fell through to the heap (flushed likewise).
    rec_misses: AtomicU64,
    /// Quiesced blocks that overflowed their thread cache (flushed
    /// likewise).
    rec_overflows: AtomicU64,
}

impl Collector {
    /// Creates a collector supporting up to `max_threads` concurrent
    /// handles (clamped to at least 1), with recycling **off** — the
    /// historical behavior for direct users. The SEC structures pass
    /// their configured policy through
    /// [`Collector::with_recycle`] instead.
    pub fn new(max_threads: usize) -> Self {
        Self::with_recycle(max_threads, RecyclePolicy::Off)
    }

    /// Creates a collector with an explicit [`RecyclePolicy`].
    pub fn with_recycle(max_threads: usize, recycle: RecyclePolicy) -> Self {
        let n = max_threads.max(1);
        Self {
            epoch: CachePadded::new(AtomicU64::new(1)),
            slots: (0..n)
                .map(|_| {
                    CachePadded::new(Slot {
                        state: AtomicU64::new(0),
                        claimed: AtomicU64::new(0),
                    })
                })
                .collect(),
            orphans: TtasLock::new(Vec::new()),
            freed: AtomicUsize::new(0),
            retired: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            recycle,
            pool: GlobalPool::new(recycle.cache_cap().saturating_mul(n)),
            rec_hits: AtomicU64::new(0),
            rec_misses: AtomicU64::new(0),
            rec_overflows: AtomicU64::new(0),
        }
    }

    /// Replaces the recycling policy. Must be called before any handle
    /// registers (the `&mut` receiver enforces exclusive access); used
    /// by the data structures' builder-style toggles.
    pub fn set_recycle_policy(&mut self, recycle: RecyclePolicy) {
        self.recycle = recycle;
        self.pool = GlobalPool::new(recycle.cache_cap().saturating_mul(self.slots.len()));
    }

    /// The recycling policy in force.
    pub fn recycle_policy(&self) -> RecyclePolicy {
        self.recycle
    }

    pub(crate) fn recycle_on(&self) -> bool {
        self.recycle.is_on()
    }

    pub(crate) fn pool(&self) -> &GlobalPool {
        &self.pool
    }

    /// Registers the calling thread, returning its handle, or `None` if
    /// all `max_threads` slots are taken.
    pub fn register(&self) -> Option<Handle<'_>> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.claimed.load(Ordering::Relaxed) == 0
                && slot
                    .claimed
                    .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(Handle::new(self, i));
            }
        }
        None
    }

    /// Current global epoch (diagnostic).
    pub fn global_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Reclamation statistics (diagnostic; relaxed counters).
    ///
    /// The recycle hit/miss/overflow counters are accumulated
    /// thread-locally and flushed when each [`Handle`] drops, so they
    /// are exact only once every handle has been dropped; `retired`,
    /// `freed` and `cached` are maintained inline (amortized per bag
    /// drain) and always current.
    pub fn stats(&self) -> CollectorStats {
        CollectorStats {
            epoch: self.global_epoch(),
            retired: self.retired.load(Ordering::Relaxed),
            freed: self.freed.load(Ordering::Relaxed),
            cached: self.cached.load(Ordering::Relaxed),
            recycle_hits: self.rec_hits.load(Ordering::Relaxed),
            recycle_misses: self.rec_misses.load(Ordering::Relaxed),
            recycle_overflows: self.rec_overflows.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_retired(&self, n: usize) {
        self.retired.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_freed(&self, n: usize) {
        self.freed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn note_cached(&self, n: usize) {
        self.cached.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds a dropping handle's thread-local recycle counters into the
    /// collector-wide totals.
    pub(crate) fn flush_recycle_counters(&self, hits: u64, misses: u64, overflows: u64) {
        self.rec_hits.fetch_add(hits, Ordering::Relaxed);
        self.rec_misses.fetch_add(misses, Ordering::Relaxed);
        self.rec_overflows.fetch_add(overflows, Ordering::Relaxed);
    }

    pub(crate) fn load_epoch_relaxed(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Attempts to advance the global epoch from `seen` to `seen + 1`.
    ///
    /// Succeeds only if every *pinned* thread has announced `seen`;
    /// quiescent threads don't participate. Returns the epoch in force
    /// after the attempt.
    pub(crate) fn try_advance(&self, seen: u64) -> u64 {
        for slot in self.slots.iter() {
            // Unclaimed slots have state 0 (quiescent) — no special-case
            // needed, but skip the claimed check's cost when possible.
            let s = slot.state.load(Ordering::Acquire);
            if s & PINNED == PINNED && s >> 1 != seen {
                // A straggler is still pinned in an older epoch.
                return self.epoch.load(Ordering::Acquire);
            }
        }
        // All pinned threads are in `seen`; move the clock forward. CAS
        // failure just means someone else advanced — equally good.
        let _ = self
            .epoch
            .compare_exchange(seen, seen + 1, Ordering::AcqRel, Ordering::Acquire);
        self.epoch.load(Ordering::Acquire)
    }

    /// Adds garbage from an exiting thread; freed by later advances or
    /// on collector drop.
    pub(crate) fn adopt_orphans(&self, items: Vec<(u64, Deferred)>) {
        if items.is_empty() {
            return;
        }
        self.orphans.lock().extend(items);
    }

    /// Drives reclamation to completion from *outside* any handle: up
    /// to `rounds` epoch advances, each followed by an orphan sweep.
    /// Intended for post-run leak accounting — once every handle has
    /// been dropped (their bags orphan on drop), a successful quiesce
    /// leaves `retired == freed + cached`, i.e.
    /// [`CollectorStats::pending`] `== 0`. A thread still pinned
    /// blocks the advance, in which case the returned stats show what
    /// is left.
    pub fn quiesce(&self, rounds: usize) -> CollectorStats {
        for _ in 0..rounds {
            if self.stats().pending() == 0 {
                break;
            }
            let e = self.global_epoch();
            let now = self.try_advance(e);
            self.collect_orphans(now);
            if now == e {
                break; // blocked by a pinned straggler
            }
        }
        self.stats()
    }

    /// Frees orphaned garbage that is old enough w.r.t. `epoch_now`.
    /// Called opportunistically after successful advances.
    pub(crate) fn collect_orphans(&self, epoch_now: u64) {
        // try_lock: reclamation is best-effort, never block an operation.
        if let Some(mut orphans) = self.orphans.try_lock() {
            let before = orphans.len();
            let mut kept = Vec::with_capacity(before);
            for (e, d) in orphans.drain(..) {
                if epoch_now >= e + 2 {
                    d.execute();
                } else {
                    kept.push((e, d));
                }
            }
            let freed = before - kept.len();
            *orphans = kept;
            drop(orphans);
            self.note_freed(freed);
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // No handles can outlive the collector (they borrow it), so all
        // remaining orphaned garbage is unreachable: free it now.
        let orphans = std::mem::take(&mut *self.orphans.lock());
        let n = orphans.len();
        for (_, d) in orphans {
            d.execute();
        }
        self.note_freed(n);
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("max_threads", &self.slots.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Snapshot of collector counters.
///
/// Retirement accounting: every retired object ends its limbo life in
/// exactly one of two ways — `freed` (its memory went back to the
/// allocator, running the drop shim if it had one) or `cached` (its
/// memory entered a recycle free list). The leak identity the test
/// battery asserts is therefore `retired == freed + cached` once
/// everything has drained ([`pending`](Self::pending) `== 0`). A cached
/// block's *later* fate — reuse by an allocation, or deallocation at
/// teardown — is not re-counted.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CollectorStats {
    /// Current global epoch.
    pub epoch: u64,
    /// Objects handed to the collector so far.
    pub retired: usize,
    /// Objects whose memory was returned to the allocator so far.
    pub freed: usize,
    /// Objects whose memory entered a recycle free list so far.
    pub cached: usize,
    /// Allocations served from a free list (exact once all handles
    /// have dropped; see [`Collector::stats`]).
    pub recycle_hits: u64,
    /// Allocations that fell through to the heap (same caveat).
    pub recycle_misses: u64,
    /// Quiesced blocks that overflowed their thread cache into the
    /// global pool or the allocator (same caveat).
    pub recycle_overflows: u64,
}

impl CollectorStats {
    /// Objects still in limbo (retired, not yet freed or cached).
    pub fn pending(&self) -> usize {
        self.retired
            .saturating_sub(self.freed)
            .saturating_sub(self.cached)
    }

    /// Recycle hit rate in percent (hits / (hits + misses)); 0 when no
    /// allocations were attempted.
    pub fn hit_pct(&self) -> f64 {
        let total = self.recycle_hits + self.recycle_misses;
        if total == 0 {
            0.0
        } else {
            100.0 * self.recycle_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_up_to_capacity() {
        let c = Collector::new(2);
        let h1 = c.register().unwrap();
        let h2 = c.register().unwrap();
        assert!(c.register().is_none(), "third registration must fail");
        drop(h1);
        let h3 = c.register().expect("slot is reusable after drop");
        drop(h2);
        drop(h3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c = Collector::new(0);
        assert!(c.register().is_some());
    }

    #[test]
    fn epoch_starts_at_one_and_advances_when_idle() {
        let c = Collector::new(4);
        assert_eq!(c.global_epoch(), 1);
        let e = c.try_advance(1);
        assert_eq!(e, 2);
    }

    #[test]
    fn advance_blocked_by_stale_pin() {
        let c = Collector::new(2);
        let h = c.register().unwrap();
        let _g = h.pin(); // pinned at epoch 1
        assert_eq!(c.try_advance(1), 2, "pin in current epoch doesn't block");
        // Now the guard is pinned at epoch 1 while global is 2: the next
        // advance must fail until the guard drops.
        assert_eq!(c.try_advance(2), 2, "stale pin must block advance");
    }

    #[test]
    fn stats_track_retire_and_free() {
        let c = Collector::new(1);
        let h = c.register().unwrap();
        {
            let g = h.pin();
            unsafe { g.retire(Box::into_raw(Box::new(7_u32))) };
        }
        let s = c.stats();
        assert_eq!(s.retired, 1);
        assert!(s.pending() <= 1);
    }

    #[test]
    fn debug_format_works() {
        let c = Collector::new(3);
        assert!(format!("{c:?}").contains("max_threads"));
    }
}
