//! A word-addressed persistent heap: the durable backing store for
//! crash-recoverable SEC structures (DESIGN.md §16).
//!
//! The heap is a flat array of `u64` words accessed through
//! [`AtomicU64`] references. Two backings exist:
//!
//! - **File** — a file-backed `MAP_SHARED` mmap. Stores land in the
//!   kernel page cache, which survives the *process* dying (including
//!   `SIGKILL`): after a kill−9, re-mapping the file observes every
//!   store that retired before the kill, in a manner consistent with
//!   the program's store ordering. Surviving *power loss* additionally
//!   requires [`msync`](PersistentHeap::msync), which callers opt into
//!   per-range.
//! - **Volatile** — an anonymous zeroed allocation with identical
//!   semantics minus any durability. Used by tests and CI so the
//!   recovery logic runs everywhere without touching the filesystem.
//!
//! The heap never interprets its contents; layout (headers, logs,
//! intent cells) belongs to the layers above in `sec-core`.

use core::ffi::c_void;
use core::sync::atomic::AtomicU64;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::Path;
use std::sync::Arc;

// Raw syscall bindings: std already links libc, so declaring the
// symbols here avoids a dependency on the `libc` crate (the build
// environment is offline). Constants are the Linux values; this
// module is Linux-only, like the rest of the workspace's CI.
extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
    fn msync(addr: *mut c_void, len: usize, flags: i32) -> i32;
}

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;
const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
const MS_SYNC: i32 = 4;
const PAGE: usize = 4096;

enum Backing {
    /// Anonymous in-process memory, freed on drop.
    Volatile { layout: std::alloc::Layout },
    /// File-backed `MAP_SHARED` mapping; the file handle is kept open
    /// for the lifetime of the heap (the mapping itself would survive
    /// a close, but holding it keeps the fd visible in diagnostics).
    File { _file: File },
}

/// A fixed-size array of durable `u64` words (see module docs).
///
/// Cloneable via `Arc`; all accessors take `&self`, so one heap can
/// back a structure and its recovery checker at once.
pub struct PersistentHeap {
    base: *mut u8,
    bytes: usize,
    backing: Backing,
}

// The heap hands out `&AtomicU64` only; raw-pointer arithmetic is
// internal and bounds-checked.
unsafe impl Send for PersistentHeap {}
unsafe impl Sync for PersistentHeap {}

impl PersistentHeap {
    /// Creates an anonymous (non-durable) heap of `words` zeroed words.
    pub fn volatile(words: usize) -> Arc<Self> {
        let bytes = words.checked_mul(8).expect("heap size overflow").max(8);
        let layout = std::alloc::Layout::from_size_align(bytes, PAGE).expect("heap layout");
        // SAFETY: layout has non-zero size (max(8) above).
        let base = unsafe { std::alloc::alloc_zeroed(layout) };
        assert!(!base.is_null(), "volatile heap allocation failed");
        Arc::new(Self {
            base,
            bytes,
            backing: Backing::Volatile { layout },
        })
    }

    /// Creates a *fresh* file-backed heap of `words` zeroed words at
    /// `path`, truncating any existing file (a reused path must not
    /// leak stale log records into a new structure).
    pub fn create_file(path: &Path, words: usize) -> io::Result<Arc<Self>> {
        let bytes = words.checked_mul(8).expect("heap size overflow").max(8);
        let bytes = bytes.div_ceil(PAGE) * PAGE;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(bytes as u64)?;
        Self::map_file(file, bytes)
    }

    /// Maps an *existing* heap file for recovery. The word count comes
    /// from the file's length; validation of the contents (magic,
    /// layout) belongs to the caller.
    pub fn open_file(path: &Path) -> io::Result<Arc<Self>> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let bytes = file.metadata()?.len() as usize;
        if bytes == 0 || !bytes.is_multiple_of(8) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "persistent heap file is empty or not word-sized",
            ));
        }
        Self::map_file(file, bytes)
    }

    fn map_file(file: File, bytes: usize) -> io::Result<Arc<Self>> {
        // SAFETY: valid fd, positive length; MAP_SHARED so stores
        // reach the page cache (and thus survive process death).
        let base = unsafe {
            mmap(
                core::ptr::null_mut(),
                bytes,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if base == MAP_FAILED || base.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Arc::new(Self {
            base: base.cast(),
            bytes,
            backing: Backing::File { _file: file },
        }))
    }

    /// Number of words in the heap.
    pub fn words(&self) -> usize {
        self.bytes / 8
    }

    /// `true` when backed by a file (stores survive kill−9).
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backing, Backing::File { .. })
    }

    /// The word at index `idx` as an atomic. Panics when out of range.
    #[inline]
    pub fn word(&self, idx: usize) -> &AtomicU64 {
        assert!(idx < self.words(), "heap word {idx} out of range");
        // SAFETY: in-bounds, 8-aligned (base is page-aligned), and the
        // backing memory lives as long as `self`.
        unsafe { &*(self.base.add(idx * 8) as *const AtomicU64) }
    }

    /// Synchronously flushes the word range `[start, start + len)` to
    /// the backing file (`msync(MS_SYNC)`), for power-failure — not
    /// merely crash — durability. A no-op on volatile heaps.
    pub fn msync(&self, start: usize, len: usize) -> io::Result<()> {
        if !self.is_file_backed() || len == 0 {
            return Ok(());
        }
        assert!(start.checked_add(len).is_some_and(|e| e <= self.words()));
        // msync requires a page-aligned address: widen the range down
        // to its page boundary.
        let lo = (start * 8) / PAGE * PAGE;
        let hi = start * 8 + len * 8;
        // SAFETY: [lo, hi) is within the mapping and lo is page-aligned.
        let rc = unsafe { msync(self.base.add(lo).cast(), hi - lo, MS_SYNC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

impl Drop for PersistentHeap {
    fn drop(&mut self) {
        match &self.backing {
            Backing::Volatile { layout } => {
                // SAFETY: allocated in `volatile` with this layout.
                unsafe { std::alloc::dealloc(self.base, *layout) };
            }
            Backing::File { .. } => {
                // SAFETY: mapped in `map_file` with this length.
                unsafe { munmap(self.base.cast(), self.bytes) };
            }
        }
    }
}

impl core::fmt::Debug for PersistentHeap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PersistentHeap")
            .field("words", &self.words())
            .field("file_backed", &self.is_file_backed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;

    #[test]
    fn volatile_heap_is_zeroed_and_writable() {
        let h = PersistentHeap::volatile(1024);
        assert_eq!(h.words(), 1024);
        assert!(!h.is_file_backed());
        for i in 0..1024 {
            assert_eq!(h.word(i).load(Ordering::Relaxed), 0);
        }
        h.word(7).store(0xdead_beef, Ordering::Relaxed);
        assert_eq!(h.word(7).load(Ordering::Relaxed), 0xdead_beef);
        h.msync(0, 1024).unwrap();
    }

    #[test]
    fn file_heap_round_trips_across_remap() {
        let path = std::env::temp_dir().join(format!("sec-pheap-test-{}.heap", std::process::id()));
        {
            let h = PersistentHeap::create_file(&path, 100).unwrap();
            assert!(h.is_file_backed());
            assert!(h.words() >= 100);
            for i in 0..100 {
                h.word(i).store(i as u64 * 3 + 1, Ordering::Release);
            }
            h.msync(0, 100).unwrap();
        }
        {
            let h = PersistentHeap::open_file(&path).unwrap();
            for i in 0..100 {
                assert_eq!(h.word(i).load(Ordering::Acquire), i as u64 * 3 + 1);
            }
        }
        // create_file on the same path must zero it again.
        let h = PersistentHeap::create_file(&path, 100).unwrap();
        for i in 0..100 {
            assert_eq!(h.word(i).load(Ordering::Relaxed), 0);
        }
        drop(h);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_word_panics() {
        let h = PersistentHeap::volatile(8);
        h.word(8);
    }

    #[test]
    fn open_missing_file_errors() {
        assert!(PersistentHeap::open_file(Path::new("/nonexistent/sec.heap")).is_err());
    }
}
