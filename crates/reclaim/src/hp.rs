//! Hazard-pointer reclamation (Michael, 2004).
//!
//! The paper's §4 notes that reclamation schemes other than DEBRA "can
//! be applied in the same way" to SEC and its competitors. This module
//! supplies the classic pointer-based alternative so the
//! `recl_ablation` benchmark can measure what the reclamation substrate
//! costs each stack: epochs amortize to a couple of relaxed
//! loads per operation but delay reclamation arbitrarily under a stalled
//! reader, whereas hazard pointers pay a store + fence per protected
//! read but bound garbage by `H = threads × pointers`.
//!
//! The protocol, briefly: a reader *protects* a pointer by publishing it
//! in its hazard slot and re-validating the source; a writer *retires*
//! an unlinked node into a thread-local list and, past a threshold,
//! *scans* — it snapshots every published hazard and frees exactly the
//! retired nodes no snapshot entry points to.
//!
//! ```
//! use sec_reclaim::HpDomain;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let domain = HpDomain::new(4, 2); // 4 threads × 2 hazard slots
//! let handle = domain.register().unwrap();
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(7_u64)));
//!
//! let p = handle.protect(0, &shared);          // safe to dereference
//! assert_eq!(unsafe { *p }, 7);
//! let old = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! handle.clear(0);                             // done reading
//! unsafe { handle.retire(old) };               // freed at a safe time
//! ```

use crate::bag::Deferred;
use core::cell::UnsafeCell;
use core::fmt;
use core::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use sec_sync::CachePadded;
use std::sync::Mutex;

/// A retired allocation: the address (for the hazard comparison) plus
/// the type-erased deferred drop.
struct Retired {
    addr: usize,
    deferred: Deferred,
}

/// A hazard-pointer domain: the shared registry of hazard slots plus
/// the orphan list for garbage left behind by exited threads.
///
/// Constructed for a fixed `max_threads × pointers_per_thread` slot
/// grid; [`register`](Self::register) hands out per-thread handles.
pub struct HpDomain {
    /// Flattened hazard grid: thread `t`'s pointer `i` lives at
    /// `hazards[t * per_thread + i]`. Zero means "no hazard".
    hazards: Box<[CachePadded<AtomicUsize>]>,
    /// Registry: which thread rows are handed out.
    in_use: Box<[AtomicBool]>,
    per_thread: usize,
    /// Garbage from dropped handles, freed by later scans or teardown.
    orphans: Mutex<Vec<Retired>>,
    /// Cumulative counters (diagnostics and tests).
    retired_total: AtomicU64,
    freed_total: AtomicU64,
}

impl HpDomain {
    /// Creates a domain for `max_threads` threads, each owning
    /// `per_thread` hazard slots (stacks need 1–2; pass what the data
    /// structure's longest pointer chase requires).
    ///
    /// # Panics
    ///
    /// If either argument is zero.
    pub fn new(max_threads: usize, per_thread: usize) -> Self {
        assert!(max_threads > 0, "HpDomain: max_threads must be > 0");
        assert!(per_thread > 0, "HpDomain: per_thread must be > 0");
        Self {
            hazards: (0..max_threads * per_thread)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
            in_use: (0..max_threads).map(|_| AtomicBool::new(false)).collect(),
            per_thread,
            orphans: Mutex::new(Vec::new()),
            retired_total: AtomicU64::new(0),
            freed_total: AtomicU64::new(0),
        }
    }

    /// Registers the calling thread, claiming a free hazard row.
    /// Returns `None` when `max_threads` handles are already live.
    pub fn register(&self) -> Option<HpHandle<'_>> {
        for (row, flag) in self.in_use.iter().enumerate() {
            if flag
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(HpHandle {
                    domain: self,
                    row,
                    retired: UnsafeCell::new(Vec::new()),
                });
            }
        }
        None
    }

    /// Number of hazard slots per registered thread.
    pub fn pointers_per_thread(&self) -> usize {
        self.per_thread
    }

    /// Total objects retired into this domain so far.
    pub fn retired_count(&self) -> u64 {
        self.retired_total.load(Ordering::Relaxed)
    }

    /// Total objects freed by scans (and teardown) so far.
    pub fn freed_count(&self) -> u64 {
        self.freed_total.load(Ordering::Relaxed)
    }

    /// The scan threshold: retire lists longer than this trigger a scan.
    /// Michael's recommendation is a small multiple of the total hazard
    /// count `H`, giving O(1) amortized scanning and ≤ `R` unreclaimed
    /// nodes per thread.
    fn scan_threshold(&self) -> usize {
        (2 * self.hazards.len()).max(64)
    }

    /// Snapshots every published hazard, ascending and deduplicated.
    fn snapshot_hazards(&self) -> Vec<usize> {
        // The SeqCst fence pairs with the fence in `protect`: any reader
        // whose protection "happened" before this scan is visible here.
        fence(Ordering::SeqCst);
        let mut snap: Vec<usize> = self
            .hazards
            .iter()
            .map(|h| h.load(Ordering::Acquire))
            .filter(|&a| a != 0)
            .collect();
        snap.sort_unstable();
        snap.dedup();
        snap
    }

    /// Frees every entry of `list` not present in the hazard snapshot;
    /// survivors stay in `list`. Returns how many were freed.
    fn sweep(&self, list: &mut Vec<Retired>) -> usize {
        let snap = self.snapshot_hazards();
        let before = list.len();
        let mut kept = Vec::with_capacity(list.len());
        for r in list.drain(..) {
            if snap.binary_search(&r.addr).is_ok() {
                kept.push(r);
            } else {
                r.deferred.execute();
            }
        }
        *list = kept;
        let freed = before - list.len();
        self.freed_total.fetch_add(freed as u64, Ordering::Relaxed);
        freed
    }

    /// Adopts orphaned garbage into `list` (cold path; called from scans).
    fn adopt_orphans(&self, list: &mut Vec<Retired>) {
        if let Ok(mut o) = self.orphans.try_lock() {
            list.append(&mut o);
        }
    }
}

impl Drop for HpDomain {
    fn drop(&mut self) {
        // No handles can outlive the domain (they borrow it), hence no
        // hazards: everything orphaned is free-able.
        let orphans = std::mem::take(&mut *self.orphans.lock().unwrap());
        self.freed_total
            .fetch_add(orphans.len() as u64, Ordering::Relaxed);
        for r in orphans {
            r.deferred.execute();
        }
    }
}

impl fmt::Debug for HpDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HpDomain")
            .field("threads", &self.in_use.len())
            .field("per_thread", &self.per_thread)
            .field("retired", &self.retired_count())
            .field("freed", &self.freed_count())
            .finish()
    }
}

/// A registered thread's access point to an [`HpDomain`].
///
/// Owns one row of hazard slots and a private retire list. Not `Sync`;
/// move it to the thread that uses it. Dropping the handle clears its
/// hazards and orphans any unreclaimed garbage to the domain.
pub struct HpHandle<'d> {
    domain: &'d HpDomain,
    row: usize,
    retired: UnsafeCell<Vec<Retired>>,
}

// Safety: handle state is thread-private (`!Sync`), and retired items
// are `Send` by `Deferred`'s construction bound.
unsafe impl Send for HpHandle<'_> {}

impl<'d> HpHandle<'d> {
    /// The domain this handle belongs to.
    pub fn domain(&self) -> &'d HpDomain {
        self.domain
    }

    /// This handle's dense row index (usable as a thread id).
    pub fn slot(&self) -> usize {
        self.row
    }

    fn hazard(&self, i: usize) -> &AtomicUsize {
        assert!(
            i < self.domain.per_thread,
            "hazard index {i} out of range (per_thread = {})",
            self.domain.per_thread
        );
        &self.domain.hazards[self.row * self.domain.per_thread + i]
    }

    #[allow(clippy::mut_from_ref)]
    fn retired(&self) -> &mut Vec<Retired> {
        // Safety: `HpHandle` is not `Sync` and the `&mut` never escapes
        // a single method call, so there is no aliasing.
        unsafe { &mut *self.retired.get() }
    }

    /// Protects the pointer currently stored in `src` using hazard slot
    /// `i` and returns it. On return (non-null case), the pointee will
    /// not be freed by any scan until the slot is overwritten or
    /// [`clear`](Self::clear)ed.
    ///
    /// This is the announce-and-validate loop: publish the read pointer,
    /// fence, confirm `src` still holds it — if `src` moved on, the node
    /// may already be retired and the protection is void, so retry.
    pub fn protect<T>(&self, i: usize, src: &core::sync::atomic::AtomicPtr<T>) -> *mut T {
        let slot = self.hazard(i);
        let mut p = src.load(Ordering::Acquire);
        loop {
            slot.store(p as usize, Ordering::Relaxed);
            // Pairs with the fence in `snapshot_hazards`.
            fence(Ordering::SeqCst);
            let q = src.load(Ordering::Acquire);
            if q == p {
                return p;
            }
            p = q;
        }
    }

    /// Publishes `p` in hazard slot `i` without validation.
    ///
    /// Only sound when the caller can already prove `p` is live (e.g. it
    /// protects a second pointer read *through* an already-protected
    /// node). Most callers want [`protect`](Self::protect).
    pub fn announce<T>(&self, i: usize, p: *mut T) {
        self.hazard(i).store(p as usize, Ordering::Relaxed);
        fence(Ordering::SeqCst);
    }

    /// Clears hazard slot `i`.
    pub fn clear(&self, i: usize) {
        // Release: the pointee reads stay before the un-protection.
        self.hazard(i).store(0, Ordering::Release);
    }

    /// Retires `ptr`: the allocation is freed by a later scan, once no
    /// hazard slot points to it.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::into_raw`, must be unlinked from every
    /// shared location (no thread can *newly* reach it), and must not be
    /// used by the caller afterwards.
    pub unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        let list = self.retired();
        list.push(Retired {
            addr: ptr as usize,
            // Safety: forwarded caller contract.
            deferred: unsafe { Deferred::new(ptr) },
        });
        self.domain.retired_total.fetch_add(1, Ordering::Relaxed);
        if list.len() >= self.domain.scan_threshold() {
            self.domain.adopt_orphans(list);
            self.domain.sweep(list);
        }
    }

    /// Forces a scan now. Returns how many objects were freed.
    pub fn scan(&self) -> usize {
        let list = self.retired();
        self.domain.adopt_orphans(list);
        self.domain.sweep(list)
    }

    /// Number of objects waiting in this handle's retire list.
    pub fn pending(&self) -> usize {
        self.retired().len()
    }
}

impl Drop for HpHandle<'_> {
    fn drop(&mut self) {
        for i in 0..self.domain.per_thread {
            self.hazard(i).store(0, Ordering::Release);
        }
        // One last attempt to free locally, then orphan the rest.
        let list = self.retired();
        self.domain.sweep(list);
        if !list.is_empty() {
            self.domain.orphans.lock().unwrap().append(&mut *list);
        }
        self.domain.in_use[self.row].store(false, Ordering::Release);
    }
}

impl fmt::Debug for HpHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HpHandle")
            .field("row", &self.row)
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::AtomicPtr;
    use std::ptr;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;
    use std::thread;

    struct DropCounter(Arc<StdAtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn protect_returns_current_pointer() {
        let d = HpDomain::new(1, 1);
        let h = d.register().unwrap();
        let b = Box::into_raw(Box::new(9_u32));
        let src = AtomicPtr::new(b);
        let p = h.protect(0, &src);
        assert_eq!(p, b);
        assert_eq!(unsafe { *p }, 9);
        h.clear(0);
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn registration_is_bounded_and_slots_recycle() {
        let d = HpDomain::new(2, 1);
        let a = d.register().unwrap();
        let b = d.register().unwrap();
        assert!(d.register().is_none());
        assert_ne!(a.slot(), b.slot());
        let freed_slot = b.slot();
        drop(b);
        assert_eq!(d.register().unwrap().slot(), freed_slot);
        drop(a);
    }

    #[test]
    #[should_panic(expected = "hazard index")]
    fn out_of_range_hazard_index_panics() {
        let d = HpDomain::new(1, 1);
        let h = d.register().unwrap();
        h.clear(1);
    }

    #[test]
    fn hazard_blocks_reclamation_until_cleared() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let d = HpDomain::new(2, 1);
        let reader = d.register().unwrap();
        let writer = d.register().unwrap();

        let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
        let src = AtomicPtr::new(node);

        let p = reader.protect(0, &src);
        assert_eq!(p, node);
        src.store(ptr::null_mut(), Ordering::Release);
        unsafe { writer.retire(node) };

        // Protected: scans must not free it.
        writer.scan();
        assert_eq!(drops.load(Ordering::Relaxed), 0);
        assert_eq!(writer.pending(), 1);

        reader.clear(0);
        writer.scan();
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        assert_eq!(writer.pending(), 0);
    }

    #[test]
    fn threshold_scan_frees_unprotected_garbage() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        let d = HpDomain::new(1, 1);
        let h = d.register().unwrap();
        let n = d.scan_threshold() + 8;
        for _ in 0..n {
            let p = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            unsafe { h.retire(p) };
        }
        // At least one automatic sweep must have run.
        assert!(drops.load(Ordering::Relaxed) >= d.scan_threshold());
        h.scan();
        assert_eq!(drops.load(Ordering::Relaxed), n);
    }

    #[test]
    fn dropped_handle_orphans_then_domain_frees() {
        let drops = Arc::new(StdAtomicUsize::new(0));
        {
            let d = HpDomain::new(2, 1);
            let reader = d.register().unwrap();
            let writer = d.register().unwrap();
            let node = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
            let src = AtomicPtr::new(node);
            let _p = reader.protect(0, &src);
            src.store(ptr::null_mut(), Ordering::Release);
            unsafe { writer.retire(node) };
            drop(writer); // cannot free: still protected -> orphaned
            assert_eq!(drops.load(Ordering::Relaxed), 0);
            drop(reader);
        } // domain teardown frees orphans
        assert_eq!(drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_count_retires_and_frees() {
        let d = HpDomain::new(1, 1);
        let h = d.register().unwrap();
        for _ in 0..10 {
            let p = Box::into_raw(Box::new(1_u64));
            unsafe { h.retire(p) };
        }
        assert_eq!(d.retired_count(), 10);
        h.scan();
        assert_eq!(d.freed_count(), 10);
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        // Writers repeatedly swap a shared pointer and retire the old
        // node; readers protect-and-dereference. Every node must be
        // freed exactly once and no read may touch freed memory (UB
        // would show up under the count mismatch or a crash/miri).
        const WRITERS: usize = 2;
        const READERS: usize = 2;
        const OPS: usize = 4_000;
        let drops = Arc::new(StdAtomicUsize::new(0));
        let total = Arc::new(StdAtomicUsize::new(0));
        {
            let d = HpDomain::new(WRITERS + READERS, 1);
            let src = AtomicPtr::new(Box::into_raw(Box::new(DropCounter(Arc::clone(&drops)))));
            total.fetch_add(1, Ordering::Relaxed);
            thread::scope(|s| {
                for _ in 0..WRITERS {
                    let d = &d;
                    let src = &src;
                    let drops = Arc::clone(&drops);
                    let total = Arc::clone(&total);
                    s.spawn(move || {
                        let h = d.register().unwrap();
                        for _ in 0..OPS {
                            let fresh = Box::into_raw(Box::new(DropCounter(Arc::clone(&drops))));
                            total.fetch_add(1, Ordering::Relaxed);
                            let old = src.swap(fresh, Ordering::AcqRel);
                            if !old.is_null() {
                                unsafe { h.retire(old) };
                            }
                        }
                        h.scan();
                    });
                }
                for _ in 0..READERS {
                    let d = &d;
                    let src = &src;
                    s.spawn(move || {
                        let h = d.register().unwrap();
                        for _ in 0..OPS {
                            let p = h.protect(0, src);
                            if !p.is_null() {
                                // Dereference under protection.
                                let inner = unsafe { &(*p).0 };
                                let _ = inner.load(Ordering::Relaxed);
                            }
                            h.clear(0);
                        }
                    });
                }
            });
            let last = src.load(Ordering::Relaxed);
            if !last.is_null() {
                drop(unsafe { Box::from_raw(last) });
            }
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            total.load(Ordering::Relaxed),
            "every allocated node must be dropped exactly once"
        );
    }
}
