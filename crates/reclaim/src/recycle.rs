//! Node recycling: per-thread, size-classed free lists that take the
//! heap allocator off the hot paths (DESIGN.md §10).
//!
//! Every SEC operation used to pay a heap round-trip: one
//! `Box::into_raw(Box::new(..))` per push/enqueue and one deferred
//! `Box::from_raw` drop per retired node or batch. Under heavy traffic
//! the allocator — not the combining protocol — bounds throughput. This
//! module closes the loop the epochs already imply: a block that has
//! *quiesced* (its retire epoch is ≥ 2 behind the global epoch, so no
//! pinned thread can still reference it) is exactly as safe to **reuse**
//! as it is to free. Instead of returning it to the allocator, the
//! retiring thread keeps it in a bounded per-thread free list and the
//! next allocation of the same size class pops it back out.
//!
//! ## Size classes
//!
//! Blocks originate from `Box`, so they carry the exact [`Layout`] of
//! their type, and the global allocator requires deallocation (and
//! therefore reuse-as-`Box`) with that same layout. A *size class* is
//! hence an exact `(size, align)` pair — no rounding. A data structure
//! allocates a handful of distinct node/batch/slot-array layouts, so a
//! cache holds a handful of bins and lookup is a short linear scan.
//!
//! ## Topology
//!
//! * each [`Handle`](crate::Handle) owns a **thread cache**: one bounded
//!   bin (`cache_cap` blocks) per size class, touched without
//!   synchronization;
//! * the [`Collector`](crate::Collector) owns a shared **global pool**:
//!   the overflow target when a thread cache is full and the refill
//!   source when one runs dry (consumer threads retire what producer
//!   threads allocate — without the pool, producers would miss forever
//!   while consumers overflow);
//! * blocks that fit nowhere are deallocated, exactly as before.
//!
//! ## ABA safety
//!
//! Reuse re-exposes the classic ABA hazard *only if* a block can be
//! handed out while some thread still holds a pre-retirement pointer to
//! it. That cannot happen here: a recyclable block travels through the
//! same per-epoch limbo bags as a droppable one and enters a free list
//! only once the epoch fence has passed — the exact moment it would
//! otherwise have been freed (and potentially re-handed-out by the
//! allocator itself, which is the same hazard epochs already defuse).
//! The regression battery in `tests/recycling.rs` pins a reader and
//! asserts the block is *not* reusable until the reader unpins.

use core::alloc::Layout;
use sec_sync::TtasLock;

/// Whether (and how) a [`Collector`](crate::Collector) recycles
/// retired memory blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecyclePolicy {
    /// No recycling: quiesced blocks are returned to the heap (the
    /// pre-recycling behavior).
    Off,
    /// Per-thread bounded free lists with overflow to the collector's
    /// shared global pool. This is the default.
    PerThread {
        /// Maximum blocks a thread cache holds *per size class*. The
        /// global pool is bounded at `cache_cap × max_threads` per
        /// class.
        cache_cap: usize,
    },
}

impl RecyclePolicy {
    /// Default per-class thread-cache bound: large enough to cover the
    /// blocks in flight through the limbo-bag pipeline between two
    /// amortized epoch advances (≈ `ADVANCE_PERIOD` retirements per
    /// class per advance, times the three bags), small enough that an
    /// idle thread parks at most a few pages per class.
    pub const DEFAULT_CACHE_CAP: usize = 512;

    /// The default policy: [`RecyclePolicy::PerThread`] with
    /// [`DEFAULT_CACHE_CAP`](Self::DEFAULT_CACHE_CAP).
    pub const fn per_thread() -> Self {
        RecyclePolicy::PerThread {
            cache_cap: Self::DEFAULT_CACHE_CAP,
        }
    }

    /// `true` unless the policy is [`RecyclePolicy::Off`].
    pub fn is_on(&self) -> bool {
        !matches!(self, RecyclePolicy::Off)
    }

    /// The per-class thread-cache bound (0 when off).
    pub fn cache_cap(&self) -> usize {
        match *self {
            RecyclePolicy::Off => 0,
            RecyclePolicy::PerThread { cache_cap } => cache_cap,
        }
    }
}

impl Default for RecyclePolicy {
    fn default() -> Self {
        Self::per_thread()
    }
}

/// One size class's free list: quiesced blocks of exactly `layout`.
struct Bin {
    layout: Layout,
    slots: Vec<*mut u8>,
}

impl Bin {
    /// Pre-size to `cap` so pushes under the bound never reallocate —
    /// the zero-alloc steady state must not be broken by the cache's
    /// own bookkeeping growing mid-run.
    fn with_capacity(layout: Layout, cap: usize) -> Self {
        Self {
            layout,
            slots: Vec::with_capacity(cap),
        }
    }
}

/// Finds the bin for `layout`, creating it (pre-sized to `cap`, so
/// pushes under the bound never reallocate) when absent. The single
/// lookup/insert point for thread caches and the global pool alike.
fn bin_for(bins: &mut Vec<Bin>, layout: Layout, cap: usize) -> &mut Bin {
    match bins.iter().position(|b| b.layout == layout) {
        Some(i) => &mut bins[i],
        None => {
            bins.push(Bin::with_capacity(layout, cap));
            bins.last_mut().expect("just pushed")
        }
    }
}

impl Drop for Bin {
    fn drop(&mut self) {
        // Blocks parked here were counted `cached` when they quiesced;
        // teardown releases the memory without re-counting (`freed` and
        // `cached` are disjoint retirement outcomes — see the counter
        // contract on CollectorStats).
        for &p in &self.slots {
            // Safety: every slot is a live allocation of exactly
            // `self.layout`, owned by the bin.
            unsafe { std::alloc::dealloc(p, self.layout) };
        }
    }
}

/// Per-thread free lists (owned by a [`Handle`](crate::Handle), touched
/// without synchronization) plus the thread's recycle counters, flushed
/// into the collector's totals when the handle drops.
pub(crate) struct ThreadCache {
    cap: usize,
    bins: Vec<Bin>,
    /// Allocations served from a free list (thread cache or pool).
    pub(crate) hits: u64,
    /// Allocations that fell through to the heap.
    pub(crate) misses: u64,
    /// Quiesced blocks that did not fit this thread's cache (spilled to
    /// the global pool, or freed when that was full too).
    pub(crate) overflows: u64,
}

impl ThreadCache {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            cap,
            bins: Vec::new(),
            hits: 0,
            misses: 0,
            overflows: 0,
        }
    }

    fn bin_mut(&mut self, layout: Layout) -> Option<&mut Bin> {
        self.bins.iter_mut().find(|b| b.layout == layout)
    }

    /// Pops a block of `layout`, if one is cached.
    pub(crate) fn pop(&mut self, layout: Layout) -> Option<*mut u8> {
        self.bin_mut(layout).and_then(|b| b.slots.pop())
    }

    /// Accepts a quiesced block; `Err` (block unconsumed) when the
    /// class bin is full.
    pub(crate) fn push(&mut self, ptr: *mut u8, layout: Layout) -> Result<(), *mut u8> {
        let bin = bin_for(&mut self.bins, layout, self.cap);
        if bin.slots.len() >= self.cap {
            return Err(ptr);
        }
        bin.slots.push(ptr);
        Ok(())
    }

    /// Refills this cache's bin for `layout` from the global pool (up
    /// to half the bound, so one grab amortizes several allocations)
    /// and pops one block if any arrived.
    pub(crate) fn refill_from(&mut self, pool: &GlobalPool, layout: Layout) -> Option<*mut u8> {
        let want = (self.cap / 2).max(1);
        let bin = bin_for(&mut self.bins, layout, self.cap);
        pool.grab(layout, want, &mut bin.slots);
        bin.slots.pop()
    }

    /// Moves every cached block into the global pool (handle
    /// teardown). Blocks the pool cannot hold are deallocated; neither
    /// path re-counts (the blocks were already `cached`).
    pub(crate) fn spill_all(&mut self, pool: &GlobalPool) {
        for bin in &mut self.bins {
            pool.absorb(bin.layout, &mut bin.slots);
        }
        self.bins.clear(); // Bin::drop deallocs whatever the pool refused
    }
}

/// The collector-wide overflow pool: one locked bin per size class,
/// bounded at `cap_per_class` blocks.
pub(crate) struct GlobalPool {
    cap_per_class: usize,
    bins: TtasLock<Vec<Bin>>,
}

// Safety: the raw block pointers are plain memory owned by the pool;
// they carry no thread affinity.
unsafe impl Send for GlobalPool {}
unsafe impl Sync for GlobalPool {}
// Safety: `ThreadCache` lives inside a `Handle`, which is `Send + !Sync`;
// its raw pointers are unaliased owned blocks.
unsafe impl Send for ThreadCache {}

impl GlobalPool {
    pub(crate) fn new(cap_per_class: usize) -> Self {
        Self {
            cap_per_class,
            bins: TtasLock::new(Vec::new()),
        }
    }

    /// Accepts one quiesced block; `Err` (block unconsumed) when the
    /// class is full.
    pub(crate) fn push(&self, ptr: *mut u8, layout: Layout) -> Result<(), *mut u8> {
        let mut bins = self.bins.lock();
        let bin = bin_for(&mut bins, layout, self.cap_per_class);
        if bin.slots.len() >= self.cap_per_class {
            return Err(ptr);
        }
        bin.slots.push(ptr);
        Ok(())
    }

    /// Moves up to `want` blocks of `layout` into `out`.
    pub(crate) fn grab(&self, layout: Layout, want: usize, out: &mut Vec<*mut u8>) {
        let mut bins = self.bins.lock();
        if let Some(bin) = bins.iter_mut().find(|b| b.layout == layout) {
            let take = want.min(bin.slots.len()).min(out.capacity() - out.len());
            let from = bin.slots.len() - take;
            out.extend(bin.slots.drain(from..));
        }
    }

    /// Bulk-absorbs a dying thread cache's bin; blocks past the class
    /// bound stay in `slots` for the caller to free.
    pub(crate) fn absorb(&self, layout: Layout, slots: &mut Vec<*mut u8>) {
        let mut bins = self.bins.lock();
        let bin = bin_for(&mut bins, layout, self.cap_per_class);
        while bin.slots.len() < self.cap_per_class {
            match slots.pop() {
                Some(p) => bin.slots.push(p),
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(layout: Layout) -> *mut u8 {
        // Safety: layout has non-zero size in every test below.
        unsafe { std::alloc::alloc(layout) }
    }

    #[test]
    fn policy_defaults_to_per_thread() {
        let p = RecyclePolicy::default();
        assert!(p.is_on());
        assert_eq!(p.cache_cap(), RecyclePolicy::DEFAULT_CACHE_CAP);
        assert!(!RecyclePolicy::Off.is_on());
        assert_eq!(RecyclePolicy::Off.cache_cap(), 0);
    }

    #[test]
    fn thread_cache_round_trips_by_layout() {
        let l8 = Layout::from_size_align(8, 8).unwrap();
        let l16 = Layout::from_size_align(16, 8).unwrap();
        let mut c = ThreadCache::new(4);
        let a = block(l8);
        let b = block(l16);
        c.push(a, l8).unwrap();
        c.push(b, l16).unwrap();
        assert_eq!(c.pop(l16), Some(b), "classes do not mix");
        assert_eq!(c.pop(l8), Some(a));
        assert_eq!(c.pop(l8), None);
        unsafe { std::alloc::dealloc(a, l8) };
        unsafe { std::alloc::dealloc(b, l16) };
    }

    #[test]
    fn thread_cache_bounds_each_class() {
        let l = Layout::from_size_align(8, 8).unwrap();
        let mut c = ThreadCache::new(2);
        let p1 = block(l);
        let p2 = block(l);
        let p3 = block(l);
        assert!(c.push(p1, l).is_ok());
        assert!(c.push(p2, l).is_ok());
        let rejected = c.push(p3, l).unwrap_err();
        assert_eq!(rejected, p3, "overflow hands the block back");
        unsafe { std::alloc::dealloc(p3, l) };
        // p1/p2 freed by the cache's Bin drops.
    }

    #[test]
    fn global_pool_bounds_absorb_and_grab() {
        let l = Layout::from_size_align(32, 8).unwrap();
        let pool = GlobalPool::new(2);
        let mut spill: Vec<*mut u8> = (0..3).map(|_| block(l)).collect();
        pool.absorb(l, &mut spill);
        assert_eq!(spill.len(), 1, "pool keeps cap_per_class, returns rest");
        for p in spill.drain(..) {
            unsafe { std::alloc::dealloc(p, l) };
        }
        let mut out = Vec::with_capacity(4);
        pool.grab(l, 10, &mut out);
        assert_eq!(out.len(), 2);
        for p in out {
            unsafe { std::alloc::dealloc(p, l) };
        }
    }

    #[test]
    fn refill_pulls_from_pool() {
        let l = Layout::from_size_align(24, 8).unwrap();
        let pool = GlobalPool::new(8);
        for _ in 0..4 {
            pool.push(block(l), l).unwrap();
        }
        let mut c = ThreadCache::new(4);
        assert_eq!(c.pop(l), None);
        let p = c.refill_from(&pool, l).expect("pool had blocks");
        unsafe { std::alloc::dealloc(p, l) };
        // The refill pulled extra blocks beyond the returned one.
        assert!(c.pop(l).is_some());
        // Remaining cached blocks freed by Bin drops.
    }
}
