//! The per-thread side of the collector: handles, pinning guards,
//! limbo-bag management.

use crate::bag::{Bag, Deferred};
use crate::collector::{Collector, PINNED};
use crate::recycle::ThreadCache;
use crate::{ADVANCE_PERIOD, BAG_PRESSURE};
use core::alloc::Layout;
use core::cell::UnsafeCell;
use core::fmt;
use core::ptr::NonNull;
use core::sync::atomic::{fence, Ordering};

/// Thread-private state behind the handle's `UnsafeCell`.
struct Local {
    /// Limbo bags, indexed by `epoch mod 3`.
    bags: [Bag; 3],
    /// Per-thread recycle free lists (DESIGN.md §10). Present even when
    /// the policy is off (with a zero bound) so the hot paths stay
    /// branch-light; the off check happens once per alloc/dispose.
    cache: ThreadCache,
    /// Re-entrant pin depth (only the outermost pin announces).
    pin_depth: u32,
    /// Epoch announced by the current outermost pin.
    pin_epoch: u64,
    /// Total pins, for amortizing advance attempts.
    pins: u64,
}

/// A registered thread's access point to a [`Collector`].
///
/// One handle per thread; not `Sync` (it owns thread-private limbo
/// bags). Dropping the handle releases its registry slot and hands any
/// unfreed garbage to the collector's orphan list.
pub struct Handle<'c> {
    collector: &'c Collector,
    slot_idx: usize,
    local: UnsafeCell<Local>,
}

// Safety: `Handle` can move between threads (it is only ever used by one
// thread at a time — it is not `Sync`); the bags' contents are `Send`.
unsafe impl Send for Handle<'_> {}

impl<'c> Handle<'c> {
    pub(crate) fn new(collector: &'c Collector, slot_idx: usize) -> Self {
        Self {
            collector,
            slot_idx,
            local: UnsafeCell::new(Local {
                bags: [Bag::new(), Bag::new(), Bag::new()],
                cache: ThreadCache::new(collector.recycle_policy().cache_cap()),
                pin_depth: 0,
                pin_epoch: 0,
                pins: 0,
            }),
        }
    }

    /// The collector this handle belongs to.
    pub fn collector(&self) -> &'c Collector {
        self.collector
    }

    /// Index of this handle's registry slot: a dense thread id in
    /// `0..max_threads`, unique among live handles. The stacks reuse it
    /// as their thread id (e.g. SEC's aggregator assignment).
    pub fn slot(&self) -> usize {
        self.slot_idx
    }

    #[allow(clippy::mut_from_ref)]
    fn local(&self) -> &mut Local {
        // Safety: `Handle` is not `Sync` and the `&mut` never escapes a
        // single method call, so there is no aliasing.
        unsafe { &mut *self.local.get() }
    }

    /// Pins the calling thread, announcing the current epoch.
    ///
    /// While the returned [`Guard`] lives, no object retired *from now
    /// on* will be freed, so shared pointers read under the guard remain
    /// valid. Pinning is re-entrant; only the outermost pin pays the
    /// announcement cost.
    pub fn pin(&self) -> Guard<'_, 'c> {
        let local = self.local();
        local.pin_depth += 1;
        if local.pin_depth == 1 {
            let slot = &self.collector.slots[self.slot_idx];
            // Announce-and-verify loop (crossbeam/DEBRA idiom): the
            // SeqCst fence orders our announcement before the re-read of
            // the global epoch, so by the time we proceed, every other
            // thread's advance scan either sees our announcement or
            // happened before we read `e` (in which case `e` is still
            // current and the advance cannot skip us).
            loop {
                let e = self.collector.load_epoch_relaxed();
                slot.state.store((e << 1) | PINNED, Ordering::Relaxed);
                fence(Ordering::SeqCst);
                if self.collector.load_epoch_relaxed() == e {
                    local.pin_epoch = e;
                    break;
                }
                // Epoch moved under us; re-announce with the fresh value.
            }
            local.pins += 1;
            if local.pins.is_multiple_of(ADVANCE_PERIOD) {
                self.advance_and_collect();
            }
        }
        Guard { handle: self }
    }

    /// `true` while the thread is pinned (diagnostic).
    pub fn is_pinned(&self) -> bool {
        self.local().pin_depth > 0
    }

    /// Number of objects waiting in this thread's limbo bags.
    pub fn pending_local(&self) -> usize {
        self.local().bags.iter().map(Bag::len).sum()
    }

    /// How many recycled blocks this thread's cache has spilled to the
    /// global pool over its lifetime (monotonic; a tracing consumer
    /// diffs successive reads).
    pub fn recycle_overflows(&self) -> u64 {
        self.local().cache.overflows
    }

    /// Tries to advance the epoch and free everything this thread has
    /// retired. Must be called *unpinned*; makes at most `rounds`
    /// advance attempts (other threads' stale pins can block progress).
    ///
    /// Returns the number of objects still pending afterwards.
    pub fn flush(&self, rounds: usize) -> usize {
        assert!(
            !self.is_pinned(),
            "flush must not be called while pinned (it would block itself)"
        );
        for _ in 0..rounds {
            if self.pending_local() == 0 {
                break;
            }
            let e = self.collector.global_epoch();
            let now = self.collector.try_advance(e);
            self.collect(now);
            self.collector.collect_orphans(now);
            if now == e {
                break; // blocked by a pinned straggler; retry later
            }
        }
        self.pending_local()
    }

    fn unpin(&self) {
        let local = self.local();
        debug_assert!(local.pin_depth > 0);
        local.pin_depth -= 1;
        if local.pin_depth == 0 {
            let slot = &self.collector.slots[self.slot_idx];
            // Quiescent: keep the epoch bits (harmless), clear PINNED.
            slot.state.store(local.pin_epoch << 1, Ordering::Release);
        }
    }

    /// Adds `d` to the bag for the current global epoch.
    fn defer(&self, d: Deferred) {
        // Tag with the *global* epoch at retire time (not the pin
        // epoch): a reader pinned at `pin_epoch + 1` may have taken a
        // reference before the unlink, and the `tag + 2` free threshold
        // must account for it.
        let tag = self.collector.global_epoch();
        let Local { bags, cache, .. } = self.local();
        let bag = &mut bags[(tag % 3) as usize];
        if bag.epoch != tag {
            // Reusing the slot for a newer epoch: the old contents are
            // ≥ 3 epochs stale — dispose of them first.
            let (freed, cached) = dispose_drained(self.collector, cache, bag);
            self.collector.note_freed(freed);
            self.collector.note_cached(cached);
            bag.epoch = tag;
        }
        bag.push(d);
        self.collector.note_retired(1);
        if bag.len() >= BAG_PRESSURE {
            self.advance_and_collect();
        }
    }

    /// One amortized advance attempt plus a sweep of eligible bags.
    fn advance_and_collect(&self) {
        let e = self.collector.global_epoch();
        let now = self.collector.try_advance(e);
        self.collect(now);
        if now != e {
            self.collector.collect_orphans(now);
        }
    }

    /// Disposes of every local bag whose epoch is ≥ 2 behind
    /// `epoch_now`: recyclable blocks enter the free lists, the rest
    /// are dropped.
    fn collect(&self, epoch_now: u64) {
        let Local { bags, cache, .. } = self.local();
        for bag in bags {
            if !bag.is_empty() && epoch_now >= bag.epoch + 2 {
                let (freed, cached) = dispose_drained(self.collector, cache, bag);
                self.collector.note_freed(freed);
                self.collector.note_cached(cached);
            }
        }
    }

    /// Pops a recycled block of exactly `layout` from this thread's
    /// free list, refilling from the collector's global pool when the
    /// local bin runs dry. `None` — the caller heap-allocates — when
    /// recycling is off, the layout is zero-sized, or no block of the
    /// class is available. Counts a hit or a miss accordingly.
    pub fn alloc_raw(&self, layout: Layout) -> Option<NonNull<u8>> {
        if layout.size() == 0 || !self.collector.recycle_on() {
            return None;
        }
        let cache = &mut self.local().cache;
        let got = cache
            .pop(layout)
            .or_else(|| cache.refill_from(self.collector.pool(), layout));
        match got {
            Some(p) => {
                cache.hits += 1;
                // Safety: free lists only ever hold non-null blocks.
                Some(unsafe { NonNull::new_unchecked(p) })
            }
            None => {
                cache.misses += 1;
                None
            }
        }
    }

    /// Allocates a heap slot for `value`, reusing a recycled block of
    /// `T`'s layout when one is available. The returned pointer is
    /// always valid for `Box::from_raw::<T>` — recycled blocks
    /// originate from allocations of the same layout.
    pub fn alloc_boxed<T>(&self, value: T) -> *mut T {
        match self.alloc_raw(Layout::new::<T>()) {
            Some(p) => {
                let p = p.as_ptr().cast::<T>();
                // Safety: the block is unaliased, sized and aligned for
                // `T` (exact-layout size classes); old bytes are dead.
                unsafe { p.write(value) };
                p
            }
            None => Box::into_raw(Box::new(value)),
        }
    }
}

/// Disposes one drained bag: recyclable blocks go to the thread cache,
/// overflowing into the collector's global pool (and, past that, the
/// allocator); droppable items run their shim. Returns
/// `(freed, cached)` for the collector's accounting.
fn dispose_drained(
    collector: &Collector,
    cache: &mut ThreadCache,
    bag: &mut Bag,
) -> (usize, usize) {
    let recycle_on = collector.recycle_on();
    let mut freed = 0usize;
    let mut cached = 0usize;
    for d in bag.drain_iter() {
        match d {
            d @ Deferred::Drop { .. } => {
                d.execute();
                freed += 1;
            }
            Deferred::Recycle { ptr, layout } => {
                if !recycle_on {
                    // Safety: unique live block of exactly `layout`
                    // (the retire_recycle contract), consumed here.
                    unsafe { std::alloc::dealloc(ptr, layout) };
                    freed += 1;
                    continue;
                }
                match cache.push(ptr, layout) {
                    Ok(()) => cached += 1,
                    Err(p) => {
                        cache.overflows += 1;
                        match collector.pool().push(p, layout) {
                            Ok(()) => cached += 1,
                            Err(p) => {
                                // Safety: as above.
                                unsafe { std::alloc::dealloc(p, layout) };
                                freed += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    (freed, cached)
}

impl Drop for Handle<'_> {
    fn drop(&mut self) {
        debug_assert_eq!(self.local().pin_depth, 0, "handle dropped while pinned");
        // Hand unfreed garbage to the collector, spill the recycle
        // cache into the shared pool (other threads keep the blocks
        // warm), flush the recycle counters, then release the slot.
        let local = self.local();
        let mut orphaned = Vec::new();
        for bag in &mut local.bags {
            let epoch = bag.epoch;
            for d in bag.take_items() {
                orphaned.push((epoch, d));
            }
        }
        local.cache.spill_all(self.collector.pool());
        self.collector.flush_recycle_counters(
            local.cache.hits,
            local.cache.misses,
            local.cache.overflows,
        );
        self.collector.adopt_orphans(orphaned);
        let slot = &self.collector.slots[self.slot_idx];
        slot.state.store(0, Ordering::Release);
        slot.claimed.store(0, Ordering::Release);
    }
}

impl fmt::Debug for Handle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Handle")
            .field("slot", &self.slot_idx)
            .field("pinned", &self.is_pinned())
            .field("pending_local", &self.pending_local())
            .finish()
    }
}

/// RAII pin: the thread stays announced while any guard is alive.
pub struct Guard<'h, 'c> {
    handle: &'h Handle<'c>,
}

impl<'h, 'c> Guard<'h, 'c> {
    /// The epoch this guard announced at its outermost pin.
    pub fn epoch(&self) -> u64 {
        self.handle.local().pin_epoch
    }

    /// The handle this guard pins — gives retire-time code paths (e.g.
    /// a freezer installing a replacement batch) access to the
    /// recycle-aware allocation API without threading a second
    /// reference around.
    pub fn handle(&self) -> &'h Handle<'c> {
        self.handle
    }

    /// Hands an allocation to the collector for deferred dropping.
    ///
    /// # Safety
    ///
    /// * `ptr` must come from [`Box::into_raw`] and be owned by the
    ///   caller (no further use after this call);
    /// * `ptr` must already be unreachable from every shared location,
    ///   so only threads pinned *now* can still hold references;
    /// * `T`'s drop must not call back into this collector.
    pub unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        debug_assert!(!ptr.is_null());
        // Safety: forwarded caller contract.
        let d = unsafe { Deferred::new(ptr) };
        self.handle.defer(d);
    }

    /// Hands an allocation to the collector for deferred *recycling*:
    /// after quiescence its memory enters a free list (or is freed,
    /// when recycling is off or the lists are full) and a later
    /// [`Handle::alloc_raw`]/[`Handle::alloc_boxed`] of the same layout
    /// may reuse it. `T`'s destructor is **never** run.
    ///
    /// # Safety
    ///
    /// Everything [`Guard::retire`] requires, plus: the caller must
    /// have already moved `T`'s payload out (or `T` must need no drop)
    /// — the block's bytes are dead the moment it quiesces.
    pub unsafe fn retire_recycle<T: Send>(&self, ptr: *mut T) {
        // Safety: forwarded caller contract; `Layout::new::<T>` is the
        // exact layout `Box::into_raw::<T>` allocated with.
        unsafe { self.retire_recycle_raw(ptr.cast(), Layout::new::<T>()) }
    }

    /// Raw-layout variant of [`Guard::retire_recycle`], for compound
    /// objects whose parts recycle separately (e.g. a batch struct and
    /// its boxed slot array).
    ///
    /// # Safety
    ///
    /// `ptr` must be a unique, valid allocation of exactly `layout`
    /// (with `layout.size() > 0`), already unreachable from every
    /// shared location, owned by the caller and never touched again;
    /// no destructor is run for its contents.
    pub unsafe fn retire_recycle_raw(&self, ptr: *mut u8, layout: Layout) {
        debug_assert!(!ptr.is_null());
        assert!(
            layout.size() > 0,
            "zero-size blocks cannot be recycled (nothing was allocated)"
        );
        // Safety: forwarded caller contract.
        let d = unsafe { Deferred::recycle(ptr, layout) };
        self.handle.defer(d);
    }
}

impl Drop for Guard<'_, '_> {
    fn drop(&mut self) {
        self.handle.unpin();
    }
}

impl fmt::Debug for Guard<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("epoch", &self.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
    use std::sync::Arc;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, AOrd::Relaxed);
        }
    }

    fn retire_counter(g: &Guard<'_, '_>, c: &Arc<AtomicUsize>) {
        let p = Box::into_raw(Box::new(DropCounter(Arc::clone(c))));
        unsafe { g.retire(p) };
    }

    #[test]
    fn nested_pins_announce_once() {
        let c = Collector::new(1);
        let h = c.register().unwrap();
        let g1 = h.pin();
        let e = g1.epoch();
        let g2 = h.pin();
        assert_eq!(g2.epoch(), e);
        drop(g2);
        assert!(h.is_pinned());
        drop(g1);
        assert!(!h.is_pinned());
    }

    #[test]
    fn retired_object_not_freed_while_epoch_stuck() {
        let c = Collector::new(2);
        let h1 = c.register().unwrap();
        let h2 = c.register().unwrap();
        let drops = Arc::new(AtomicUsize::new(0));

        let _blocker = h2.pin(); // pins epoch 1 and never moves
        {
            let g = h1.pin();
            retire_counter(&g, &drops);
        }
        // h2's stale pin blocks the second advance, so the object can
        // never reach tag+2 while _blocker lives.
        assert_eq!(h1.flush(16), 1);
        assert_eq!(drops.load(AOrd::Relaxed), 0);
    }

    #[test]
    fn flush_frees_after_blockers_unpin() {
        let c = Collector::new(2);
        let h1 = c.register().unwrap();
        let h2 = c.register().unwrap();
        let drops = Arc::new(AtomicUsize::new(0));

        {
            let blocker = h2.pin();
            let g = h1.pin();
            retire_counter(&g, &drops);
            drop(g);
            drop(blocker);
        }
        assert_eq!(h1.flush(16), 0);
        assert_eq!(drops.load(AOrd::Relaxed), 1);
    }

    #[test]
    fn handle_drop_orphans_then_collector_drop_frees() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let c = Collector::new(1);
            let h = c.register().unwrap();
            {
                let g = h.pin();
                retire_counter(&g, &drops);
                retire_counter(&g, &drops);
            }
            drop(h); // garbage becomes orphaned
            assert_eq!(drops.load(AOrd::Relaxed), 0);
        } // collector drop frees orphans
        assert_eq!(drops.load(AOrd::Relaxed), 2);
    }

    #[test]
    fn bag_pressure_triggers_reclamation() {
        let c = Collector::new(1);
        let h = c.register().unwrap();
        let drops = Arc::new(AtomicUsize::new(0));
        // Retire a lot with nobody blocking: pressure-triggered advances
        // must free most of it without an explicit flush.
        for _ in 0..10 * crate::BAG_PRESSURE {
            let g = h.pin();
            retire_counter(&g, &drops);
        }
        assert!(
            drops.load(AOrd::Relaxed) > 0,
            "pressure/amortized advances must reclaim eventually"
        );
        h.flush(64);
        assert_eq!(drops.load(AOrd::Relaxed), 10 * crate::BAG_PRESSURE);
    }

    #[test]
    #[should_panic(expected = "flush must not be called while pinned")]
    fn flush_while_pinned_panics() {
        let c = Collector::new(1);
        let h = c.register().unwrap();
        let _g = h.pin();
        let _ = h.flush(1);
    }

    #[test]
    fn concurrent_retire_and_read_stress() {
        use std::thread;
        const THREADS: usize = 4;
        const OPS: usize = 3_000;
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Arc::new(Collector::new(THREADS));
        thread::scope(|s| {
            for _ in 0..THREADS {
                let c = &c;
                let drops = &drops;
                s.spawn(move || {
                    let h = c.register().unwrap();
                    for i in 0..OPS {
                        let g = h.pin();
                        if i % 2 == 0 {
                            retire_counter(&g, drops);
                        }
                        drop(g);
                    }
                    h.flush(64);
                });
            }
        });
        // All threads exited; a fresh handle can flush the remainder,
        // and collector drop picks up orphans.
        {
            let h = c.register().unwrap();
            h.flush(64);
        }
        drop(Arc::try_unwrap(c).unwrap());
        assert_eq!(drops.load(AOrd::Relaxed), THREADS * OPS / 2);
    }
}
