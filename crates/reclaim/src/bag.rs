//! Type-erased deferred destruction and per-epoch limbo bags.

use core::alloc::Layout;

/// A type-erased "deal with this allocation later" item.
///
/// Two shapes, both a few words with no allocation of their own:
///
/// * [`Deferred::Drop`] — a `Box<T>`-derived raw pointer plus a
///   monomorphized drop shim: the classic "free at a safe time";
/// * [`Deferred::Recycle`] — a raw block plus its exact [`Layout`]:
///   once quiesced, the *memory* goes back to a free list (or, when
///   recycling is off or the lists are full, to the allocator). No
///   destructor runs — the retirer has already moved the payload out.
pub(crate) enum Deferred {
    /// Run `T`'s drop glue (and free) after quiescence.
    Drop {
        /// The allocation, type-erased.
        ptr: *mut (),
        /// Monomorphized `Box::from_raw` drop shim.
        call: unsafe fn(*mut ()),
    },
    /// Return the block's memory to a free list after quiescence.
    Recycle {
        /// The block.
        ptr: *mut u8,
        /// Its exact allocation layout (the size class).
        layout: Layout,
    },
}

// Safety: a `Deferred` is only constructed from pointers to `Send` data
// (enforced by the `T: Send` bound in `Deferred::new`), and ownership of
// the allocation is transferred into the collector, so executing the
// drop on another thread is sound.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Wraps `ptr` (which must come from `Box::into_raw`) for deferred
    /// dropping.
    ///
    /// # Safety
    ///
    /// `ptr` must be a unique, valid pointer obtained from
    /// `Box::into_raw` and must not be dropped or dereferenced by the
    /// caller afterwards.
    pub(crate) unsafe fn new<T: Send>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut ()) {
            // Safety: `p` was produced by `Box::into_raw::<T>` in `new`.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Deferred::Drop {
            ptr: ptr.cast(),
            call: drop_box::<T>,
        }
    }

    /// Wraps a raw block for deferred *recycling*.
    ///
    /// # Safety
    ///
    /// `ptr` must be a unique, valid allocation of exactly `layout`
    /// (e.g. from `Box::into_raw` of a type with that layout), owned by
    /// the caller, with `layout.size() > 0`; the caller must not touch
    /// it afterwards, and no destructor is ever run for its contents.
    pub(crate) unsafe fn recycle(ptr: *mut u8, layout: Layout) -> Self {
        debug_assert!(layout.size() > 0);
        Deferred::Recycle { ptr, layout }
    }

    /// Executes the fallback disposal, consuming `self`: run the drop
    /// shim, or return the block to the allocator. Used by every path
    /// with no thread cache at hand (orphans, bag/collector teardown,
    /// recycling off).
    pub(crate) fn execute(self) {
        match self {
            // Safety: by construction, `ptr`/`call` form a valid pair
            // and `execute` consumes the `Deferred`: the drop runs once.
            Deferred::Drop { ptr, call } => unsafe { (call)(ptr) },
            // Safety: `ptr` is a unique live allocation of `layout`
            // (the `recycle` contract) and is consumed here.
            Deferred::Recycle { ptr, layout } => unsafe { std::alloc::dealloc(ptr, layout) },
        }
    }
}

/// A limbo bag: garbage retired during one epoch.
///
/// Each thread owns three (`epoch mod 3`); the `epoch` tag records which
/// epoch the contents belong to so the bag can be drained lazily when it
/// is reused for a later epoch (which is then ≥ 3 epochs newer, well past
/// the `e + 2` safety bound).
pub(crate) struct Bag {
    /// Epoch whose garbage this bag currently holds.
    pub(crate) epoch: u64,
    items: Vec<Deferred>,
}

impl Bag {
    pub(crate) fn new() -> Self {
        Self {
            epoch: 0,
            items: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, d: Deferred) {
        self.items.push(d);
    }

    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Frees every item in the bag. Returns how many were freed.
    pub(crate) fn drain(&mut self) -> usize {
        let n = self.items.len();
        for d in self.items.drain(..) {
            d.execute();
        }
        n
    }

    /// Drains the items in place (capacity is kept, so the steady-state
    /// zero-allocation property survives the bag's own bookkeeping);
    /// the caller disposes of each item.
    pub(crate) fn drain_iter(&mut self) -> std::vec::Drain<'_, Deferred> {
        self.items.drain(..)
    }

    /// Moves all items out (for orphaning on thread exit).
    pub(crate) fn take_items(&mut self) -> Vec<Deferred> {
        std::mem::take(&mut self.items)
    }
}

impl Drop for Bag {
    fn drop(&mut self) {
        // Dropping a bag with garbage frees it: callers only drop bags
        // when the collector is being torn down (no readers remain) or
        // after explicitly orphaning the contents.
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn deferred_counter(c: &Arc<AtomicUsize>) -> Deferred {
        let b = Box::into_raw(Box::new(DropCounter(Arc::clone(c))));
        unsafe { Deferred::new(b) }
    }

    #[test]
    fn deferred_runs_drop_exactly_once() {
        let c = Arc::new(AtomicUsize::new(0));
        let d = deferred_counter(&c);
        assert_eq!(c.load(Ordering::Relaxed), 0);
        d.execute();
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bag_drain_frees_all_items() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new();
        for _ in 0..10 {
            bag.push(deferred_counter(&c));
        }
        assert_eq!(bag.len(), 10);
        assert_eq!(bag.drain(), 10);
        assert!(bag.is_empty());
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn dropping_a_bag_frees_contents() {
        let c = Arc::new(AtomicUsize::new(0));
        {
            let mut bag = Bag::new();
            bag.push(deferred_counter(&c));
            bag.push(deferred_counter(&c));
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn take_items_transfers_ownership() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new();
        bag.push(deferred_counter(&c));
        let items = bag.take_items();
        assert!(bag.is_empty());
        drop(bag);
        assert_eq!(c.load(Ordering::Relaxed), 0, "items moved out, not freed");
        for d in items {
            d.execute();
        }
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }
}
