//! Type-erased deferred destruction and per-epoch limbo bags.

/// A type-erased "drop this allocation later" closure.
///
/// Built from a `Box<T>`-derived raw pointer plus a monomorphized drop
/// shim; two words, no allocation of its own.
pub(crate) struct Deferred {
    ptr: *mut (),
    call: unsafe fn(*mut ()),
}

// Safety: a `Deferred` is only constructed from pointers to `Send` data
// (enforced by the `T: Send` bound in `Deferred::new`), and ownership of
// the allocation is transferred into the collector, so executing the
// drop on another thread is sound.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Wraps `ptr` (which must come from `Box::into_raw`) for deferred
    /// dropping.
    ///
    /// # Safety
    ///
    /// `ptr` must be a unique, valid pointer obtained from
    /// `Box::into_raw` and must not be dropped or dereferenced by the
    /// caller afterwards.
    pub(crate) unsafe fn new<T: Send>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut ()) {
            // Safety: `p` was produced by `Box::into_raw::<T>` in `new`.
            drop(unsafe { Box::from_raw(p.cast::<T>()) });
        }
        Self {
            ptr: ptr.cast(),
            call: drop_box::<T>,
        }
    }

    /// Executes the deferred drop, consuming `self`.
    pub(crate) fn execute(self) {
        // Safety: by construction, `ptr`/`call` form a valid pair and
        // `execute` consumes the `Deferred`, so the drop runs once.
        unsafe { (self.call)(self.ptr) }
    }
}

/// A limbo bag: garbage retired during one epoch.
///
/// Each thread owns three (`epoch mod 3`); the `epoch` tag records which
/// epoch the contents belong to so the bag can be drained lazily when it
/// is reused for a later epoch (which is then ≥ 3 epochs newer, well past
/// the `e + 2` safety bound).
pub(crate) struct Bag {
    /// Epoch whose garbage this bag currently holds.
    pub(crate) epoch: u64,
    items: Vec<Deferred>,
}

impl Bag {
    pub(crate) fn new() -> Self {
        Self {
            epoch: 0,
            items: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, d: Deferred) {
        self.items.push(d);
    }

    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Frees every item in the bag. Returns how many were freed.
    pub(crate) fn drain(&mut self) -> usize {
        let n = self.items.len();
        for d in self.items.drain(..) {
            d.execute();
        }
        n
    }

    /// Moves all items out (for orphaning on thread exit).
    pub(crate) fn take_items(&mut self) -> Vec<Deferred> {
        std::mem::take(&mut self.items)
    }
}

impl Drop for Bag {
    fn drop(&mut self) {
        // Dropping a bag with garbage frees it: callers only drop bags
        // when the collector is being torn down (no readers remain) or
        // after explicitly orphaning the contents.
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn deferred_counter(c: &Arc<AtomicUsize>) -> Deferred {
        let b = Box::into_raw(Box::new(DropCounter(Arc::clone(c))));
        unsafe { Deferred::new(b) }
    }

    #[test]
    fn deferred_runs_drop_exactly_once() {
        let c = Arc::new(AtomicUsize::new(0));
        let d = deferred_counter(&c);
        assert_eq!(c.load(Ordering::Relaxed), 0);
        d.execute();
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn bag_drain_frees_all_items() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new();
        for _ in 0..10 {
            bag.push(deferred_counter(&c));
        }
        assert_eq!(bag.len(), 10);
        assert_eq!(bag.drain(), 10);
        assert!(bag.is_empty());
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn dropping_a_bag_frees_contents() {
        let c = Arc::new(AtomicUsize::new(0));
        {
            let mut bag = Bag::new();
            bag.push(deferred_counter(&c));
            bag.push(deferred_counter(&c));
        }
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn take_items_transfers_ownership() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut bag = Bag::new();
        bag.push(deferred_counter(&c));
        let items = bag.take_items();
        assert!(bag.is_empty());
        drop(bag);
        assert_eq!(c.load(Ordering::Relaxed), 0, "items moved out, not freed");
        for d in items {
            d.execute();
        }
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }
}
