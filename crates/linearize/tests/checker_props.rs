//! Property-based tests for the linearizability checker itself:
//! histories generated from a real sequential execution must always
//! check out (with tight or fully-overlapping intervals), and targeted
//! corruptions must be caught.

use proptest::prelude::*;
use sec_linearize::{check_conservation, check_history, Event, Op, Violation};

/// Abstract op kinds for generation.
#[derive(Debug, Clone, Copy)]
enum Kind {
    Push,
    Pop,
    Peek,
}

fn kind_strategy() -> impl Strategy<Value = Kind> {
    prop_oneof![Just(Kind::Push), Just(Kind::Pop), Just(Kind::Peek)]
}

/// Executes `kinds` against a Vec model, emitting a *sequential*
/// history (disjoint intervals, unique pushed values).
fn sequential_history(kinds: &[Kind]) -> Vec<Event<u64>> {
    let mut model: Vec<u64> = Vec::new();
    let mut events = Vec::with_capacity(kinds.len());
    let mut clock = 0u64;
    for (i, k) in kinds.iter().enumerate() {
        let invoke = clock;
        clock += 1;
        let op = match k {
            Kind::Push => {
                let v = i as u64;
                model.push(v);
                Op::Push(v)
            }
            Kind::Pop => Op::Pop(model.pop()),
            Kind::Peek => Op::Peek(model.last().copied()),
        };
        let response = clock;
        clock += 1;
        events.push(Event {
            thread: i % 3,
            op,
            invoke,
            response,
        });
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn sequential_histories_always_check(kinds in prop::collection::vec(kind_strategy(), 0..40)) {
        let h = sequential_history(&kinds);
        prop_assert!(check_history(&h).is_ok());
        prop_assert!(check_conservation(&h).is_ok());
        // The witness must be a permutation of all indices.
        let order = check_history(&h).unwrap();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..h.len()).collect::<Vec<_>>());
    }

    #[test]
    fn fully_overlapping_histories_still_check(kinds in prop::collection::vec(kind_strategy(), 0..14)) {
        // Blow every interval up to [0, ∞): the sequential order is
        // still one valid linearization, so the checker must accept.
        let mut h = sequential_history(&kinds);
        for e in &mut h {
            e.invoke = 0;
            e.response = u64::MAX;
        }
        prop_assert!(check_history(&h).is_ok());
    }

    #[test]
    fn corrupted_pop_value_is_caught(kinds in prop::collection::vec(kind_strategy(), 1..30)) {
        let mut h = sequential_history(&kinds);
        // Find a pop that returned a value and corrupt it to a value
        // that was never pushed: conservation must flag it.
        let target = h.iter_mut().find_map(|e| match &mut e.op {
            Op::Pop(Some(v)) => Some(v),
            _ => None,
        });
        prop_assume!(target.is_some());
        *target.unwrap() = 999_999;
        prop_assert!(matches!(
            check_conservation(&h),
            Err(Violation::Conservation(_))
        ));
    }

    #[test]
    fn duplicated_pop_is_caught(kinds in prop::collection::vec(kind_strategy(), 1..30)) {
        let mut h = sequential_history(&kinds);
        let dup = h.iter().find(|e| matches!(e.op, Op::Pop(Some(_)))).cloned();
        prop_assume!(dup.is_some());
        let mut dup = dup.unwrap();
        dup.invoke += 1_000;
        dup.response += 1_001;
        h.push(dup);
        prop_assert!(matches!(
            check_conservation(&h),
            Err(Violation::Conservation(_))
        ));
        // And the full checker agrees (the value can't be popped twice).
        if h.len() <= 40 {
            prop_assert!(check_history(&h).is_err());
        }
    }

    #[test]
    fn lifo_violation_is_caught(n in 2usize..20) {
        // n sequential pushes then pops in FIFO order: never a stack.
        let mut h = Vec::new();
        let mut clock = 0u64;
        for i in 0..n {
            h.push(Event { thread: 0, op: Op::Push(i as u64), invoke: clock, response: clock + 1 });
            clock += 2;
        }
        for i in 0..n {
            h.push(Event { thread: 0, op: Op::Pop(Some(i as u64)), invoke: clock, response: clock + 1 });
            clock += 2;
        }
        prop_assert_eq!(check_history(&h), Err(Violation::NotLinearizable));
        // Conservation alone is satisfied — it is strictly weaker.
        prop_assert!(check_conservation(&h).is_ok());
    }
}
