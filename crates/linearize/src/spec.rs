//! Generic linearizability checking against arbitrary sequential
//! specifications.
//!
//! [`check_history`](crate::check_history) is specialized (and
//! undo-optimized) for the stack spec; this module provides the same
//! Wing–Gong search for *any* sequential object — used by the test
//! suite to check the `SecDeque` extension, and available for further
//! data structures built on the paper's mechanisms.

use crate::checker::Violation;
use core::hash::Hash;
use std::collections::HashSet;

/// A sequential specification: a deterministic state machine whose
/// transitions may refuse an operation (when the operation's *observed
/// result* is impossible in the current state).
pub trait SeqSpec {
    /// A complete operation, including its observed result.
    type Op;
    /// Sequential object state.
    type State: Clone + Eq + Hash + Default;

    /// Applies `op` to a copy of `state`; `None` when the observed
    /// result is inconsistent with `state`.
    fn apply(state: &Self::State, op: &Self::Op) -> Option<Self::State>;
}

/// A timed operation for the generic checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedOp<O> {
    /// The operation with its observed result.
    pub op: O,
    /// Logical invocation time (see [`Recorder`](crate::Recorder)).
    pub invoke: u64,
    /// Logical response time.
    pub response: u64,
}

/// Checks that the timed operations have a valid linearization against
/// `S`, starting from `S::State::default()`. Returns a witness order.
///
/// Exponential worst case; keep histories small (≤ 128 operations).
///
/// # Examples
///
/// ```
/// use sec_linearize::spec::{check_generic, SeqSpec, TimedOp};
///
/// /// A register holding the last written value.
/// struct RegSpec;
/// #[derive(Debug, Clone, PartialEq, Eq)]
/// enum RegOp { Write(u32), Read(Option<u32>) }
/// impl SeqSpec for RegSpec {
///     type Op = RegOp;
///     type State = Option<u32>;
///     fn apply(state: &Self::State, op: &Self::Op) -> Option<Self::State> {
///         match op {
///             RegOp::Write(v) => Some(Some(*v)),
///             RegOp::Read(observed) => (observed == state).then(|| state.clone()),
///         }
///     }
/// }
///
/// let h = vec![
///     TimedOp { op: RegOp::Write(3), invoke: 0, response: 1 },
///     TimedOp { op: RegOp::Read(Some(3)), invoke: 2, response: 3 },
/// ];
/// assert!(check_generic::<RegSpec>(&h).is_ok());
/// ```
pub fn check_generic<S: SeqSpec>(events: &[TimedOp<S::Op>]) -> Result<Vec<usize>, Violation> {
    let n = events.len();
    if n > 128 {
        return Err(Violation::TooLarge(n));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let all_mask: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut order = Vec::new();
    let mut visited: HashSet<(u128, S::State)> = HashSet::new();

    fn dfs<S: SeqSpec>(
        events: &[TimedOp<S::Op>],
        done: u128,
        all_mask: u128,
        state: &S::State,
        order: &mut Vec<usize>,
        visited: &mut HashSet<(u128, S::State)>,
    ) -> bool {
        if done == all_mask {
            return true;
        }
        if !visited.insert((done, state.clone())) {
            return false;
        }
        let min_response = events
            .iter()
            .enumerate()
            .filter(|(i, _)| done & (1 << i) == 0)
            .map(|(_, e)| e.response)
            .min()
            .expect("remaining events exist");
        for (i, e) in events.iter().enumerate() {
            if done & (1 << i) != 0 || e.invoke > min_response {
                continue;
            }
            if let Some(next) = S::apply(state, &e.op) {
                order.push(i);
                if dfs::<S>(events, done | (1 << i), all_mask, &next, order, visited) {
                    return true;
                }
                order.pop();
            }
        }
        false
    }

    if dfs::<S>(
        events,
        0,
        all_mask,
        &S::State::default(),
        &mut order,
        &mut visited,
    ) {
        Ok(order)
    } else {
        Err(Violation::NotLinearizable)
    }
}

/// The deque sequential specification (for `SecDeque`-style tests).
pub mod deque {
    use super::SeqSpec;
    use std::collections::VecDeque;

    /// A deque operation with its observed result.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub enum DequeOp<T> {
        /// `push_front(value)`.
        PushFront(T),
        /// `push_back(value)`.
        PushBack(T),
        /// `pop_front()` and its result.
        PopFront(Option<T>),
        /// `pop_back()` and its result.
        PopBack(Option<T>),
    }

    /// Marker type implementing [`SeqSpec`] for deques over `T`.
    pub struct DequeSpec<T>(core::marker::PhantomData<T>);

    impl<T: Clone + Eq + core::hash::Hash> SeqSpec for DequeSpec<T> {
        type Op = DequeOp<T>;
        type State = VecDeque<T>;

        fn apply(state: &Self::State, op: &Self::Op) -> Option<Self::State> {
            let mut next = state.clone();
            match op {
                DequeOp::PushFront(v) => {
                    next.push_front(v.clone());
                    Some(next)
                }
                DequeOp::PushBack(v) => {
                    next.push_back(v.clone());
                    Some(next)
                }
                DequeOp::PopFront(expect) => {
                    let got = next.pop_front();
                    (&got == expect).then_some(next)
                }
                DequeOp::PopBack(expect) => {
                    let got = next.pop_back();
                    (&got == expect).then_some(next)
                }
            }
        }
    }
}

/// The FIFO queue sequential specification.
///
/// Not used by a data structure in this repository directly, but the
/// paper's introduction builds on the queue literature (LCRQ,
/// aggregating funnels), and having the spec lets downstream users of
/// the generic checker verify queue adaptations of the SEC mechanisms.
pub mod queue {
    use super::SeqSpec;
    use std::collections::VecDeque;

    /// A queue operation with its observed result.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub enum QueueOp<T> {
        /// `enqueue(value)`.
        Enqueue(T),
        /// `dequeue()` and its result.
        Dequeue(Option<T>),
    }

    /// Marker type implementing [`SeqSpec`] for FIFO queues over `T`.
    pub struct QueueSpec<T>(core::marker::PhantomData<T>);

    impl<T: Clone + Eq + core::hash::Hash> SeqSpec for QueueSpec<T> {
        type Op = QueueOp<T>;
        type State = VecDeque<T>;

        fn apply(state: &Self::State, op: &Self::Op) -> Option<Self::State> {
            let mut next = state.clone();
            match op {
                QueueOp::Enqueue(v) => {
                    next.push_back(v.clone());
                    Some(next)
                }
                QueueOp::Dequeue(expect) => {
                    let got = next.pop_front();
                    (&got == expect).then_some(next)
                }
            }
        }
    }
}

/// The fetch-and-add counter sequential specification (for
/// `SecCounter`-style tests): `fetch_add(n)` must observe exactly the
/// sum of the operands linearized before it.
pub mod counter {
    use super::SeqSpec;

    /// A counter operation with its observed result.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub enum CounterOp {
        /// `fetch_add(operand)` and the pre-add value it observed.
        FetchAdd {
            /// The amount added.
            operand: u64,
            /// The counter value returned (value *before* the add).
            observed: u64,
        },
        /// `load()` and its result.
        Load(u64),
    }

    /// Marker type implementing [`SeqSpec`] for a `u64` counter.
    pub struct CounterSpec;

    impl SeqSpec for CounterSpec {
        type Op = CounterOp;
        type State = u64;

        fn apply(state: &Self::State, op: &Self::Op) -> Option<Self::State> {
            match op {
                CounterOp::FetchAdd { operand, observed } => {
                    (observed == state).then(|| state.wrapping_add(*operand))
                }
                CounterOp::Load(observed) => (observed == state).then_some(*state),
            }
        }
    }
}

/// The pool (unordered bag) sequential specification — the weakest
/// correctness contract `SecPool` must satisfy: `get` returns *some*
/// previously-put value (each value exactly once), or `None` only when
/// the pool is empty at the linearization point.
pub mod pool {
    use super::SeqSpec;
    use std::collections::BTreeMap;

    /// A pool operation with its observed result.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub enum PoolOp<T> {
        /// `put(value)`.
        Put(T),
        /// `get()` and its result.
        Get(Option<T>),
    }

    /// Marker type implementing [`SeqSpec`] for pools over `T`.
    ///
    /// State is a multiset (value → multiplicity); `BTreeMap` rather
    /// than `HashMap` because the checker hashes states.
    pub struct PoolSpec<T>(core::marker::PhantomData<T>);

    impl<T: Clone + Ord + core::hash::Hash> SeqSpec for PoolSpec<T> {
        type Op = PoolOp<T>;
        type State = BTreeMap<T, u32>;

        fn apply(state: &Self::State, op: &Self::Op) -> Option<Self::State> {
            let mut next = state.clone();
            match op {
                PoolOp::Put(v) => {
                    *next.entry(v.clone()).or_insert(0) += 1;
                    Some(next)
                }
                PoolOp::Get(Some(v)) => match next.get_mut(v) {
                    Some(n) if *n > 1 => {
                        *n -= 1;
                        Some(next)
                    }
                    Some(_) => {
                        next.remove(v);
                        Some(next)
                    }
                    None => None,
                },
                PoolOp::Get(None) => next.is_empty().then_some(next),
            }
        }
    }
}

/// The keyed map sequential specification (for `SecMap`-style tests):
/// `get` must observe exactly the mapping produced by the
/// inserts/removes linearized before it, and `insert`/`remove` must
/// observe the displaced/removed value the same way.
pub mod map {
    use super::SeqSpec;
    use std::collections::BTreeMap;

    /// A map operation with its observed result.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub enum MapOp<K, V> {
        /// `get(key)` and the value it observed (`None` = absent).
        Get {
            /// The key looked up.
            key: K,
            /// The value snapshot at the linearization point.
            observed: Option<V>,
        },
        /// `insert(key, value)` and the previous mapping it displaced.
        Insert {
            /// The key written.
            key: K,
            /// The value written.
            value: V,
            /// The previous mapping (`None` = key was absent).
            prev: Option<V>,
        },
        /// `remove(key)` and the mapping it removed.
        Remove {
            /// The key removed.
            key: K,
            /// The removed value (`None` = key was absent).
            removed: Option<V>,
        },
    }

    /// Marker type implementing [`SeqSpec`] for maps from `K` to `V`.
    ///
    /// State is the key-value association; `BTreeMap` rather than
    /// `HashMap` because the checker hashes states.
    pub struct MapSpec<K, V>(core::marker::PhantomData<(K, V)>);

    impl<K, V> SeqSpec for MapSpec<K, V>
    where
        K: Clone + Ord + core::hash::Hash,
        V: Clone + Eq + core::hash::Hash,
    {
        type Op = MapOp<K, V>;
        type State = BTreeMap<K, V>;

        fn apply(state: &Self::State, op: &Self::Op) -> Option<Self::State> {
            let mut next = state.clone();
            match op {
                MapOp::Get { key, observed } => {
                    (next.get(key) == observed.as_ref()).then_some(next)
                }
                MapOp::Insert { key, value, prev } => {
                    let got = next.insert(key.clone(), value.clone());
                    (&got == prev).then_some(next)
                }
                MapOp::Remove { key, removed } => {
                    let got = next.remove(key);
                    (&got == removed).then_some(next)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::counter::{CounterOp, CounterSpec};
    use super::deque::{DequeOp, DequeSpec};
    use super::map::{MapOp, MapSpec};
    use super::pool::{PoolOp, PoolSpec};
    use super::queue::{QueueOp, QueueSpec};
    use super::*;

    fn t<O>(op: O, invoke: u64, response: u64) -> TimedOp<O> {
        TimedOp {
            op,
            invoke,
            response,
        }
    }

    #[test]
    fn empty_history_checks() {
        let h: Vec<TimedOp<DequeOp<u32>>> = vec![];
        assert_eq!(check_generic::<DequeSpec<u32>>(&h), Ok(vec![]));
    }

    #[test]
    fn sequential_deque_history_checks() {
        let h = vec![
            t(DequeOp::PushBack(1), 0, 1),
            t(DequeOp::PushBack(2), 2, 3),
            t(DequeOp::PushFront(0), 4, 5),
            t(DequeOp::PopFront(Some(0)), 6, 7),
            t(DequeOp::PopBack(Some(2)), 8, 9),
            t(DequeOp::PopFront(Some(1)), 10, 11),
            t(DequeOp::PopFront(None), 12, 13),
        ];
        assert!(check_generic::<DequeSpec<u32>>(&h).is_ok());
    }

    #[test]
    fn wrong_end_order_is_rejected() {
        // Two completed push_backs, then pop_back returns the *older*:
        // impossible on a deque.
        let h = vec![
            t(DequeOp::PushBack(1), 0, 1),
            t(DequeOp::PushBack(2), 2, 3),
            t(DequeOp::PopBack(Some(1)), 4, 5),
        ];
        assert_eq!(
            check_generic::<DequeSpec<u32>>(&h),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn concurrent_pushes_may_reorder() {
        let h = vec![
            t(DequeOp::PushFront(1), 0, 10),
            t(DequeOp::PushFront(2), 0, 10),
            t(DequeOp::PopFront(Some(1)), 11, 12),
            t(DequeOp::PopFront(Some(2)), 13, 14),
        ];
        assert!(check_generic::<DequeSpec<u32>>(&h).is_ok());
    }

    #[test]
    fn elimination_style_front_pair_checks() {
        // Overlapping push_front / pop_front exchanging a value with
        // the deque otherwise untouched — SecDeque's elimination.
        let h = vec![
            t(DequeOp::PushBack(9), 0, 1),
            t(DequeOp::PushFront(42), 2, 10),
            t(DequeOp::PopFront(Some(42)), 3, 9),
            t(DequeOp::PopFront(Some(9)), 11, 12),
        ];
        assert!(check_generic::<DequeSpec<u32>>(&h).is_ok());
    }

    #[test]
    fn real_time_order_is_enforced() {
        let h = vec![
            t(DequeOp::PopFront(Some(5)), 0, 1),
            t(DequeOp::PushFront(5), 2, 3),
        ];
        assert_eq!(
            check_generic::<DequeSpec<u32>>(&h),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn queue_fifo_order_is_enforced() {
        let ok = vec![
            t(QueueOp::Enqueue(1), 0, 1),
            t(QueueOp::Enqueue(2), 2, 3),
            t(QueueOp::Dequeue(Some(1)), 4, 5),
            t(QueueOp::Dequeue(Some(2)), 6, 7),
            t(QueueOp::Dequeue(None), 8, 9),
        ];
        assert!(check_generic::<QueueSpec<u32>>(&ok).is_ok());

        let lifo = vec![
            t(QueueOp::Enqueue(1), 0, 1),
            t(QueueOp::Enqueue(2), 2, 3),
            t(QueueOp::Dequeue(Some(2)), 4, 5),
        ];
        assert_eq!(
            check_generic::<QueueSpec<u32>>(&lifo),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn concurrent_enqueues_may_order_either_way() {
        let h = vec![
            t(QueueOp::Enqueue(1), 0, 10),
            t(QueueOp::Enqueue(2), 0, 10),
            t(QueueOp::Dequeue(Some(2)), 11, 12),
            t(QueueOp::Dequeue(Some(1)), 13, 14),
        ];
        assert!(check_generic::<QueueSpec<u32>>(&h).is_ok());
    }

    #[test]
    fn pool_accepts_any_extraction_order() {
        let h = vec![
            t(PoolOp::Put(1), 0, 1),
            t(PoolOp::Put(2), 2, 3),
            t(PoolOp::Get(Some(1)), 4, 5), // neither LIFO nor FIFO required
            t(PoolOp::Get(Some(2)), 6, 7),
            t(PoolOp::Get(None), 8, 9),
        ];
        assert!(check_generic::<PoolSpec<u32>>(&h).is_ok());
    }

    #[test]
    fn pool_rejects_phantom_and_double_get() {
        let phantom = vec![t(PoolOp::Get(Some(7)), 0, 1)];
        assert_eq!(
            check_generic::<PoolSpec<u32>>(&phantom),
            Err(Violation::NotLinearizable)
        );

        let double = vec![
            t(PoolOp::Put(7), 0, 1),
            t(PoolOp::Get(Some(7)), 2, 3),
            t(PoolOp::Get(Some(7)), 4, 5),
        ];
        assert_eq!(
            check_generic::<PoolSpec<u32>>(&double),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn pool_rejects_empty_answer_when_nonempty() {
        // `Get(None)` completed strictly between a completed Put and
        // any Get: the pool cannot have been empty.
        let h = vec![
            t(PoolOp::Put(1), 0, 1),
            t(PoolOp::Get(None), 2, 3),
            t(PoolOp::Get(Some(1)), 4, 5),
        ];
        assert_eq!(
            check_generic::<PoolSpec<u32>>(&h),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn pool_multiset_counts_duplicates() {
        let h = vec![
            t(PoolOp::Put(5), 0, 1),
            t(PoolOp::Put(5), 2, 3),
            t(PoolOp::Get(Some(5)), 4, 5),
            t(PoolOp::Get(Some(5)), 6, 7),
            t(PoolOp::Get(None), 8, 9),
        ];
        assert!(check_generic::<PoolSpec<u32>>(&h).is_ok());
    }

    #[test]
    fn counter_observes_prefix_sums() {
        let fa = |operand, observed, i, r| t(CounterOp::FetchAdd { operand, observed }, i, r);
        let ok = vec![
            fa(3, 0, 0, 1),
            fa(5, 3, 2, 3),
            t(CounterOp::Load(8), 4, 5),
            fa(1, 8, 6, 7),
        ];
        assert!(check_generic::<CounterSpec>(&ok).is_ok());

        // A completed fetch_add must be visible to a later one.
        let stale = vec![fa(3, 0, 0, 1), fa(5, 0, 2, 3)];
        assert_eq!(
            check_generic::<CounterSpec>(&stale),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn concurrent_fetch_adds_may_order_either_way() {
        let fa = |operand, observed, i, r| t(CounterOp::FetchAdd { operand, observed }, i, r);
        // Overlapping adds: either could have gone first, but their
        // observed values must form a chain.
        let h = vec![
            fa(2, 5, 0, 10),
            fa(5, 0, 0, 10),
            t(CounterOp::Load(7), 11, 12),
        ];
        assert!(check_generic::<CounterSpec>(&h).is_ok());

        // Both observing 0 is impossible.
        let clash = vec![fa(2, 0, 0, 10), fa(5, 0, 0, 10)];
        assert_eq!(
            check_generic::<CounterSpec>(&clash),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn map_observes_the_association() {
        let h = vec![
            t(
                MapOp::Insert {
                    key: 1u32,
                    value: 10u32,
                    prev: None,
                },
                0,
                1,
            ),
            t(
                MapOp::Get {
                    key: 1,
                    observed: Some(10),
                },
                2,
                3,
            ),
            t(
                MapOp::Insert {
                    key: 1,
                    value: 11,
                    prev: Some(10),
                },
                4,
                5,
            ),
            t(
                MapOp::Remove {
                    key: 1,
                    removed: Some(11),
                },
                6,
                7,
            ),
            t(
                MapOp::Get {
                    key: 1,
                    observed: None,
                },
                8,
                9,
            ),
            t(
                MapOp::Remove {
                    key: 1,
                    removed: None,
                },
                10,
                11,
            ),
        ];
        assert!(check_generic::<MapSpec<u32, u32>>(&h).is_ok());
    }

    #[test]
    fn map_rejects_stale_get() {
        // A get completed strictly after a completed insert must see it.
        let h = vec![
            t(
                MapOp::Insert {
                    key: 1u32,
                    value: 10u32,
                    prev: None,
                },
                0,
                1,
            ),
            t(
                MapOp::Get {
                    key: 1,
                    observed: None,
                },
                2,
                3,
            ),
        ];
        assert_eq!(
            check_generic::<MapSpec<u32, u32>>(&h),
            Err(Violation::NotLinearizable)
        );
    }

    #[test]
    fn map_rejects_double_displacement() {
        // Two overlapping first-inserts cannot both observe an absent
        // key: whichever linearizes second displaces the first.
        let clash = vec![
            t(
                MapOp::Insert {
                    key: 1u32,
                    value: 10u32,
                    prev: None,
                },
                0,
                10,
            ),
            t(
                MapOp::Insert {
                    key: 1,
                    value: 20,
                    prev: None,
                },
                0,
                10,
            ),
        ];
        assert_eq!(
            check_generic::<MapSpec<u32, u32>>(&clash),
            Err(Violation::NotLinearizable)
        );

        // …but observing each other's value in either order is fine.
        let chain = vec![
            t(
                MapOp::Insert {
                    key: 1u32,
                    value: 10u32,
                    prev: None,
                },
                0,
                10,
            ),
            t(
                MapOp::Insert {
                    key: 1,
                    value: 20,
                    prev: Some(10),
                },
                0,
                10,
            ),
        ];
        assert!(check_generic::<MapSpec<u32, u32>>(&chain).is_ok());
    }

    #[test]
    fn concurrent_map_gets_may_order_around_an_insert() {
        let h = vec![
            t(
                MapOp::Insert {
                    key: 7u32,
                    value: 70u32,
                    prev: None,
                },
                0,
                10,
            ),
            t(
                MapOp::Get {
                    key: 7,
                    observed: None,
                },
                0,
                10,
            ),
            t(
                MapOp::Get {
                    key: 7,
                    observed: Some(70),
                },
                0,
                10,
            ),
        ];
        assert!(check_generic::<MapSpec<u32, u32>>(&h).is_ok());
    }

    #[test]
    fn too_large_history_is_refused() {
        let h: Vec<TimedOp<DequeOp<u32>>> = (0..129)
            .map(|i| t(DequeOp::PushBack(i), (2 * i) as u64, (2 * i + 1) as u64))
            .collect();
        assert!(matches!(
            check_generic::<DequeSpec<u32>>(&h),
            Err(Violation::TooLarge(129))
        ));
    }
}
