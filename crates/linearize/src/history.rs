//! History recording: a global logical clock plus invoke/response events.

use core::sync::atomic::{AtomicU64, Ordering};

/// A completed stack operation, as observed by the caller.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op<T> {
    /// `push(value)` (always succeeds).
    Push(T),
    /// `pop()` with its result (`None` = EMPTY).
    Pop(Option<T>),
    /// `peek()` with its result (`None` = EMPTY).
    Peek(Option<T>),
}

/// One operation's invocation/response interval.
///
/// `invoke` must be read from the [`Recorder`] *before* calling into the
/// stack and `response` *after* it returns; the operation's
/// linearization point then provably lies inside `[invoke, response]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// Id of the recording thread (only used in diagnostics).
    pub thread: usize,
    /// The operation and its observed result.
    pub op: Op<T>,
    /// Logical time just before the call.
    pub invoke: u64,
    /// Logical time just after the return.
    pub response: u64,
}

/// A shared logical clock for history recording.
///
/// # Examples
///
/// ```
/// use sec_linearize::{Event, Op, Recorder};
///
/// let rec = Recorder::new();
/// let invoke = rec.now();
/// // ... perform stack.push(7) ...
/// let response = rec.now();
/// let e = Event { thread: 0, op: Op::Push(7), invoke, response };
/// assert!(e.invoke < e.response);
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
}

impl Recorder {
    /// Creates a recorder with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ticks the logical clock and returns the new timestamp.
    ///
    /// SeqCst so that the clock order is consistent with every other
    /// synchronization in the program: if operation A returned before
    /// operation B was invoked (in real time, on any pair of threads),
    /// then A's response timestamp is smaller than B's invoke timestamp.
    pub fn now(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn clock_is_strictly_increasing() {
        let r = Recorder::new();
        let a = r.now();
        let b = r.now();
        assert!(b > a);
    }

    #[test]
    fn clock_values_are_unique_across_threads() {
        let r = Arc::new(Recorder::new());
        let vals: Vec<u64> = thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let r = Arc::clone(&r);
                    s.spawn(move || (0..1000).map(|_| r.now()).collect::<Vec<_>>())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vals.len());
    }

    #[test]
    fn event_fields_roundtrip() {
        let e = Event {
            thread: 3,
            op: Op::Pop(Some(5)),
            invoke: 1,
            response: 2,
        };
        assert_eq!(e.thread, 3);
        assert_eq!(e.op, Op::Pop(Some(5)));
    }
}
