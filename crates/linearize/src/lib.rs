//! # `sec-linearize` — stack-history recording and linearizability checking
//!
//! The SEC paper proves its stack linearizable (Appendix B). This crate
//! lets the test suite *check* that claim empirically against the
//! implementation — and against every baseline — by recording small
//! concurrent histories and searching for a valid linearization:
//!
//! * [`Recorder`] / [`Event`] — a global logical clock and the
//!   invoke/response event format,
//! * [`check_history`] — a Wing–Gong-style DFS checker specialized for
//!   the sequential stack specification (push / pop / peek, including
//!   EMPTY results), with memoization on (completed-set, stack-state),
//! * [`check_conservation`] — a linear-time sanity pass for *large*
//!   histories (no value popped twice, nothing popped before being
//!   pushed, nothing popped that was never pushed) — necessary but not
//!   sufficient for linearizability, useful where the DFS would blow up.
//!
//! The DFS checker is exponential in the worst case; keep checked
//! histories small (≲ 100 operations, ≤ 128 total, a handful of
//! threads). That is exactly the regime where linearizability bugs in
//! stack algorithms show up, because it maximizes the checker's ability
//! to consider alternative orders.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod checker;
mod history;
pub mod spec;

pub use checker::{check_conservation, check_history, Violation};
pub use history::{Event, Op, Recorder};
