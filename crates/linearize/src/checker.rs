//! The Wing–Gong-style linearizability checker for stacks.

use crate::history::{Event, Op};
use core::fmt;
use core::hash::Hash;
use std::collections::{HashMap, HashSet};

/// Why a history failed to check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The DFS exhausted every candidate order: no linearization exists.
    NotLinearizable,
    /// More operations than the checker's bitmask supports (128).
    TooLarge(usize),
    /// `check_conservation` failures carry a human-readable reason.
    Conservation(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotLinearizable => {
                write!(f, "no valid linearization of the recorded history exists")
            }
            Violation::TooLarge(n) => write!(
                f,
                "history has {n} operations; the DFS checker supports at most 128"
            ),
            Violation::Conservation(msg) => write!(f, "conservation violated: {msg}"),
        }
    }
}

impl std::error::Error for Violation {}

/// Checks that `events` has a valid linearization against the
/// sequential stack specification, starting from an empty stack.
///
/// Returns one witness linearization (indices into `events`) on
/// success.
///
/// # Examples
///
/// ```
/// use sec_linearize::{check_history, Event, Op};
///
/// // push(1) completes, then pop() returns it: trivially linearizable.
/// let h = vec![
///     Event { thread: 0, op: Op::Push(1), invoke: 0, response: 1 },
///     Event { thread: 0, op: Op::Pop(Some(1)), invoke: 2, response: 3 },
/// ];
/// assert!(check_history(&h).is_ok());
///
/// // pop() returns a value whose push started strictly later: illegal.
/// let bad = vec![
///     Event { thread: 0, op: Op::Pop(Some(1)), invoke: 0, response: 1 },
///     Event { thread: 1, op: Op::Push(1), invoke: 2, response: 3 },
/// ];
/// assert!(check_history(&bad).is_err());
/// ```
pub fn check_history<T>(events: &[Event<T>]) -> Result<Vec<usize>, Violation>
where
    T: Eq + Clone + Hash,
{
    if events.len() > 128 {
        return Err(Violation::TooLarge(events.len()));
    }
    let n = events.len();
    if n == 0 {
        return Ok(Vec::new());
    }

    // DFS over (set of linearized ops, stack state). The stack state is
    // not a function of the set (it depends on the order), so it is part
    // of the memo key.
    let all_mask: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    let mut stack: Vec<T> = Vec::new();
    let mut order: Vec<usize> = Vec::new();
    let mut visited: HashSet<(u128, Vec<T>)> = HashSet::new();

    fn dfs<T: Eq + Clone + Hash>(
        events: &[Event<T>],
        done: u128,
        all_mask: u128,
        stack: &mut Vec<T>,
        order: &mut Vec<usize>,
        visited: &mut HashSet<(u128, Vec<T>)>,
    ) -> bool {
        if done == all_mask {
            return true;
        }
        if !visited.insert((done, stack.clone())) {
            return false; // already explored this configuration
        }
        // Minimal remaining ops: e may linearize next iff no other
        // remaining op responded before e was invoked.
        let min_response = events
            .iter()
            .enumerate()
            .filter(|(i, _)| done & (1 << i) == 0)
            .map(|(_, e)| e.response)
            .min()
            .expect("non-full mask has remaining events");
        for (i, e) in events.iter().enumerate() {
            if done & (1 << i) != 0 || e.invoke > min_response {
                continue;
            }
            // Try to apply `e` to the model (each arm returns early on
            // a successful complete linearization, otherwise undoes its
            // model change and falls through to the next candidate).
            match &e.op {
                Op::Push(v) => {
                    stack.push(v.clone());
                    order.push(i);
                    if dfs(events, done | (1 << i), all_mask, stack, order, visited) {
                        return true;
                    }
                    order.pop();
                    stack.pop();
                }
                Op::Pop(expect) => match (stack.last(), expect) {
                    (Some(top), Some(v)) if top == v => {
                        let saved = stack.pop().expect("non-empty");
                        order.push(i);
                        if dfs(events, done | (1 << i), all_mask, stack, order, visited) {
                            return true;
                        }
                        order.pop();
                        stack.push(saved);
                    }
                    (None, None) => {
                        order.push(i);
                        if dfs(events, done | (1 << i), all_mask, stack, order, visited) {
                            return true;
                        }
                        order.pop();
                    }
                    _ => {}
                },
                Op::Peek(expect) => {
                    let matches = match (stack.last(), expect) {
                        (Some(top), Some(v)) => top == v,
                        (None, None) => true,
                        _ => false,
                    };
                    if matches {
                        order.push(i);
                        if dfs(events, done | (1 << i), all_mask, stack, order, visited) {
                            return true;
                        }
                        order.pop();
                    }
                }
            }
        }
        false
    }

    if dfs(events, 0, all_mask, &mut stack, &mut order, &mut visited) {
        Ok(order)
    } else {
        Err(Violation::NotLinearizable)
    }
}

/// Linear-time conservation checks for arbitrarily large histories.
///
/// Verifies (assuming *globally unique* pushed values, which the test
/// harness guarantees):
///
/// 1. no value is popped twice,
/// 2. every popped value was pushed,
/// 3. no pop *responds* before its value's push was *invoked*
///    (a real-time causality violation).
///
/// Necessary for linearizability, far from sufficient — use
/// [`check_history`] on small histories for the full property.
pub fn check_conservation<T>(events: &[Event<T>]) -> Result<(), Violation>
where
    T: Eq + Clone + Hash + fmt::Debug,
{
    let mut pushes: HashMap<&T, &Event<T>> = HashMap::new();
    for e in events {
        if let Op::Push(v) = &e.op {
            if pushes.insert(v, e).is_some() {
                return Err(Violation::Conservation(format!(
                    "value {v:?} pushed more than once — harness must push unique values"
                )));
            }
        }
    }
    let mut popped: HashSet<&T> = HashSet::new();
    for e in events {
        let v = match &e.op {
            Op::Pop(Some(v)) => v,
            _ => continue,
        };
        if !popped.insert(v) {
            return Err(Violation::Conservation(format!("value {v:?} popped twice")));
        }
        match pushes.get(v) {
            None => {
                return Err(Violation::Conservation(format!(
                    "value {v:?} popped but never pushed"
                )))
            }
            Some(push) if e.response < push.invoke => {
                return Err(Violation::Conservation(format!(
                    "pop of {v:?} responded at {} before its push was invoked at {}",
                    e.response, push.invoke
                )))
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev<T>(thread: usize, op: Op<T>, invoke: u64, response: u64) -> Event<T> {
        Event {
            thread,
            op,
            invoke,
            response,
        }
    }

    #[test]
    fn empty_history_checks() {
        let h: Vec<Event<u32>> = vec![];
        assert_eq!(check_history(&h), Ok(vec![]));
    }

    #[test]
    fn sequential_lifo_checks() {
        let h = vec![
            ev(0, Op::Push(1), 0, 1),
            ev(0, Op::Push(2), 2, 3),
            ev(0, Op::Pop(Some(2)), 4, 5),
            ev(0, Op::Pop(Some(1)), 6, 7),
            ev(0, Op::Pop(None), 8, 9),
        ];
        let order = check_history(&h).unwrap();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fifo_order_of_sequential_ops_is_rejected() {
        // Two completed pushes, then pops in FIFO order: not a stack.
        let h = vec![
            ev(0, Op::Push(1), 0, 1),
            ev(0, Op::Push(2), 2, 3),
            ev(0, Op::Pop(Some(1)), 4, 5),
            ev(0, Op::Pop(Some(2)), 6, 7),
        ];
        assert_eq!(check_history(&h), Err(Violation::NotLinearizable));
    }

    #[test]
    fn concurrent_ops_may_reorder() {
        // push(1) and push(2) overlap; pops observe 1 then 2 — legal,
        // because the pushes may linearize as 2 then 1.
        let h = vec![
            ev(0, Op::Push(1), 0, 10),
            ev(1, Op::Push(2), 0, 10),
            ev(0, Op::Pop(Some(1)), 11, 12),
            ev(1, Op::Pop(Some(2)), 13, 14),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn elimination_style_overlap_checks() {
        // A push and a pop that overlap and exchange a value while the
        // stack is (and stays) logically unchanged — SEC's elimination.
        let h = vec![
            ev(0, Op::Push(42), 0, 10),
            ev(1, Op::Pop(Some(42)), 1, 9),
            ev(2, Op::Pop(None), 11, 12),
        ];
        assert!(check_history(&h).is_ok());
    }

    #[test]
    fn pop_empty_while_stack_nonempty_everywhere_is_rejected() {
        // push(1) completed; pop(EMPTY) runs strictly later while
        // nothing removed 1: illegal.
        let h = vec![ev(0, Op::Push(1), 0, 1), ev(1, Op::Pop(None), 2, 3)];
        assert_eq!(check_history(&h), Err(Violation::NotLinearizable));
    }

    #[test]
    fn pop_of_unpushed_value_is_rejected() {
        let h = vec![ev(0, Op::Pop(Some(7)), 0, 1)];
        assert_eq!(check_history(&h), Err(Violation::NotLinearizable));
    }

    #[test]
    fn peek_must_match_some_consistent_top() {
        let good = vec![
            ev(0, Op::Push(1), 0, 1),
            ev(1, Op::Peek(Some(1)), 2, 3),
            ev(0, Op::Push(2), 4, 5),
            ev(1, Op::Peek(Some(2)), 6, 7),
        ];
        assert!(check_history(&good).is_ok());

        let bad = vec![
            ev(0, Op::Push(1), 0, 1),
            ev(0, Op::Push(2), 2, 3),
            // Strictly after both pushes, peek sees the older element
            // while 2 is still on top: illegal.
            ev(1, Op::Peek(Some(1)), 4, 5),
        ];
        assert_eq!(check_history(&bad), Err(Violation::NotLinearizable));
    }

    #[test]
    fn real_time_order_is_enforced() {
        // pop(Some(1)) fully precedes push(1): rejected even though a
        // reordering would satisfy the stack spec.
        let h = vec![ev(0, Op::Pop(Some(1)), 0, 1), ev(1, Op::Push(1), 2, 3)];
        assert_eq!(check_history(&h), Err(Violation::NotLinearizable));
    }

    #[test]
    fn too_large_history_is_refused() {
        let h: Vec<Event<u32>> = (0..129)
            .map(|i| ev(0, Op::Push(i), (2 * i) as u64, (2 * i + 1) as u64))
            .collect();
        assert!(matches!(check_history(&h), Err(Violation::TooLarge(129))));
    }

    #[test]
    fn conservation_accepts_valid_history() {
        let h = vec![
            ev(0, Op::Push(1), 0, 1),
            ev(0, Op::Push(2), 2, 3),
            ev(1, Op::Pop(Some(2)), 4, 5),
        ];
        assert!(check_conservation(&h).is_ok());
    }

    #[test]
    fn conservation_rejects_duplicate_pop() {
        let h = vec![
            ev(0, Op::Push(1), 0, 1),
            ev(1, Op::Pop(Some(1)), 2, 3),
            ev(2, Op::Pop(Some(1)), 4, 5),
        ];
        assert!(matches!(
            check_conservation(&h),
            Err(Violation::Conservation(_))
        ));
    }

    #[test]
    fn conservation_rejects_pop_before_push() {
        let h = vec![ev(0, Op::Pop(Some(9)), 0, 1), ev(1, Op::Push(9), 5, 6)];
        assert!(matches!(
            check_conservation(&h),
            Err(Violation::Conservation(_))
        ));
    }

    #[test]
    fn conservation_rejects_never_pushed() {
        let h: Vec<Event<u32>> = vec![ev(0, Op::Pop(Some(3)), 0, 1)];
        assert!(matches!(
            check_conservation(&h),
            Err(Violation::Conservation(_))
        ));
    }

    #[test]
    fn violation_display_is_informative() {
        assert!(Violation::NotLinearizable
            .to_string()
            .contains("linearization"));
        assert!(Violation::TooLarge(200).to_string().contains("200"));
    }
}
