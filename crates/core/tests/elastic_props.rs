//! Property-based tests for elastic sharding (DESIGN.md §8): the
//! contention-monitor state machine and the topology-aware shard
//! mapping.
//!
//! What is pinned down here:
//!
//! * the monitor's **window accounting is monotone** between decisions
//!   and drains exactly once per decision;
//! * the **`min_k ≤ active ≤ max_k` invariant** holds under arbitrary
//!   decision sequences (pure `decide`) and under a live stack driven
//!   with arbitrary forced resizes (integration property);
//! * the topology mapping is **total** (always `< k`), **balanced**
//!   (block balance at neighbourhood granularity), and **stable under
//!   re-mapping** (SMT siblings stay together for every `k`).

use proptest::prelude::*;
use sec_core::sec::elastic::{decide, ContentionMonitor, Direction, WindowSample};
use sec_core::{topology_shard, AggregatorPolicy, SecConfig, SecStack};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn decide_never_leaves_the_policy_bounds(
        ops in 0u64..10_000,
        batches in 0u64..2_000,
        eliminated in 0u64..10_000,
        cas_failures in 0u64..5_000,
        min_k in 1usize..4,
        spread in 0usize..4,
        offset in 0usize..4,
        max_threads in 1usize..64,
    ) {
        let max_k = min_k + spread;
        let active = (min_k + offset).min(max_k);
        let sample = WindowSample { ops, batches, eliminated, cas_failures };
        match decide(&sample, active, min_k, max_k, max_threads) {
            Some(Direction::Grow) => {
                prop_assert!(active < max_k, "grow at the ceiling");
            }
            Some(Direction::Shrink) => {
                prop_assert!(active > min_k, "shrink at the floor");
            }
            None => {}
        }
        // An empty window can never move the active set.
        if batches == 0 || ops == 0 {
            prop_assert_eq!(decide(&sample, active, min_k, max_k, max_threads), None);
        }
    }

    #[test]
    fn decide_is_a_pure_function(
        ops in 1u64..10_000,
        batches in 1u64..2_000,
        cas_failures in 0u64..5_000,
        active in 1usize..8,
        max_threads in 1usize..64,
    ) {
        let sample = WindowSample { ops, batches, eliminated: 0, cas_failures };
        let a = decide(&sample, active, 1, 8, max_threads);
        let b = decide(&sample, active, 1, 8, max_threads);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn monitor_window_accounting_is_monotone_and_drains_once(
        // (pushes, pops) pairs packed as pushes * 200 + pops — the
        // vendored proptest has no tuple strategies.
        batches in proptest::collection::vec(0u64..40_000, 1..40),
        window in 1u64..10_000,
        cas_total in 0u64..1_000,
    ) {
        let m = ContentionMonitor::new();
        let (mut ops, mut count, mut elim) = (0u64, 0u64, 0u64);
        let mut crossed = false;
        for &packed in &batches {
            let (pushes, pops) = (packed / 200, packed % 200);
            let before = m.window_totals();
            let ready = m.on_batch(pushes, pops, window);
            let after = m.window_totals();
            // Monotone: totals never decrease while accumulating.
            prop_assert!(after.0 >= before.0 && after.1 >= before.1 && after.2 >= before.2);
            if pushes + pops > 0 {
                ops += pushes + pops;
                count += 1;
                elim += 2 * pushes.min(pops);
            }
            prop_assert_eq!(after, (ops, count, elim), "model mismatch");
            if pushes + pops > 0 {
                prop_assert_eq!(ready, ops >= window, "window boundary detection");
            } else {
                // Empty batches never report readiness (they are not
                // recorded, so they cannot have crossed the boundary).
                prop_assert!(!ready, "empty batch reported a full window");
            }
            crossed = crossed || ready;
        }
        // Draining returns exactly the accumulated totals and resets.
        let s = m.take_window(cas_total);
        prop_assert_eq!((s.ops, s.batches, s.eliminated), (ops, count, elim));
        prop_assert_eq!(s.cas_failures, cas_total, "first mark diffs from zero");
        prop_assert_eq!(m.window_totals(), (0, 0, 0), "drained window restarts");
        let s2 = m.take_window(cas_total);
        prop_assert_eq!(s2.ops, 0, "second drain without batches is empty");
        prop_assert_eq!(s2.cas_failures, 0, "CAS mark advanced");
        let _ = crossed;
    }

    #[test]
    fn live_stack_active_count_respects_bounds_under_forced_resizes(
        min_k in 1usize..3,
        spread in 1usize..4,
        forces in proptest::collection::vec(0usize..10, 1..24),
    ) {
        let max_k = min_k + spread;
        let config = SecConfig::new(max_k, 4).aggregator_policy(
            AggregatorPolicy::Adaptive { min_k, max_k, window: 16 },
        );
        let stack: SecStack<u64> = SecStack::with_config(config);
        let mut h = stack.register();
        for (i, &k) in forces.iter().enumerate() {
            let now = stack.set_active_aggregators(k);
            prop_assert!((min_k..=max_k).contains(&now), "forced {k} -> {now}");
            prop_assert_eq!(now, k.clamp(min_k, max_k));
            // Interleave real operations so announcements land on the
            // re-mapped aggregators (and the monitor sees batches).
            h.push(i as u64);
            prop_assert!(h.pop().is_some());
            let observed = stack.active_aggregators();
            prop_assert!((min_k..=max_k).contains(&observed));
        }
        let r = stack.stats().report();
        prop_assert_eq!(r.eliminated + r.combined, r.ops, "accounting identity");
    }

    #[test]
    fn topology_mapping_is_total_balanced_and_stable(
        k in 1usize..6,
        n in 1usize..64,
        w in 1usize..8,
    ) {
        let groups = n.div_ceil(w);
        let mut counts = vec![0usize; k];
        for t in 0..n {
            let a = topology_shard(t, k, n, w);
            // Total: every thread maps, inside range.
            prop_assert!(a < k, "t={t} -> {a} out of {k}");
            counts[a] += 1;
            // Stable under re-mapping: all SMT siblings of t agree,
            // for this k and every other k' — a resize never splits a
            // sibling pair.
            let base = (t / w) * w;
            for kk in 1..=k {
                let here = topology_shard(t, kk, n, w);
                for s in base..(base + w).min(n) {
                    prop_assert_eq!(topology_shard(s, kk, n, w), here, "siblings split at k={}", kk);
                }
            }
        }
        // Balanced at neighbourhood granularity: block mapping hands
        // every aggregator at most ⌈M/k⌉ whole neighbourhoods.
        let max_threads_per_agg = groups.div_ceil(k) * w;
        for (a, &c) in counts.iter().enumerate() {
            prop_assert!(
                c <= max_threads_per_agg,
                "aggregator {} serves {} threads > bound {}", a, c, max_threads_per_agg
            );
        }
        // No aggregator starves while others double up (block shape):
        // when there are at least k neighbourhoods, everyone gets one.
        if groups >= k {
            prop_assert!(counts.iter().all(|&c| c > 0), "empty aggregator: {:?}", counts);
        }
    }

    #[test]
    fn per_aggregator_capacity_bounds_every_policy(
        k in 1usize..6,
        n in 1usize..48,
    ) {
        for shard in [
            sec_core::ShardPolicy::Block,
            sec_core::ShardPolicy::RoundRobin,
            sec_core::ShardPolicy::Topology,
        ] {
            let c = SecConfig::new(k, n).shard_policy(shard);
            let cap = c.per_aggregator_capacity();
            let mut counts = vec![0usize; k.max(1)];
            for t in 0..n {
                counts[c.aggregator_of(t)] += 1;
            }
            prop_assert!(
                counts.iter().all(|&x| x <= cap),
                "{:?}: counts {:?} exceed capacity {}", shard, counts, cap
            );
        }
    }
}
