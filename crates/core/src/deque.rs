//! A concurrent deque with SEC-style elimination and combining front
//! ends — the transfer the paper's conclusion claims: "the novel
//! sharded elimination and efficient combining are of independent
//! interest and can be applied to other concurrent data structures,
//! such as deques".
//!
//! Construction: a sequential `VecDeque` behind a combiner lock, plus
//! one SEC batch layer *per end*. An operation on an end announces
//! itself with a fetch&increment in that end's current batch, exactly
//! as in the stack:
//!
//! * the first announcement freezes the batch (after the aggregation
//!   backoff) and installs a fresh one;
//! * a `push_front` and a `pop_front` with the same sequence number
//!   **eliminate** through the batch's slot array (adjacent
//!   `push_front`/`pop_front` pairs cancel on a deque just as
//!   `push`/`pop` pairs cancel on a stack — and symmetrically at the
//!   back);
//! * the surviving operations (all of one type) are applied under the
//!   lock by the batch's **combiner** in sequence-number order; waiting
//!   pops receive their results through a linked result chain, the
//!   deque analogue of `PopFromStack`'s substack.
//!
//! Compared to the stack, the shared structure is lock-based rather
//! than CAS-based — the point here is the *mechanism transfer*
//! (announcement counters, freezing, slot elimination, combining), not
//! a new lock-free deque.

use crate::config::{RecyclePolicy, SecConfig, WaitPolicy};
use crate::sec::batch::{mark_applied, wait_applied, wait_ptr, Aggregator, Batch};
use crate::sec::node::Node;
use crate::sec::stats::SecStats;
use core::fmt;
use core::ptr;
use core::sync::atomic::Ordering;
use sec_reclaim::{Collector, Guard, Handle as ReclaimHandle};
use sec_sync::TtasLock;
use std::collections::VecDeque;

/// Which end an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The front of the deque.
    Front,
    /// The back of the deque.
    Back,
}

/// A blocking linearizable deque with per-end sharded elimination and
/// combining.
///
/// # Examples
///
/// ```
/// use sec_core::deque::SecDeque;
///
/// let d: SecDeque<u32> = SecDeque::new(2);
/// let mut h = d.register();
/// h.push_front(1);
/// h.push_back(2);
/// assert_eq!(h.pop_front(), Some(1));
/// assert_eq!(h.pop_back(), Some(2));
/// assert_eq!(h.pop_front(), None);
/// ```
pub struct SecDeque<T: Send + 'static> {
    inner: TtasLock<VecDeque<T>>,
    front: Aggregator<T>,
    back: Aggregator<T>,
    collector: Collector,
    config: SecConfig,
    /// Elimination-array size for every batch, cached at construction
    /// (freezers allocate one batch each; mirrors `SecStack`).
    batch_capacity: usize,
    /// Batching + park/wake instrumentation (front and back batches
    /// record alike; both ends share the counters).
    stats: SecStats,
}

unsafe impl<T: Send> Send for SecDeque<T> {}
unsafe impl<T: Send> Sync for SecDeque<T> {}

impl<T: Send + 'static> SecDeque<T> {
    /// Creates a deque for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        // One "aggregator" per end; capacity must admit every thread
        // (any thread may operate on either end).
        let config = SecConfig::new(1, max_threads);
        let cap = config.max_threads;
        Self {
            inner: TtasLock::new(VecDeque::new()),
            front: Aggregator::new(cap),
            back: Aggregator::new(cap),
            collector: Collector::with_recycle(cap, config.recycle),
            config,
            batch_capacity: cap,
            stats: SecStats::new(),
        }
    }

    /// Sets the node-recycling policy (builder style; the default is
    /// [`RecyclePolicy::per_thread`]). Must be applied before any
    /// thread registers, which the consuming receiver guarantees.
    pub fn recycle_policy(mut self, recycle: RecyclePolicy) -> Self {
        self.config.recycle = recycle;
        self.collector.set_recycle_policy(recycle);
        self
    }

    /// Sets the blocking-wait policy (builder style; the default is
    /// [`WaitPolicy::spin_then_park`] — DESIGN.md §11).
    pub fn wait_policy(mut self, wait: WaitPolicy) -> Self {
        self.config.wait = wait;
        self
    }

    /// Batching and park/wake instrumentation (both ends combined).
    pub fn stats(&self) -> &SecStats {
        &self.stats
    }

    /// Reclamation statistics (diagnostic). The recycle hit/miss/
    /// overflow counters are exact once every handle has dropped.
    pub fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.collector.stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances); see [`SecStack::quiesce_reclamation`].
    ///
    /// [`SecStack::quiesce_reclamation`]: crate::SecStack::quiesce_reclamation
    pub fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.collector.quiesce(rounds)
    }

    /// Registers the calling thread.
    ///
    /// # Panics
    ///
    /// If more threads register than the deque was constructed for.
    pub fn register(&self) -> DequeHandle<'_, T> {
        DequeHandle {
            deque: self,
            reclaim: self
                .collector
                .register()
                .expect("SecDeque: more threads registered than max_threads"),
        }
    }

    fn aggregator(&self, end: End) -> &Aggregator<T> {
        match end {
            End::Front => &self.front,
            End::Back => &self.back,
        }
    }

    /// The freeze protocol, shared verbatim with the stack.
    fn freeze_or_wait(
        &self,
        agg: &Aggregator<T>,
        batch_ptr: *mut Batch<T>,
        my_seq: u64,
        guard: &Guard<'_, '_>,
    ) {
        let batch = unsafe { &*batch_ptr };
        if my_seq == 0 && !batch.freezer_decided.swap(true, Ordering::AcqRel) {
            for _ in 0..self.config.freezer_backoff {
                core::hint::spin_loop();
            }
            for _ in 0..self.config.freezer_yields {
                std::thread::yield_now();
            }
            let pops = batch.pop_count.load(Ordering::Acquire);
            let pushes = batch.push_count.load(Ordering::Acquire);
            batch.pop_at_freeze.store(pops, Ordering::Relaxed);
            batch.push_at_freeze.store(pushes, Ordering::Relaxed);
            self.stats.record_batch(pushes, pops);
            let fresh = Batch::alloc_with(guard.handle(), self.batch_capacity);
            agg.batch.store(fresh, Ordering::Release);
            // Wake the frozen batch's registered swap-waiters (the
            // Release store above published the cut — DESIGN.md §11).
            agg.event.notify_key(batch_ptr as usize, self.stats.wait());
            unsafe { Batch::retire_with(guard, batch_ptr) };
        } else {
            agg.event.wait_until(
                batch_ptr as usize,
                self.config.wait,
                self.stats.wait(),
                || !ptr::eq(agg.batch.load(Ordering::Acquire), batch_ptr),
            );
        }
    }

    /// Combiner for a push-majority batch: apply the surviving pushes
    /// to the locked deque in sequence order.
    fn combine_pushes(&self, batch: &Batch<T>, my_seq: usize, end: End, guard: &Guard<'_, '_>) {
        let push_at_freeze = batch.push_at_freeze.load(Ordering::Acquire) as usize;
        let mut deque = self.inner.lock();
        for i in my_seq..push_at_freeze {
            // Waiting for a slot mirrors PushToStack line 38.
            let node = wait_ptr(&batch.elim[i], self.config.wait);
            // Safety: slots with i ≥ popCountAtFreeze have no
            // eliminating partner; the combiner is their unique
            // consumer. Payload out, husk recycles.
            let value = unsafe { Node::take_value(node) };
            unsafe { guard.retire_recycle(node) };
            match end {
                End::Front => deque.push_front(value),
                End::Back => deque.push_back(value),
            }
        }
    }

    /// Combiner for a pop-majority batch: remove one element per
    /// surviving pop and publish them as a result chain (the deque
    /// analogue of the substack from `PopFromStack`).
    fn combine_pops(&self, batch: &Batch<T>, my_seq: usize, end: End, guard: &Guard<'_, '_>) {
        let pop_at_freeze = batch.pop_at_freeze.load(Ordering::Acquire) as usize;
        let wanted = pop_at_freeze - my_seq;
        let mut results: Vec<*mut Node<T>> = Vec::with_capacity(wanted);
        {
            let mut deque = self.inner.lock();
            for _ in 0..wanted {
                match match end {
                    End::Front => deque.pop_front(),
                    End::Back => deque.pop_back(),
                } {
                    // Result carriers come off the combiner's recycle
                    // cache — the very husks earlier batches retired.
                    Some(v) => results.push(Node::alloc_with(guard.handle(), v)),
                    None => break, // deque exhausted: the rest get EMPTY
                }
            }
        }
        // Link results in pop order (offset i = i-th removed element).
        let mut head = ptr::null_mut();
        for &node in results.iter().rev() {
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            head = node;
        }
        batch.substack_top.store(head, Ordering::Release);
    }

    /// `GetValue` over the result chain.
    fn get_value(&self, batch: &Batch<T>, offset: usize, guard: &Guard<'_, '_>) -> Option<T> {
        let mut cur = batch.substack_top.load(Ordering::Acquire);
        for _ in 0..offset {
            if cur.is_null() {
                return None;
            }
            cur = unsafe { (*cur).next.load(Ordering::Acquire) };
        }
        if cur.is_null() {
            return None;
        }
        let value = unsafe { Node::take_value(cur) };
        unsafe { guard.retire_recycle(cur) };
        Some(value)
    }
}

impl<T: Send + 'static> Drop for SecDeque<T> {
    fn drop(&mut self) {
        for agg in [&self.front, &self.back] {
            let b = agg.batch.load(Ordering::Relaxed);
            if !b.is_null() {
                drop(unsafe { Box::from_raw(b) });
            }
        }
        // `inner` drops its values itself.
    }
}

impl<T: Send + 'static> fmt::Debug for SecDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecDeque")
            .field("max_threads", &self.config.max_threads)
            .finish()
    }
}

/// Per-thread handle to a [`SecDeque`].
pub struct DequeHandle<'a, T: Send + 'static> {
    deque: &'a SecDeque<T>,
    reclaim: ReclaimHandle<'a>,
}

impl<T: Send + 'static> DequeHandle<'_, T> {
    /// Pushes at the front.
    pub fn push_front(&mut self, value: T) {
        self.push(End::Front, value);
    }

    /// Pushes at the back.
    pub fn push_back(&mut self, value: T) {
        self.push(End::Back, value);
    }

    /// Pops from the front (`None` = empty).
    pub fn pop_front(&mut self) -> Option<T> {
        self.pop(End::Front)
    }

    /// Pops from the back (`None` = empty).
    pub fn pop_back(&mut self) -> Option<T> {
        self.pop(End::Back)
    }

    /// SEC push, retargeted at one deque end.
    fn push(&mut self, end: End, value: T) {
        let deque = self.deque;
        let agg = deque.aggregator(end);
        let node = Node::alloc_with(&self.reclaim, value);
        loop {
            let guard = self.reclaim.pin();
            let batch_ptr = agg.batch.load(Ordering::Acquire);
            let batch = unsafe { &*batch_ptr };
            let my_seq = batch.push_count.fetch_add(1, Ordering::AcqRel) as usize;
            assert!(my_seq < batch.elim.len(), "SecDeque: capacity exceeded");
            batch.elim[my_seq].store(node, Ordering::Release);

            deque.freeze_or_wait(agg, batch_ptr, my_seq as u64, &guard);

            let push_at_freeze = batch.push_at_freeze.load(Ordering::Acquire) as usize;
            if my_seq < push_at_freeze {
                let pop_at_freeze = batch.pop_at_freeze.load(Ordering::Acquire) as usize;
                if my_seq >= pop_at_freeze {
                    if my_seq == pop_at_freeze {
                        deque.combine_pushes(batch, my_seq, end, &guard);
                        mark_applied(agg, batch, batch_ptr, deque.stats.wait());
                    } else {
                        wait_applied(agg, batch, batch_ptr, deque.config.wait, deque.stats.wait());
                    }
                }
                return;
            }
        }
    }

    /// SEC pop, retargeted at one deque end.
    fn pop(&mut self, end: End) -> Option<T> {
        let deque = self.deque;
        let agg = deque.aggregator(end);
        loop {
            let guard = self.reclaim.pin();
            let batch_ptr = agg.batch.load(Ordering::Acquire);
            let batch = unsafe { &*batch_ptr };
            let my_seq = batch.pop_count.fetch_add(1, Ordering::AcqRel) as usize;
            assert!(my_seq < batch.elim.len(), "SecDeque: capacity exceeded");

            deque.freeze_or_wait(agg, batch_ptr, my_seq as u64, &guard);

            let pop_at_freeze = batch.pop_at_freeze.load(Ordering::Acquire) as usize;
            if my_seq < pop_at_freeze {
                let push_at_freeze = batch.push_at_freeze.load(Ordering::Acquire) as usize;
                if my_seq < push_at_freeze {
                    // Eliminate with the same-end push of equal seq.
                    let n = wait_ptr(&batch.elim[my_seq], deque.config.wait);
                    // Payload out, husk recycles (as in the stack's
                    // elimination path).
                    let value = unsafe { Node::take_value(n) };
                    unsafe { guard.retire_recycle(n) };
                    return Some(value);
                }
                if my_seq == push_at_freeze {
                    deque.combine_pops(batch, my_seq, end, &guard);
                    mark_applied(agg, batch, batch_ptr, deque.stats.wait());
                } else {
                    wait_applied(agg, batch, batch_ptr, deque.config.wait, deque.stats.wait());
                }
                return deque.get_value(batch, my_seq - push_at_freeze, &guard);
            }
        }
    }
}

impl<T: Send + 'static> fmt::Debug for DequeHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DequeHandle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_deque_semantics() {
        let d: SecDeque<u32> = SecDeque::new(1);
        let mut h = d.register();
        h.push_front(2);
        h.push_front(1); // [1, 2]
        h.push_back(3); // [1, 2, 3]
        assert_eq!(h.pop_front(), Some(1));
        assert_eq!(h.pop_back(), Some(3));
        assert_eq!(h.pop_back(), Some(2));
        assert_eq!(h.pop_back(), None);
        assert_eq!(h.pop_front(), None);
    }

    #[test]
    fn front_is_a_stack_back_is_a_queue_tail() {
        let d: SecDeque<u32> = SecDeque::new(1);
        let mut h = d.register();
        for i in 0..10 {
            h.push_back(i);
        }
        for i in 0..10 {
            assert_eq!(h.pop_front(), Some(i), "FIFO via opposite ends");
        }
        for i in 0..10 {
            h.push_front(i);
        }
        for i in (0..10).rev() {
            assert_eq!(h.pop_front(), Some(i), "LIFO via the same end");
        }
    }

    #[test]
    fn vecdeque_model_equivalence_single_thread() {
        let d: SecDeque<u64> = SecDeque::new(1);
        let mut h = d.register();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut x = 0x1234_5678_u64 | 1;
        for i in 0..2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match x % 4 {
                0 => {
                    h.push_front(i);
                    model.push_front(i);
                }
                1 => {
                    h.push_back(i);
                    model.push_back(i);
                }
                2 => assert_eq!(h.pop_front(), model.pop_front(), "op {i}"),
                _ => assert_eq!(h.pop_back(), model.pop_back(), "op {i}"),
            }
        }
        while let Some(expect) = model.pop_front() {
            assert_eq!(h.pop_front(), Some(expect));
        }
        assert_eq!(h.pop_front(), None);
    }

    #[test]
    fn concurrent_conservation_both_ends() {
        const THREADS: usize = 8;
        const PER: usize = 800;
        let d: SecDeque<u64> = SecDeque::new(THREADS + 1);
        let got: Vec<Vec<u64>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let d = &d;
                    scope.spawn(move || {
                        let mut h = d.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            let v = (t * PER + i) as u64;
                            match (t + i) % 4 {
                                0 => h.push_front(v),
                                1 => h.push_back(v),
                                2 => {
                                    if let Some(x) = h.pop_front() {
                                        got.push(x);
                                    }
                                }
                                _ => {
                                    if let Some(x) = h.pop_back() {
                                        got.push(x);
                                    }
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen: HashSet<u64> = HashSet::new();
        let mut popped = 0usize;
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v), "duplicate {v}");
            popped += 1;
        }
        let mut h = d.register();
        let mut remaining = 0usize;
        while let Some(v) = h.pop_front() {
            assert!(seen.insert(v), "duplicate {v} in drain");
            remaining += 1;
        }
        // Pushes: pattern slots 0 and 1 of every window of 4.
        let pushed: usize = (0..THREADS)
            .map(|t| (0..PER).filter(|i| (t + i) % 4 < 2).count())
            .sum();
        assert_eq!(popped + remaining, pushed, "values conserved");
    }

    #[test]
    fn values_drop_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let d: SecDeque<P> = SecDeque::new(4);
            thread::scope(|scope| {
                for t in 0..4usize {
                    let d = &d;
                    let drops = &drops;
                    scope.spawn(move || {
                        let mut h = d.register();
                        for i in 0..400usize {
                            match (t + i) % 3 {
                                0 => h.push_front(P(Arc::clone(drops))),
                                1 => h.push_back(P(Arc::clone(drops))),
                                _ => drop(h.pop_back()),
                            }
                        }
                    });
                }
            });
        }
        let pushed: usize = (0..4)
            .map(|t| (0..400).filter(|i| (t + i) % 3 < 2).count())
            .sum();
        assert_eq!(drops.load(AOrd::Relaxed), pushed);
    }

    #[test]
    fn oversubscribed_mixed_ends() {
        const THREADS: usize = 12;
        let d: SecDeque<u64> = SecDeque::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let d = &d;
                scope.spawn(move || {
                    let mut h = d.register();
                    let mut x = (t as u64) | 1;
                    for i in 0..300u64 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        match x % 4 {
                            0 => h.push_front(i),
                            1 => h.push_back(i),
                            2 => {
                                h.pop_front();
                            }
                            _ => {
                                h.pop_back();
                            }
                        }
                    }
                });
            }
        });
    }
}
