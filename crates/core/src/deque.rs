//! A concurrent deque with SEC-style elimination and combining front
//! ends — the transfer the paper's conclusion claims: "the novel
//! sharded elimination and efficient combining are of independent
//! interest and can be applied to other concurrent data structures,
//! such as deques".
//!
//! Construction: a sequential `VecDeque` behind a combiner lock, plus
//! one SEC batch layer *per end* — two fixed aggregators of the
//! combining engine (`crate::combine`, DESIGN.md §12), addressed by
//! end rather than by thread id:
//!
//! * the first announcement freezes the batch (after the aggregation
//!   backoff) and installs a fresh one — the engine's freezer election;
//! * a `push_front` and a `pop_front` with the same sequence number
//!   **eliminate** through the batch's slot array (adjacent
//!   `push_front`/`pop_front` pairs cancel on a deque just as
//!   `push`/`pop` pairs cancel on a stack — and symmetrically at the
//!   back);
//! * the surviving operations (all of one type) are applied under the
//!   lock by the batch's **combiner** in sequence-number order; waiting
//!   pops receive their results through a linked result chain, the
//!   deque analogue of `PopFromStack`'s substack.
//!
//! Compared to the stack, the shared structure is lock-based rather
//! than CAS-based — the point here is the *mechanism transfer*
//! (announcement counters, freezing, slot elimination, combining), not
//! a new lock-free deque. Everything protocol-shaped lives in the
//! engine; this file is the apply logic: push/pop under the lock and
//! the result chain.

use crate::combine::{wait_ptr, AggLayout, CombineBatch, CombineEngine, CombineOp, Lane, Role};
use crate::config::{RecyclePolicy, SecConfig, WaitPolicy};
use crate::sec::node::Node;
use crate::sec::stats::SecStats;
use core::fmt;
use core::ptr;
use core::sync::atomic::Ordering;
use sec_reclaim::{Guard, Handle as ReclaimHandle};
use sec_sync::TtasLock;
use std::collections::VecDeque;

/// Which end an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The front of the deque.
    Front,
    /// The back of the deque.
    Back,
}

impl End {
    /// The engine aggregator this end announces to (0 = front,
    /// 1 = back — the order of the engine's fixed layout below).
    fn agg_idx(self) -> usize {
        match self {
            End::Front => 0,
            End::Back => 1,
        }
    }

    fn from_agg_idx(agg_idx: usize) -> Self {
        match agg_idx {
            0 => End::Front,
            _ => End::Back,
        }
    }
}

/// The deque's apply logic: a locked `VecDeque`, applied per end in
/// sequence-number order. The aggregator index tells the combiner
/// which end's batch it is applying.
struct DequeOp<T: Send + 'static> {
    inner: TtasLock<VecDeque<T>>,
}

impl<T: Send + 'static> CombineOp for DequeOp<T> {
    type Node = Node<T>;
    type Value = T;

    /// Combiner for a push-majority batch: apply the surviving pushes
    /// to the locked deque in sequence order.
    fn combine_add(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) {
        let end = End::from_agg_idx(agg_idx);
        let add_at_freeze = batch.frozen_cut(Role::Add);
        let mut deque = self.inner.lock();
        for i in my_seq..add_at_freeze {
            // Waiting for a slot mirrors PushToStack line 38.
            let node = wait_ptr(&batch.slots[i], eng.config().wait);
            // Safety: slots with i ≥ popCountAtFreeze have no
            // eliminating partner; the combiner is their unique
            // consumer. Payload out, husk recycles.
            let value = unsafe { Node::take_value(node) };
            unsafe { guard.retire_recycle(node) };
            match end {
                End::Front => deque.push_front(value),
                End::Back => deque.push_back(value),
            }
        }
    }

    /// Combiner for a pop-majority batch: remove one element per
    /// surviving pop and publish them as a result chain (the deque
    /// analogue of the substack from `PopFromStack`).
    fn combine_remove(
        &self,
        _eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) {
        let end = End::from_agg_idx(agg_idx);
        let remove_at_freeze = batch.frozen_cut(Role::Remove);
        let wanted = remove_at_freeze - my_seq;
        let mut results: Vec<*mut Node<T>> = Vec::with_capacity(wanted);
        {
            let mut deque = self.inner.lock();
            for _ in 0..wanted {
                match match end {
                    End::Front => deque.pop_front(),
                    End::Back => deque.pop_back(),
                } {
                    // Result carriers come off the combiner's recycle
                    // cache — the very husks earlier batches retired.
                    Some(v) => results.push(Node::alloc_with(guard.handle(), v)),
                    None => break, // deque exhausted: the rest get EMPTY
                }
            }
        }
        // Link results in pop order (offset i = i-th removed element).
        let mut head = ptr::null_mut();
        for &node in results.iter().rev() {
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            head = node;
        }
        batch.result_head.store(head, Ordering::Release);
    }

    /// Eliminate with the same-end push of equal sequence number.
    fn eliminate(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        guard: &Guard<'_, '_>,
    ) -> T {
        let n = wait_ptr(&batch.slots[my_seq], eng.config().wait);
        // Payload out, husk recycles (as in the stack's elimination
        // path).
        let value = unsafe { Node::take_value(n) };
        unsafe { guard.retire_recycle(n) };
        value
    }

    /// `GetValue` over the (null-terminated) result chain.
    fn take_result(
        &self,
        _eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        offset: usize,
        _agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) -> Option<T> {
        let mut cur = batch.result_head.load(Ordering::Acquire);
        for _ in 0..offset {
            if cur.is_null() {
                return None;
            }
            cur = unsafe { (*cur).next.load(Ordering::Acquire) };
        }
        if cur.is_null() {
            return None;
        }
        let value = unsafe { Node::take_value(cur) };
        unsafe { guard.retire_recycle(cur) };
        Some(value)
    }
}

/// A blocking linearizable deque with per-end sharded elimination and
/// combining.
///
/// # Examples
///
/// ```
/// use sec_core::deque::SecDeque;
///
/// let d: SecDeque<u32> = SecDeque::new(2);
/// let mut h = d.register();
/// h.push_front(1);
/// h.push_back(2);
/// assert_eq!(h.pop_front(), Some(1));
/// assert_eq!(h.pop_back(), Some(2));
/// assert_eq!(h.pop_front(), None);
/// ```
pub struct SecDeque<T: Send + 'static> {
    engine: CombineEngine<DequeOp<T>>,
}

impl<T: Send + 'static> SecDeque<T> {
    /// Creates a deque for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        // One engine aggregator per end; batch capacity must admit
        // every thread (any thread may operate on either end), which
        // the k = 1 configuration guarantees.
        Self {
            engine: CombineEngine::new(
                "SecDeque",
                DequeOp {
                    inner: TtasLock::new(VecDeque::new()),
                },
                SecConfig::new(1, max_threads),
                AggLayout::Fixed {
                    ends: &[true, true],
                    bulk: 0,
                },
            ),
        }
    }

    /// Sets the node-recycling policy (builder style; the default is
    /// [`RecyclePolicy::per_thread`]). Must be applied before any
    /// thread registers, which the consuming receiver guarantees.
    pub fn recycle_policy(mut self, recycle: RecyclePolicy) -> Self {
        self.engine.set_recycle_policy(recycle);
        self
    }

    /// Sets the blocking-wait policy (builder style; the default is
    /// [`WaitPolicy::spin_then_park`] — DESIGN.md §11).
    pub fn wait_policy(mut self, wait: WaitPolicy) -> Self {
        self.engine.config_mut().wait = wait;
        self
    }

    /// Batching and park/wake instrumentation (both ends combined).
    pub fn stats(&self) -> &SecStats {
        self.engine.stats()
    }

    /// Reclamation statistics (diagnostic). The recycle hit/miss/
    /// overflow counters are exact once every handle has dropped.
    pub fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.engine.reclaim_stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances); see [`SecStack::quiesce_reclamation`].
    ///
    /// [`SecStack::quiesce_reclamation`]: crate::SecStack::quiesce_reclamation
    pub fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.engine.quiesce_reclamation(rounds)
    }

    /// A point-in-time poll of the deque's protocol counters (see
    /// [`SecStack::trace_snapshot`](crate::SecStack::trace_snapshot)).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.engine.trace_snapshot()
    }

    /// The sec-trace recorder, when configured under the `trace` cargo
    /// feature (see [`SecStack::tracer`](crate::SecStack::tracer)).
    pub fn tracer(&self) -> Option<&crate::TraceRecorder> {
        self.engine.tracer()
    }

    /// Registers the calling thread.
    ///
    /// # Panics
    ///
    /// If more threads register than the deque was constructed for.
    pub fn register(&self) -> DequeHandle<'_, T> {
        let (reclaim, _state) = self.engine.register();
        DequeHandle {
            deque: self,
            reclaim,
        }
    }
}

impl<T: Send + 'static> fmt::Debug for SecDeque<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecDeque")
            .field("max_threads", &self.engine.config().max_threads)
            .finish()
    }
}

/// Per-thread handle to a [`SecDeque`].
pub struct DequeHandle<'a, T: Send + 'static> {
    deque: &'a SecDeque<T>,
    reclaim: ReclaimHandle<'a>,
}

impl<T: Send + 'static> DequeHandle<'_, T> {
    /// A point-in-time poll of the deque's protocol counters (see
    /// [`SecDeque::trace_snapshot`]).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.deque.trace_snapshot()
    }

    /// Pushes at the front.
    pub fn push_front(&mut self, value: T) {
        self.push(End::Front, value);
    }

    /// Pushes at the back.
    pub fn push_back(&mut self, value: T) {
        self.push(End::Back, value);
    }

    /// Pops from the front (`None` = empty).
    pub fn pop_front(&mut self) -> Option<T> {
        self.pop(End::Front)
    }

    /// Pops from the back (`None` = empty).
    pub fn pop_back(&mut self) -> Option<T> {
        self.pop(End::Back)
    }

    /// SEC push, retargeted at one deque end.
    fn push(&mut self, end: End, value: T) {
        let node = Node::alloc_with(&self.reclaim, value);
        self.deque
            .engine
            .run(Lane::At(end.agg_idx()), Role::Add, node, &self.reclaim);
    }

    /// SEC pop, retargeted at one deque end.
    fn pop(&mut self, end: End) -> Option<T> {
        self.deque.engine.run(
            Lane::At(end.agg_idx()),
            Role::Remove,
            ptr::null_mut(),
            &self.reclaim,
        )
    }
}

impl<T: Send + 'static> fmt::Debug for DequeHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DequeHandle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn sequential_deque_semantics() {
        let d: SecDeque<u32> = SecDeque::new(1);
        let mut h = d.register();
        h.push_front(2);
        h.push_front(1); // [1, 2]
        h.push_back(3); // [1, 2, 3]
        assert_eq!(h.pop_front(), Some(1));
        assert_eq!(h.pop_back(), Some(3));
        assert_eq!(h.pop_back(), Some(2));
        assert_eq!(h.pop_back(), None);
        assert_eq!(h.pop_front(), None);
    }

    #[test]
    fn front_is_a_stack_back_is_a_queue_tail() {
        let d: SecDeque<u32> = SecDeque::new(1);
        let mut h = d.register();
        for i in 0..10 {
            h.push_back(i);
        }
        for i in 0..10 {
            assert_eq!(h.pop_front(), Some(i), "FIFO via opposite ends");
        }
        for i in 0..10 {
            h.push_front(i);
        }
        for i in (0..10).rev() {
            assert_eq!(h.pop_front(), Some(i), "LIFO via the same end");
        }
    }

    #[test]
    fn vecdeque_model_equivalence_single_thread() {
        let d: SecDeque<u64> = SecDeque::new(1);
        let mut h = d.register();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut x = 0x1234_5678_u64 | 1;
        for i in 0..2_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match x % 4 {
                0 => {
                    h.push_front(i);
                    model.push_front(i);
                }
                1 => {
                    h.push_back(i);
                    model.push_back(i);
                }
                2 => assert_eq!(h.pop_front(), model.pop_front(), "op {i}"),
                _ => assert_eq!(h.pop_back(), model.pop_back(), "op {i}"),
            }
        }
        while let Some(expect) = model.pop_front() {
            assert_eq!(h.pop_front(), Some(expect));
        }
        assert_eq!(h.pop_front(), None);
    }

    #[test]
    fn concurrent_conservation_both_ends() {
        const THREADS: usize = 8;
        const PER: usize = 800;
        let d: SecDeque<u64> = SecDeque::new(THREADS + 1);
        let got: Vec<Vec<u64>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let d = &d;
                    scope.spawn(move || {
                        let mut h = d.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            let v = (t * PER + i) as u64;
                            match (t + i) % 4 {
                                0 => h.push_front(v),
                                1 => h.push_back(v),
                                2 => {
                                    if let Some(x) = h.pop_front() {
                                        got.push(x);
                                    }
                                }
                                _ => {
                                    if let Some(x) = h.pop_back() {
                                        got.push(x);
                                    }
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen: HashSet<u64> = HashSet::new();
        let mut popped = 0usize;
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v), "duplicate {v}");
            popped += 1;
        }
        let mut h = d.register();
        let mut remaining = 0usize;
        while let Some(v) = h.pop_front() {
            assert!(seen.insert(v), "duplicate {v} in drain");
            remaining += 1;
        }
        // Pushes: pattern slots 0 and 1 of every window of 4.
        let pushed: usize = (0..THREADS)
            .map(|t| (0..PER).filter(|i| (t + i) % 4 < 2).count())
            .sum();
        assert_eq!(popped + remaining, pushed, "values conserved");
    }

    #[test]
    fn values_drop_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let d: SecDeque<P> = SecDeque::new(4);
            thread::scope(|scope| {
                for t in 0..4usize {
                    let d = &d;
                    let drops = &drops;
                    scope.spawn(move || {
                        let mut h = d.register();
                        for i in 0..400usize {
                            match (t + i) % 3 {
                                0 => h.push_front(P(Arc::clone(drops))),
                                1 => h.push_back(P(Arc::clone(drops))),
                                _ => drop(h.pop_back()),
                            }
                        }
                    });
                }
            });
        }
        let pushed: usize = (0..4)
            .map(|t| (0..400).filter(|i| (t + i) % 3 < 2).count())
            .sum();
        assert_eq!(drops.load(AOrd::Relaxed), pushed);
    }

    #[test]
    fn oversubscribed_mixed_ends() {
        const THREADS: usize = 12;
        let d: SecDeque<u64> = SecDeque::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let d = &d;
                scope.spawn(move || {
                    let mut h = d.register();
                    let mut x = (t as u64) | 1;
                    for i in 0..300u64 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        match x % 4 {
                            0 => h.push_front(i),
                            1 => h.push_back(i),
                            2 => {
                                h.pop_front();
                            }
                            _ => {
                                h.pop_back();
                            }
                        }
                    }
                });
            }
        });
    }
}
