//! A batched-combining hash map — the SEC engine applied to the keyed
//! workloads that million-user services actually hammer (YCSB-style
//! get/insert/remove over a skewed key space).
//!
//! Layout (DESIGN.md §13): a fixed array of **buckets** (each a small
//! mutex-protected association list) is block-partitioned into
//! **shards**, one engine aggregator per shard. An operation hashes its
//! key to a bucket, routes to the bucket's shard under the *current*
//! active shard count, and announces into that shard's batch exactly
//! like a stack pop does (`Lane::At`, the queue's fixed-index path).
//! The batch freezes; the seq-0 announcer combines: it walks the slot
//! array in announcement order and, for each operation, locks the
//! target bucket, applies the command, and writes the result back into
//! the announcement node. `get` therefore returns the value snapshot at
//! its own application under the bucket lock — the batch's operations
//! linearize consecutively, in slot order, at those bucket-lock
//! applications.
//!
//! All three operations are result-bearing, so the whole family rides
//! the **remove** lane: the add lane stays pinned at zero, elimination
//! is vacuously absent and the combiner election picks exactly sequence
//! number zero, the same degeneration the counter uses. No freezing,
//! parking, elastic re-mapping or recycling code appears here — all of
//! it is inherited from `crate::combine` (DESIGN.md §12).
//!
//! Two map-specific wrinkles, both outside the protocol:
//!
//! * **Batches are always sized `max_threads`.** Thread-mapped families
//!   bound a batch by the threads sharded onto its aggregator; a keyed
//!   map cannot — a hot key legally routes *every* thread into one
//!   shard. [`SecMap::with_config`] therefore normalizes a fixed-`K`
//!   policy into the degenerate adaptive range `[K, K]` (same active
//!   count forever, `max_threads`-sized batches).
//! * **Buckets are individually locked.** Successive batches of the
//!   same shard may combine concurrently (the freezer installs the
//!   fresh batch before the previous combiner finishes), and during an
//!   elastic re-shard two shards can transiently route operations for
//!   the same bucket. The per-bucket mutex serializes exactly those
//!   overlaps; in steady state each bucket belongs to one shard whose
//!   combiners run one batch at a time, so the lock is uncontended.

use crate::combine::durable::{
    self, fault, fault::FaultPoint, opcode, DurableCore, DurableError, DurablePolicy, DurableReq,
    DurableStats, Family, OpResult, RecoveryReport,
};
use crate::combine::{AggLayout, CombineBatch, CombineEngine, CombineOp, Lane, OpState, Role};
use crate::config::{AggregatorPolicy, SecConfig};
use crate::sec::stats::SecStats;
use crate::traits::{ConcurrentMap, MapHandle};
use core::fmt;
use core::hash::{Hash, Hasher};
use core::mem::ManuallyDrop;
use core::sync::atomic::Ordering;
use sec_reclaim::{Guard, Handle as ReclaimHandle};
use std::collections::hash_map::DefaultHasher;
use std::sync::Mutex;

/// Default bucket-array size (see [`SecMap::bucket_count`]).
const DEFAULT_BUCKETS: usize = 512;

/// One announced map operation, owned by its node until the combiner
/// consumes it.
///
/// The bulk variants carry raw pointers into the announcing thread's
/// frame instead of owned payloads: the announcer blocks until
/// `applied`, so the slices are live for the combiner's whole walk, and
/// one announcement (one sequence number, one slot) then covers the
/// entire slice of operations.
enum MapCmd<K, V> {
    /// `get(key)`.
    Get(K),
    /// `insert(key, value)`.
    Insert(K, V),
    /// `remove(key)`.
    Remove(K),
    /// `get_many(keys)`: one lookup per key, results written through
    /// `results` (same length).
    GetMany {
        /// The caller's key slice.
        keys: *const K,
        /// The caller's result slice (old contents dropped in place).
        results: *mut Option<V>,
        len: usize,
    },
    /// `insert_many(entries)`: entries are *moved* out of the caller's
    /// buffer (the caller forgets them afterwards), previous mappings
    /// written through `prevs` (same length).
    InsertMany {
        /// The caller's entry buffer; each element is `ptr::read` once.
        entries: *const (K, V),
        /// The caller's previous-mapping slice.
        prevs: *mut Option<V>,
        len: usize,
    },
}

/// A map announcement node: the command in, the result out, through the
/// same slot. `cmd` and `result` are `ManuallyDrop` because ownership
/// moves through raw pointers (combiner consumes `cmd`, the announcer
/// consumes `result`) before the node husk is recycled without running
/// a destructor.
struct MapNode<K, V> {
    /// The target bucket, computed once by the announcing thread so the
    /// combiner never re-hashes.
    bucket: usize,
    cmd: ManuallyDrop<MapCmd<K, V>>,
    result: ManuallyDrop<Option<V>>,
}

impl<K: Send, V: Send> MapNode<K, V> {
    /// Allocates a detached node carrying `cmd`, reusing a recycled
    /// block from `reclaim`'s free lists when one is available.
    fn alloc_with(reclaim: &ReclaimHandle<'_>, bucket: usize, cmd: MapCmd<K, V>) -> *mut Self {
        reclaim.alloc_boxed(MapNode {
            bucket,
            cmd: ManuallyDrop::new(cmd),
            result: ManuallyDrop::new(None),
        })
    }
}

// Safety: the raw pointers of the bulk `MapCmd` variants point into the
// announcing thread's frame, which outlives the batch (the announcer
// blocks until `applied`); the combiner is their unique accessor while
// the batch is live, per the engine's exactly-once discipline. The
// owned variants are Send whenever K and V are.
unsafe impl<K: Send, V: Send> Send for MapNode<K, V> {}

/// The map's apply logic: the bucket array, one combiner per frozen
/// batch.
struct MapOp<K, V> {
    /// `buckets[i]` holds the live `(key, value)` pairs whose key
    /// hashes to `i`. Individually locked — see the module docs for why
    /// a shard cannot simply own its buckets unlocked.
    buckets: Box<[Bucket<K, V>]>,
    /// Redo log + intent cells when built durable (DESIGN.md §16);
    /// when set, every operation routes through the dedicated durable
    /// aggregators at `bulk_agg(DUR_BASE..)`.
    durable: Option<DurableCore>,
}

/// Bulk-aggregator index of the first durable shard (the map has no
/// other bulk aggregators — its bulk ops ride weighted announcements
/// on the mapped shards).
const DUR_BASE: usize = 0;

/// One association-list bucket: the live `(key, value)` pairs under
/// their per-bucket lock.
type Bucket<K, V> = Mutex<Vec<(K, V)>>;

impl<K: Hash + Eq, V> MapOp<K, V> {
    fn with_buckets(n: usize) -> Self {
        Self {
            buckets: (0..n.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            durable: None,
        }
    }

    /// The bucket `key` hashes to. [`DefaultHasher::new`] is
    /// deterministic, so every handle of every instance agrees.
    fn bucket_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.buckets.len()
    }

    /// Applies one command under its bucket's lock — the operation's
    /// linearization point.
    fn apply(&self, bucket: usize, cmd: MapCmd<K, V>) -> Option<V>
    where
        V: Clone,
    {
        let mut pairs = self.buckets[bucket].lock().unwrap();
        match cmd {
            MapCmd::Get(key) => pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.clone()),
            MapCmd::Insert(key, value) => match pairs.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => Some(core::mem::replace(v, value)),
                None => {
                    pairs.push((key, value));
                    None
                }
            },
            MapCmd::Remove(key) => pairs
                .iter()
                .position(|(k, _)| *k == key)
                .map(|i| pairs.swap_remove(i).1),
            // Bulk commands are decomposed by the combiner before
            // `apply` is reached (each constituent lookup/insert takes
            // its own bucket's lock).
            MapCmd::GetMany { .. } | MapCmd::InsertMany { .. } => {
                unreachable!("bulk commands never reach apply")
            }
        }
    }
}

impl<K, V> MapOp<K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// The durable combiner: applies each frozen get/insert/remove
    /// under its bucket lock and redo-logs the batch under the core's
    /// apply lock. On a durable map *every* operation routes here, so
    /// the apply lock serializes all bucket mutations and log order
    /// equals application order — the property replay relies on.
    fn combine_durable(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<MapNode<K, V>>,
        my_seq: usize,
        shard: usize,
        d: &DurableCore,
    ) {
        let cut = batch.frozen_cut(Role::Remove);
        let reqs = durable::frozen_reqs(batch, my_seq, cut, eng.config().wait);
        // Safety: every pointer was announced into this frozen batch
        // and its owner blocks until `applied`.
        unsafe {
            d.combine_batch(shard, &reqs, |req| {
                let key: K = durable::from_word(req.operand);
                let bucket = self.bucket_of(&key);
                let cmd = match req.opcode {
                    opcode::MAP_GET => MapCmd::Get(key),
                    opcode::MAP_INSERT => MapCmd::Insert(key, durable::from_word(req.operand2)),
                    opcode::MAP_REMOVE => MapCmd::Remove(key),
                    other => unreachable!("map durable opcode {other}"),
                };
                req.set_result(match self.apply(bucket, cmd) {
                    None => OpResult::Empty,
                    Some(v) => OpResult::Value(durable::to_word(v)),
                });
            });
        }
    }
}

impl<K, V> CombineOp for MapOp<K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    type Node = MapNode<K, V>;
    type Value = Option<V>;

    // `combine_add` and `eliminate` keep their defaults: every map
    // operation is result-bearing, so the add lane of a map batch is
    // always empty and the engine never calls them.

    /// Apply the frozen batch in announcement order: for each slot,
    /// consume the command, apply it under its bucket's lock, and write
    /// the result back into the node in place. Exclusive node access is
    /// the counter's argument: the owners only read their slots back
    /// after observing `applied` (Release-published by the engine right
    /// after this returns), and slot `i` belongs to exactly one
    /// operation.
    fn combine_remove(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<MapNode<K, V>>,
        my_seq: usize,
        agg_idx: usize,
        _guard: &Guard<'_, '_>,
    ) {
        if let Some(d) = &self.durable {
            if agg_idx >= eng.bulk_agg(DUR_BASE) {
                let shard = agg_idx - eng.bulk_agg(DUR_BASE);
                return self.combine_durable(eng, batch, my_seq, shard, d);
            }
        }
        let cut = batch.frozen_cut(Role::Remove);
        for slot in &batch.slots[my_seq..cut] {
            let n = crate::combine::wait_ptr(slot, eng.config().wait);
            // Safety: the combiner is the unique consumer of each
            // included slot's command; the node stays allocated (owner
            // is pinned, waiting on `applied`).
            let cmd = unsafe { ManuallyDrop::take(&mut (*n).cmd) };
            match cmd {
                MapCmd::GetMany { keys, results, len } => {
                    // Safety (both bulk arms): the slices live in the
                    // announcer's frame, which blocks until `applied`;
                    // result assignment (not `write`) drops whatever
                    // the caller's slice previously held.
                    for i in 0..len {
                        let key = unsafe { &*keys.add(i) };
                        let r = {
                            let pairs = self.buckets[self.bucket_of(key)].lock().unwrap();
                            pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
                        };
                        unsafe { *results.add(i) = r };
                    }
                }
                MapCmd::InsertMany {
                    entries,
                    prevs,
                    len,
                } => {
                    for i in 0..len {
                        // Safety: each entry is moved out exactly once;
                        // the caller truncates its buffer afterwards
                        // without dropping the moved-from elements.
                        let (key, value) = unsafe { entries.add(i).read() };
                        let bucket = self.bucket_of(&key);
                        let r = self.apply(bucket, MapCmd::Insert(key, value));
                        unsafe { *prevs.add(i) = r };
                    }
                }
                cmd => {
                    let result = self.apply(unsafe { (*n).bucket }, cmd);
                    // Safety: same exclusive access; the old `result`
                    // is the construction-time `None`, which owns
                    // nothing.
                    unsafe { (*n).result = ManuallyDrop::new(result) };
                    continue;
                }
            }
            // Bulk results went through the request's slices; the node
            // keeps its construction-time `None` for `take_result`.
        }
    }

    /// Each participant (combiner included) collects its result from
    /// its own slot. The add lane is empty, so the engine's `offset` is
    /// the operation's own sequence number.
    fn take_result(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<MapNode<K, V>>,
        offset: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) -> Option<Option<V>> {
        if self.durable.is_some() && agg_idx >= eng.bulk_agg(DUR_BASE) {
            // Durable requests carry their results in the request
            // struct. The hook is the harness's mid-publish crash
            // point (results committed, not all consumed yet).
            fault::hit(FaultPoint::MidPublish);
            return None;
        }
        let n = batch.slots[offset].load(Ordering::Acquire);
        debug_assert!(
            !n.is_null(),
            "command published before announcing completed"
        );
        // Safety: unique consumer of our own slot; result out, husk
        // recycles into this thread's node cache. The command was
        // consumed by the combiner, so the husk owns nothing.
        let result = unsafe { ManuallyDrop::take(&mut (*n).result) };
        unsafe { guard.retire_recycle(n) };
        Some(result)
    }
}

/// A linearizable batched-combining hash map.
///
/// `n` threads hammering a hot key induce one bucket-lock acquisition
/// *per frozen batch* on that key's shard instead of a contended lock
/// or CAS per operation; everything else is cache-local slot traffic
/// inside the shard's aggregator. Under an adaptive policy the
/// contention monitor re-shards the bucket space at runtime, exactly as
/// it re-shards the stack's thread space (DESIGN.md §8).
///
/// # Examples
///
/// ```
/// use sec_core::SecMap;
///
/// let map: SecMap<u64, u64> = SecMap::new(4); // up to 4 threads
/// let mut h = map.register();
/// assert_eq!(h.insert(7, 70), None);
/// assert_eq!(h.get(&7), Some(70));
/// assert_eq!(h.remove(&7), Some(70));
/// assert_eq!(h.get(&7), None);
/// ```
pub struct SecMap<K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    engine: CombineEngine<MapOp<K, V>>,
}

impl<K, V> SecMap<K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Creates a map with the paper's default configuration (two
    /// shards) for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(SecConfig::new(2, max_threads))
    }

    /// Creates a map from an explicit [`SecConfig`] — shard count,
    /// elastic policy, freezer backoff, recycle and wait policies all
    /// apply exactly as they do to the stack, with one normalization: a
    /// [`AggregatorPolicy::Fixed`]`(K)` policy becomes the degenerate
    /// adaptive range `[K, K]`. Keyed routing lets a hot key send every
    /// thread into one shard, so map batches must always be sized
    /// `max_threads` — which is the adaptive capacity rule; the
    /// degenerate range can never actually resize.
    pub fn with_config(config: SecConfig) -> Self {
        Self::build(config, DEFAULT_BUCKETS, None)
    }

    fn build(config: SecConfig, buckets: usize, durable: Option<DurableCore>) -> Self {
        let config = match config.policy {
            AggregatorPolicy::Fixed(_) => {
                let k = config.aggregators.max(1);
                config.aggregator_policy(AggregatorPolicy::Adaptive {
                    min_k: k,
                    max_k: k,
                    window: AggregatorPolicy::DEFAULT_WINDOW,
                })
            }
            AggregatorPolicy::Adaptive { .. } => config,
        };
        let shards = durable.as_ref().map_or(0, |d| d.shards());
        let mut op = MapOp::with_buckets(buckets);
        op.durable = durable;
        Self {
            engine: CombineEngine::new(
                "SecMap",
                op,
                config,
                // Durable shards (if any) are the whole bulk suffix.
                AggLayout::Mapped {
                    with_slots: true,
                    bulk: shards,
                },
            ),
        }
    }

    /// Sets the bucket-array size (builder style; apply before any
    /// thread registers, which the receiver guarantees). More buckets
    /// mean shorter association lists and finer re-sharding granularity;
    /// the default is 512.
    ///
    /// On a durable map prefer passing the count to
    /// [`SecMap::durable`]-time construction: this builder keeps the
    /// log but the heap header retains the creation-time count, which
    /// is what [`SecMap::recover`] rebuilds with (harmless for
    /// correctness — bucket placement never affects results — but the
    /// recovered map won't mirror a post-hoc resize).
    pub fn bucket_count(mut self, n: usize) -> Self {
        let durable = self.engine.op_mut().durable.take();
        let mut op = MapOp::with_buckets(n);
        op.durable = durable;
        *self.engine.op_mut() = op;
        self
    }

    /// Registers the calling thread and returns its operation handle.
    pub fn register(&self) -> SecMapHandle<'_, K, V> {
        let (reclaim, state) = self.engine.register();
        let dur_seq = self
            .engine
            .op()
            .durable
            .as_ref()
            .map_or(1, |d| d.start_seq(state.tid()));
        SecMapHandle {
            map: self,
            state,
            reclaim,
            dur_seq,
        }
    }

    /// Number of live key-value pairs (takes every bucket lock in
    /// turn; a diagnostic, not a linearizable operation).
    pub fn len(&self) -> usize {
        self.engine
            .op()
            .buckets
            .iter()
            .map(|b| b.lock().unwrap().len())
            .sum()
    }

    /// `true` when the map holds no pairs (see [`SecMap::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The number of buckets the key space hashes onto.
    pub fn buckets(&self) -> usize {
        self.engine.op().buckets.len()
    }

    /// The configuration this map was built with (after the fixed-`K`
    /// normalization documented on [`SecMap::with_config`]).
    pub fn config(&self) -> &SecConfig {
        self.engine.config()
    }

    /// The batching/combining instrumentation. `eliminated` is always
    /// zero for a homogeneous family; `combined / batches` is the map's
    /// batching degree.
    pub fn stats(&self) -> &SecStats {
        self.engine.stats()
    }

    /// Reclamation statistics (diagnostic).
    pub fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.engine.reclaim_stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances) and returns the resulting stats.
    pub fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.engine.quiesce_reclamation(rounds)
    }

    /// Number of currently active shards.
    pub fn active_aggregators(&self) -> usize {
        self.engine.active_aggregators()
    }

    /// Forces the active shard count (see
    /// [`SecStack::set_active_aggregators`](crate::SecStack::set_active_aggregators)).
    /// Operations already announced drain on their old shard; the
    /// bucket locks make the overlap safe.
    pub fn set_active_aggregators(&self, k: usize) -> usize {
        self.engine.set_active_aggregators(k)
    }

    /// A point-in-time poll of the map's protocol counters (see
    /// [`SecStack::trace_snapshot`](crate::SecStack::trace_snapshot)).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.engine.trace_snapshot()
    }

    /// The sec-trace recorder, when configured under the `trace` cargo
    /// feature (see [`SecStack::tracer`](crate::SecStack::tracer)).
    pub fn tracer(&self) -> Option<&crate::TraceRecorder> {
        self.engine.tracer()
    }

    /// The shard currently serving `bucket`: the bucket range is
    /// block-partitioned over the active shards.
    fn shard_of(&self, bucket: usize) -> usize {
        let k = self.engine.active_aggregators().max(1);
        let buckets = self.engine.op().buckets.len();
        (bucket * k / buckets).min(k - 1)
    }
}

impl SecMap<u64, u64> {
    /// Creates a crash-durable map over `policy`'s persistent heap:
    /// every get/insert/remove writes an intent cell before announcing
    /// and is redo-logged (with its result) by its batch's combiner
    /// before the result is published (DESIGN.md §16). Durable
    /// structures carry `u64` keys and values; the creation-time
    /// bucket count is recorded in the heap header so
    /// [`SecMap::recover`] rebuilds identically.
    pub fn durable(max_threads: usize, policy: DurablePolicy) -> Result<Self, DurableError> {
        let core = DurableCore::create(&policy, Family::Map, DEFAULT_BUCKETS as u64, max_threads)?;
        Ok(Self::build(
            SecConfig::new(2, max_threads),
            DEFAULT_BUCKETS,
            Some(core),
        ))
    }

    /// Recovers a durable map from `policy.mode`'s existing heap:
    /// rebuilds the creation-time bucket geometry, replays the
    /// committed redo log in global order (verifying each logged
    /// result against the replay) and reports, per handle, whether its
    /// last announced op executed and with what result.
    pub fn recover(policy: DurablePolicy) -> Result<(Self, RecoveryReport), DurableError> {
        let (core, report) = DurableCore::open(&policy, Family::Map)?;
        let config = SecConfig::new(2, core.max_handles());
        let buckets = core.family_param() as usize;
        let map = Self::build(config, buckets.max(1), Some(core));
        let op = map.engine.op();
        for logged in &report.ops {
            let key: u64 = logged.operand;
            let bucket = op.bucket_of(&key);
            let cmd = match logged.opcode {
                opcode::MAP_GET => MapCmd::Get(key),
                opcode::MAP_INSERT => MapCmd::Insert(key, logged.operand2),
                opcode::MAP_REMOVE => MapCmd::Remove(key),
                other => {
                    return Err(DurableError::Corrupt(format!(
                        "map log holds foreign opcode {other}"
                    )))
                }
            };
            let replayed = match op.apply(bucket, cmd) {
                None => OpResult::Empty,
                Some(v) => OpResult::Value(v),
            };
            if replayed != logged.result {
                return Err(DurableError::Corrupt(format!(
                    "replay diverged: logged {:?}, replayed {:?}",
                    logged.result, replayed
                )));
            }
        }
        Ok((map, report))
    }

    /// The persistent heap backing this map (durable maps only) —
    /// hold it across a drop to recover a Volatile-mode heap.
    pub fn durable_heap(&self) -> Option<std::sync::Arc<sec_reclaim::PersistentHeap>> {
        self.engine.op().durable.as_ref().map(|d| d.heap())
    }

    /// Redo-log counters (durable maps only).
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.engine.op().durable.as_ref().map(|d| d.stats())
    }
}

impl<K, V> fmt::Debug for SecMap<K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecMap")
            .field("len", &self.len())
            .field("buckets", &self.buckets())
            .field("config", self.config())
            .field("active_shards", &self.active_aggregators())
            .finish()
    }
}

impl<K, V> ConcurrentMap<K, V> for SecMap<K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    type Handle<'a>
        = SecMapHandle<'a, K, V>
    where
        Self: 'a;

    fn register(&self) -> SecMapHandle<'_, K, V> {
        SecMap::register(self)
    }

    fn name(&self) -> &'static str {
        "SEC-M"
    }
}

/// A thread's handle to a [`SecMap`].
pub struct SecMapHandle<'a, K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    map: &'a SecMap<K, V>,
    state: OpState,
    reclaim: ReclaimHandle<'a>,
    /// Next per-handle durable op sequence number (1-based; resumes
    /// from the recovered log on durable maps, unused otherwise).
    dur_seq: u64,
}

impl<K, V> SecMapHandle<'_, K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// This thread's id (dense, `0..max_threads`).
    pub fn tid(&self) -> usize {
        self.state.tid()
    }

    /// A point-in-time poll of the map's protocol counters (see
    /// [`SecMap::trace_snapshot`]).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.map.trace_snapshot()
    }

    /// Announces `cmd` on its key's shard and rides the engine to the
    /// result. The shard is resolved against the active count at
    /// announce time; an operation excluded by a freeze retries on the
    /// same shard, which is safe even across a re-shard (a shard past
    /// the active prefix still freezes and combines its own batches —
    /// only *routing* of fresh operations moves).
    fn run_op(&mut self, bucket: usize, cmd: MapCmd<K, V>) -> Option<V> {
        let shard = self.map.shard_of(bucket);
        let node = MapNode::alloc_with(&self.reclaim, bucket, cmd);
        self.map
            .engine
            .run(Lane::At(shard), Role::Remove, node, &self.reclaim)
            .expect("map combiner always produces a result")
    }

    /// Returns the value mapped to `key` at the linearization point
    /// (its application under the bucket lock, in batch slot order), or
    /// `None` when absent.
    pub fn get(&mut self, key: &K) -> Option<V>
    where
        K: Clone,
    {
        if self.map.engine.op().durable.is_some() {
            return self.durable_op(opcode::MAP_GET, durable::word_of(key), 0);
        }
        let bucket = self.map.engine.op().bucket_of(key);
        self.run_op(bucket, MapCmd::Get(key.clone()))
    }

    /// Maps `key` to `value`, returning the previously mapped value (or
    /// `None` when the key was absent).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.map.engine.op().durable.is_some() {
            let k = durable::to_word(key);
            let v = durable::to_word(value);
            return self.durable_op(opcode::MAP_INSERT, k, v);
        }
        let bucket = self.map.engine.op().bucket_of(&key);
        self.run_op(bucket, MapCmd::Insert(key, value))
    }

    /// Removes `key`'s mapping, returning the removed value (or `None`
    /// when the key was absent).
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        K: Clone,
    {
        if self.map.engine.op().durable.is_some() {
            return self.durable_op(opcode::MAP_REMOVE, durable::word_of(key), 0);
        }
        let bucket = self.map.engine.op().bucket_of(key);
        self.run_op(bucket, MapCmd::Remove(key.clone()))
    }

    /// The durable op path: persist the intent, announce a request on
    /// this thread's durable shard, read the logged result back out of
    /// the request after publish.
    fn durable_op(&mut self, op: u8, operand: u64, operand2: u64) -> Option<V> {
        let eng = &self.map.engine;
        let d = eng.op().durable.as_ref().expect("durable route");
        let tid = self.state.tid();
        let seq = self.dur_seq;
        d.write_intent(tid, seq, op, operand, operand2);
        let mut req = DurableReq::new(tid, seq, op, operand, operand2);
        let node = (&mut req as *mut DurableReq).cast::<MapNode<K, V>>();
        let shard = d.shard_of(tid);
        eng.run_weighted(
            Lane::At(eng.bulk_agg(DUR_BASE + shard)),
            Role::Remove,
            node,
            1,
            &self.reclaim,
        );
        self.dur_seq = seq + 1;
        match req.take_result() {
            OpResult::Empty => None,
            OpResult::Value(w) => Some(durable::from_word(w)),
            OpResult::Unit => unreachable!("map ops always log a value-or-empty result"),
        }
    }

    /// Bulk `get`: looks up every key of `keys`, writing `results[i]`
    /// = the mapping of `keys[i]` (old contents of `results` are
    /// dropped). The whole slice rides **one** announcement on the
    /// first key's shard, so the protocol cost amortizes over
    /// `keys.len()` lookups; the lookups linearize consecutively at
    /// their bucket-lock applications, in slice order.
    ///
    /// Slices longer than the engine's per-announcement weight bound
    /// are chunked (each chunk is then individually atomic). Keys may
    /// hash anywhere — the combiner locks each key's own bucket, which
    /// is exactly what makes cross-shard application safe.
    ///
    /// # Panics
    ///
    /// If `keys` and `results` differ in length.
    pub fn get_many(&mut self, keys: &[K], results: &mut [Option<V>]) {
        assert_eq!(
            keys.len(),
            results.len(),
            "get_many: keys and results must pair up"
        );
        if keys.is_empty() {
            return;
        }
        if self.map.engine.op().durable.is_some() {
            // Durable maps make every lookup an individually
            // detectable logged op.
            for (k, r) in keys.iter().zip(results.iter_mut()) {
                *r = self.durable_op(opcode::MAP_GET, durable::word_of(k), 0);
            }
            return;
        }
        let chunk_size = crate::combine::MAX_BULK_OPS;
        for (kc, rc) in keys.chunks(chunk_size).zip(results.chunks_mut(chunk_size)) {
            let bucket = self.map.engine.op().bucket_of(&kc[0]);
            let cmd = MapCmd::GetMany {
                keys: kc.as_ptr(),
                results: rc.as_mut_ptr(),
                len: kc.len(),
            };
            self.run_bulk(bucket, cmd, kc.len());
        }
    }

    /// Bulk `insert`: applies every `(key, value)` entry as consecutive
    /// inserts, writing `prevs[i]` = the previous mapping of entry `i`
    /// (old contents of `prevs` are dropped). The entries are **moved**
    /// out of the vector — on return it is empty with its capacity
    /// retained, ready for allocation-free reuse. One announcement per
    /// weight-bound chunk, same amortization and linearization as
    /// [`SecMapHandle::get_many`].
    ///
    /// # Panics
    ///
    /// If `entries` and `prevs` differ in length.
    pub fn insert_many(&mut self, entries: &mut Vec<(K, V)>, prevs: &mut [Option<V>]) {
        assert_eq!(
            entries.len(),
            prevs.len(),
            "insert_many: entries and prevs must pair up"
        );
        if entries.is_empty() {
            return;
        }
        if self.map.engine.op().durable.is_some() {
            // Durable maps make every insert an individually
            // detectable logged op.
            for (i, (k, v)) in entries.drain(..).enumerate() {
                prevs[i] =
                    self.durable_op(opcode::MAP_INSERT, durable::to_word(k), durable::to_word(v));
            }
            return;
        }
        let chunk_size = crate::combine::MAX_BULK_OPS;
        for (ec, pc) in entries.chunks(chunk_size).zip(prevs.chunks_mut(chunk_size)) {
            let bucket = self.map.engine.op().bucket_of(&ec[0].0);
            let cmd = MapCmd::InsertMany {
                entries: ec.as_ptr(),
                prevs: pc.as_mut_ptr(),
                len: ec.len(),
            };
            self.run_bulk(bucket, cmd, ec.len());
        }
        // Every entry was moved into the map by a combiner; forget them
        // without dropping (capacity stays for reuse).
        // Safety: 0 ≤ current length, and elements `..len` are
        // moved-from (reading them again would be unsound — set_len
        // prevents exactly that).
        unsafe { entries.set_len(0) };
    }

    /// Announces one bulk command (weight = `ops`) on `bucket`'s shard
    /// and blocks until it is applied. The result channel is the
    /// request's own slices; the node's in-band result stays `None`.
    fn run_bulk(&mut self, bucket: usize, cmd: MapCmd<K, V>, ops: usize) {
        let shard = self.map.shard_of(bucket);
        let node = MapNode::alloc_with(&self.reclaim, bucket, cmd);
        self.map
            .engine
            .run_weighted(
                Lane::At(shard),
                Role::Remove,
                node,
                ops as u32,
                &self.reclaim,
            )
            .expect("map combiner always produces a result");
    }
}

impl<K, V> MapHandle<K, V> for SecMapHandle<'_, K, V>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn get(&mut self, key: &K) -> Option<V> {
        SecMapHandle::get(self, key)
    }

    fn insert(&mut self, key: K, value: V) -> Option<V> {
        SecMapHandle::insert(self, key, value)
    }

    fn remove(&mut self, key: &K) -> Option<V> {
        SecMapHandle::remove(self, key)
    }
}

impl<K, V> fmt::Debug for SecMapHandle<'_, K, V>
where
    K: Hash + Eq + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecMapHandle")
            .field("tid", &self.tid())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RecyclePolicy, WaitPolicy};
    use std::thread;

    #[test]
    fn sequential_contract_matches_hash_map() {
        let m: SecMap<u64, String> = SecMap::new(1);
        let mut h = m.register();
        assert_eq!(h.get(&1), None);
        assert_eq!(h.insert(1, "a".into()), None);
        assert_eq!(h.insert(1, "b".into()), Some("a".into()));
        assert_eq!(h.get(&1), Some("b".into()));
        assert_eq!(h.insert(2, "c".into()), None);
        assert_eq!(m.len(), 2);
        assert_eq!(h.remove(&1), Some("b".into()));
        assert_eq!(h.remove(&1), None);
        assert_eq!(h.get(&1), None);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert_eq!(h.remove(&2), Some("c".into()));
        assert!(m.is_empty());
    }

    #[test]
    fn disjoint_keys_account_exactly() {
        const THREADS: usize = 4;
        const PER: usize = 400;
        let m: SecMap<u64, u64> = SecMap::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let m = &m;
                scope.spawn(move || {
                    let mut h = m.register();
                    for i in 0..PER {
                        let k = (t * PER + i) as u64;
                        assert_eq!(h.insert(k, k * 10), None, "key {k} inserted twice");
                    }
                    for i in 0..PER {
                        let k = (t * PER + i) as u64;
                        assert_eq!(h.get(&k), Some(k * 10));
                        assert_eq!(h.remove(&k), Some(k * 10), "key {k} lost");
                    }
                });
            }
        });
        assert!(m.is_empty());
        let r = m.stats().report();
        assert_eq!(r.ops, (THREADS * PER * 3) as u64);
        assert_eq!(r.eliminated, 0, "homogeneous family never eliminates");
        assert_eq!(r.combined, r.ops);
    }

    #[test]
    fn hot_key_sees_exactly_one_first_insert() {
        const THREADS: usize = 6;
        let m: SecMap<u64, usize> = SecMap::new(THREADS);
        let prevs: Vec<Option<usize>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let m = &m;
                    scope.spawn(move || m.register().insert(42, t))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        // Exactly one insert observed the absent key; every other saw
        // some thread's value (the previous mapping at its
        // linearization point).
        assert_eq!(prevs.iter().filter(|p| p.is_none()).count(), 1);
        assert_eq!(m.len(), 1);
        let last = m.register().get(&42).expect("key present");
        assert!(last < THREADS);
    }

    #[test]
    fn hot_key_on_a_multi_shard_fixed_map_never_overflows_a_batch() {
        // Keyed routing can send every thread into one shard; the
        // fixed-K normalization must size batches for that.
        const THREADS: usize = 8;
        let m: SecMap<u64, u64> = SecMap::with_config(SecConfig::new(4, THREADS));
        assert_eq!(m.active_aggregators(), 4);
        thread::scope(|scope| {
            for _ in 0..THREADS {
                let m = &m;
                scope.spawn(move || {
                    let mut h = m.register();
                    for i in 0..1_000 {
                        h.insert(7, i);
                        let _ = h.get(&7);
                    }
                });
            }
        });
        assert_eq!(m.len(), 1);
        // The degenerate range never resizes.
        let r = m.stats().report();
        assert_eq!(r.resizes(), 0);
    }

    #[test]
    fn elastic_policy_resizes_under_load() {
        let m: SecMap<u64, u64> = SecMap::with_config(
            SecConfig::adaptive_windowed(1, 4, 8, 8)
                .wait_policy(WaitPolicy::SpinThenPark { spin_rounds: 64 }),
        );
        thread::scope(|scope| {
            for t in 0..8u64 {
                let m = &m;
                scope.spawn(move || {
                    let mut h = m.register();
                    for i in 0..2_000u64 {
                        h.insert(i % 64, t);
                        let _ = h.get(&(i % 64));
                    }
                });
            }
        });
        assert_eq!(m.len(), 64);
        // Forced re-sharding keeps working after the run, too.
        assert_eq!(m.set_active_aggregators(4), 4);
        let mut h = m.register();
        assert_eq!(h.insert(1_000_000, 1), None);
        assert_eq!(h.remove(&1_000_000), Some(1));
    }

    #[test]
    fn recycling_reaches_steady_state() {
        let m: SecMap<u64, u64> = SecMap::with_config(
            SecConfig::new(1, 2).recycle(RecyclePolicy::PerThread { cache_cap: 64 }),
        );
        thread::scope(|scope| {
            for t in 0..2u64 {
                let m = &m;
                scope.spawn(move || {
                    let mut h = m.register();
                    for i in 0..5_000u64 {
                        h.insert(i % 32, t);
                        let _ = h.remove(&(i % 32));
                    }
                });
            }
        });
        let stats = m.quiesce_reclamation(64);
        assert_eq!(
            stats.retired,
            stats.freed + stats.cached,
            "quiesced map leaks nothing: {stats:?}"
        );
    }

    #[test]
    fn bucket_count_builder_applies() {
        let m: SecMap<u64, u64> = SecMap::new(1).bucket_count(8);
        assert_eq!(m.buckets(), 8);
        let mut h = m.register();
        for k in 0..100u64 {
            assert_eq!(h.insert(k, k), None);
        }
        assert_eq!(m.len(), 100);
        for k in 0..100u64 {
            assert_eq!(h.get(&k), Some(k));
        }
    }

    #[test]
    fn values_drop_with_the_map() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;

        #[derive(Clone)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let m: SecMap<u64, Counted> = SecMap::new(1);
            let mut h = m.register();
            for k in 0..10 {
                assert!(h.insert(k, Counted(Arc::clone(&drops))).is_none());
            }
            // Two values displaced by overwrites drop before teardown.
            for k in 0..2 {
                let prev = h.insert(k, Counted(Arc::clone(&drops)));
                drop(prev);
            }
        }
        // 10 live at teardown (8 originals + 2 overwrites), 2
        // displaced along the way = all 12 created.
        assert_eq!(drops.load(AOrd::Relaxed), 12);
    }

    #[test]
    fn bulk_insert_and_get_match_singles() {
        let m: SecMap<u64, u64> = SecMap::new(1);
        let mut h = m.register();
        let mut entries: Vec<(u64, u64)> = (0..200).map(|k| (k, k * 10)).collect();
        let mut prevs = vec![None; 200];
        h.insert_many(&mut entries, &mut prevs);
        assert!(entries.is_empty(), "entries are drained");
        assert!(entries.capacity() >= 200, "capacity retained for reuse");
        assert!(prevs.iter().all(Option::is_none), "all keys were fresh");
        assert_eq!(m.len(), 200);

        let keys: Vec<u64> = (0..250).collect();
        let mut results = vec![None; 250];
        h.get_many(&keys, &mut results);
        for (k, r) in keys.iter().zip(&results) {
            assert_eq!(*r, if *k < 200 { Some(k * 10) } else { None });
        }

        // Overwrites report the displaced values, in slice order.
        let mut entries: Vec<(u64, u64)> = (0..5).map(|k| (k, k + 1000)).collect();
        let mut prevs = vec![None; 5];
        h.insert_many(&mut entries, &mut prevs);
        for (k, p) in prevs.iter().enumerate() {
            assert_eq!(*p, Some(k as u64 * 10));
        }
        assert_eq!(h.get(&3), Some(1003));
    }

    #[test]
    fn bulk_ops_are_counted_in_ops_not_announcements() {
        const CALLS: u64 = 40;
        const LEN: usize = 16;
        let m: SecMap<u64, u64> = SecMap::new(1);
        let mut h = m.register();
        for c in 0..CALLS {
            let mut entries: Vec<(u64, u64)> =
                (0..LEN as u64).map(|i| (c * LEN as u64 + i, i)).collect();
            let mut prevs = vec![None; LEN];
            h.insert_many(&mut entries, &mut prevs);
        }
        let r = m.stats().report();
        assert_eq!(r.ops, CALLS * LEN as u64, "the freezer counts ops");
        assert_eq!(r.batches, CALLS, "one announcement (batch) per call");
        assert_eq!(m.len(), CALLS as usize * LEN);
    }

    #[test]
    fn concurrent_bulk_and_single_ops_agree() {
        const THREADS: usize = 4;
        const PER: usize = 200;
        let m: SecMap<u64, u64> = SecMap::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let m = &m;
                scope.spawn(move || {
                    let mut h = m.register();
                    // Disjoint key ranges per thread; alternate bulk
                    // and single inserts.
                    let base = t * (PER as u64);
                    let mut entries: Vec<(u64, u64)> =
                        (0..PER as u64 / 2).map(|i| (base + i, base + i)).collect();
                    let mut prevs = vec![None; entries.len()];
                    h.insert_many(&mut entries, &mut prevs);
                    for i in PER as u64 / 2..PER as u64 {
                        assert_eq!(h.insert(base + i, base + i), None);
                    }
                    let keys: Vec<u64> = (0..PER as u64).map(|i| base + i).collect();
                    let mut results = vec![None; keys.len()];
                    h.get_many(&keys, &mut results);
                    for (k, r) in keys.iter().zip(&results) {
                        assert_eq!(*r, Some(*k), "thread {t}");
                    }
                });
            }
        });
        assert_eq!(m.len(), THREADS * PER);
    }

    #[test]
    fn durable_map_recovers_mappings_and_results() {
        use crate::DurablePolicy;
        let m = SecMap::<u64, u64>::durable(1, DurablePolicy::volatile()).unwrap();
        {
            let mut h = m.register();
            assert_eq!(h.insert(7, 70), None);
            assert_eq!(h.insert(7, 71), Some(70));
            assert_eq!(h.insert(8, 80), None);
            assert_eq!(h.remove(&8), Some(80));
            assert_eq!(h.get(&7), Some(71));
            assert_eq!(h.get(&9), None);
        }
        let heap = m.durable_heap().unwrap();
        drop(m);
        let (r, report) = SecMap::<u64, u64>::recover(DurablePolicy::heap(heap)).unwrap();
        assert_eq!(report.replayed_ops(), 6);
        assert_eq!(r.len(), 1);
        let mut h = r.register();
        assert_eq!(h.get(&7), Some(71));
        assert_eq!(h.get(&8), None);
    }

    #[test]
    fn durable_map_recovers_under_contention() {
        use crate::{DurablePolicy, PendingOutcome};
        const THREADS: usize = 4;
        const PER: usize = 100;
        let m = SecMap::<u64, u64>::durable(THREADS, DurablePolicy::volatile().shards(2)).unwrap();
        thread::scope(|scope| {
            for t in 0..THREADS as u64 {
                let m = &m;
                scope.spawn(move || {
                    let mut h = m.register();
                    let base = t * PER as u64;
                    for i in 0..PER as u64 {
                        match i % 4 {
                            0 | 1 => {
                                h.insert(base + i, i);
                            }
                            2 => {
                                h.get(&(base + i - 1));
                            }
                            _ => {
                                h.remove(&(base + i - 3));
                            }
                        }
                    }
                });
            }
        });
        // Snapshot the live mapping through a fresh handle.
        let mut live: Vec<(u64, u64)> = Vec::new();
        {
            let mut h = m.register();
            for k in 0..(THREADS * PER) as u64 {
                if let Some(v) = h.get(&k) {
                    live.push((k, v));
                }
            }
        }
        let heap = m.durable_heap().unwrap();
        drop(m);
        let (r, report) = SecMap::<u64, u64>::recover(DurablePolicy::heap(heap)).unwrap();
        for h in &report.handles[..THREADS] {
            assert!(matches!(
                h.pending,
                PendingOutcome::Executed { .. } | PendingOutcome::None
            ));
        }
        let mut h = r.register();
        for (k, v) in live {
            assert_eq!(h.get(&k), Some(v), "key {k}");
        }
    }

    #[test]
    fn durable_map_bulk_ops_route_through_the_log() {
        use crate::DurablePolicy;
        let m = SecMap::<u64, u64>::durable(2, DurablePolicy::volatile()).unwrap();
        {
            let mut h = m.register();
            let mut entries: Vec<(u64, u64)> = vec![(1, 10), (2, 20), (3, 30)];
            let mut prevs = vec![None; 3];
            h.insert_many(&mut entries, &mut prevs);
            assert!(entries.is_empty());
            assert_eq!(prevs, vec![None, None, None]);
            let keys = [1u64, 2, 4];
            let mut results = vec![None; 3];
            h.get_many(&keys, &mut results);
            assert_eq!(results, vec![Some(10), Some(20), None]);
        }
        assert_eq!(m.durable_stats().unwrap().entries, 6);
        let heap = m.durable_heap().unwrap();
        drop(m);
        let (r, _) = SecMap::<u64, u64>::recover(DurablePolicy::heap(heap)).unwrap();
        let mut h = r.register();
        assert_eq!(h.get(&3), Some(30));
    }
}
