//! `sec-trace`: the observability layer of the combining engine
//! (DESIGN.md §14).
//!
//! Three export surfaces over one recording substrate:
//!
//! * **Event rings** ([`EventRing`]) — per-thread lock-free rings of
//!   timestamped protocol-lifecycle events ([`TraceEvent`]): announce,
//!   freezer election, batch frozen, combine start/end, publish,
//!   park/unpark, grow/shrink, recycle overflow.
//! * **Phase histograms** ([`Histogram`]) — mergeable log-bucketed
//!   (HDR-style) latency distributions for announce→freeze wait,
//!   freeze→publish batch residency, combine duration and end-to-end
//!   per-op latency, with p50/p90/p99/p999 queries.
//! * **Snapshots** ([`TraceSnapshot`]) — cheap counter polls on every
//!   family structure, differentiable into time-windowed rates
//!   ([`TraceRates`]).
//!
//! All types here compile unconditionally (so the histograms back the
//! workload harness and the per-batch degree distribution even in
//! default builds); the *engine hooks* that feed the rings and phase
//! histograms are compiled only under the `trace` cargo feature, and
//! within such a build they run only when [`TraceConfig::enabled`] was
//! set — the per-op cost of an enabled-but-unsampled operation is one
//! predictable branch plus one thread-local counter increment, and the
//! recording path never allocates (the rings and histograms are sized
//! at construction; `tests/alloc_count.rs` asserts this).
//!
//! Timestamps come from [`sec_sync::TscClock`] (`RDTSC` on x86_64, a
//! strictly monotonic software clock elsewhere), converted to
//! nanoseconds through a one-shot [`sec_sync::Calibration`] measured
//! when the recorder is built.

mod chrome;
mod hist;
mod ring;

pub use chrome::chrome_trace_json;
pub use hist::Histogram;
pub use ring::{EventRing, TraceEvent, TraceEventKind, TraceLane};

use sec_sync::{CachePadded, Calibration, TscClock};

/// Runtime tracing knobs, carried on
/// [`SecConfig::trace`](crate::SecConfig::trace).
///
/// The cargo `trace` feature decides whether the engine *contains* the
/// recording hooks; this config decides whether a particular structure
/// *uses* them. With the feature compiled out the config is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch: build a [`TraceRecorder`] for this structure.
    pub enabled: bool,
    /// Per-op sampling period as a shift: an op is sampled (records
    /// events and phase latencies) once per `2^sample_shift` ops per
    /// thread. 0 samples every op; per-batch events (freeze, combine,
    /// publish, resize) are recorded regardless of sampling.
    pub sample_shift: u32,
    /// Capacity of each per-thread event ring (rounded up to a power
    /// of two; oldest events are overwritten beyond that).
    pub ring_capacity: usize,
}

impl TraceConfig {
    /// Tracing disabled (the default): no recorder is built.
    pub const fn off() -> Self {
        Self {
            enabled: false,
            sample_shift: 6,
            ring_capacity: 4096,
        }
    }

    /// Tracing enabled with the default sampling period (1 in 64 ops)
    /// and ring capacity (4096 events/thread).
    pub const fn on() -> Self {
        Self {
            enabled: true,
            ..Self::off()
        }
    }

    /// Sets the sampling shift (builder style); 0 samples every op.
    pub const fn sample_shift(mut self, shift: u32) -> Self {
        self.sample_shift = shift;
        self
    }

    /// Sets the per-thread ring capacity (builder style).
    pub const fn ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// The sampling mask derived from `sample_shift` (shift is capped
    /// at 63).
    pub(crate) fn sample_mask(&self) -> u64 {
        (1u64 << self.sample_shift.min(63)) - 1
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// The recording substrate for one traced structure: per-thread event
/// rings plus the four phase histograms, sharing one calibrated clock.
///
/// Obtained from a family structure's `tracer()` accessor (present
/// only when the structure was configured with
/// [`TraceConfig::enabled`] under the `trace` cargo feature).
#[derive(Debug)]
pub struct TraceRecorder {
    clock: TscClock,
    cal: Calibration,
    origin: u64,
    sample_mask: u64,
    /// `max_threads` per-thread rings plus one trailing control ring
    /// for events with no owning registered thread.
    rings: Box<[CachePadded<EventRing>]>,
    announce_to_freeze: Histogram,
    batch_residency: Histogram,
    combine_duration: Histogram,
    op_latency: Histogram,
}

impl TraceRecorder {
    /// Builds a recorder for up to `max_threads` registered threads.
    /// Calibrates the clock once (~1 ms of spinning).
    pub fn new(config: &TraceConfig, max_threads: usize) -> Self {
        let clock = TscClock::new();
        let cal = clock.calibrate();
        let origin = clock.now();
        Self {
            clock,
            cal,
            origin,
            sample_mask: config.sample_mask(),
            rings: (0..max_threads.max(1) + 1)
                .map(|_| CachePadded::new(EventRing::new(config.ring_capacity)))
                .collect(),
            announce_to_freeze: Histogram::new(),
            batch_residency: Histogram::new(),
            combine_duration: Histogram::new(),
            op_latency: Histogram::new(),
        }
    }

    /// Raw clock read (opaque ticks; pair with [`Self::delta_ns`]).
    #[inline]
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Nanoseconds elapsed since a [`Self::now`] read.
    #[inline]
    pub fn delta_ns(&self, since_ticks: u64) -> u64 {
        self.cal.ticks_to_ns(self.now().saturating_sub(since_ticks))
    }

    /// The tick→ns conversion in use.
    pub fn calibration(&self) -> Calibration {
        self.cal
    }

    /// Advances `tid`'s op counter; `true` when this op is sampled.
    #[inline]
    pub(crate) fn sample(&self, tid: usize) -> bool {
        self.ring(tid).tick(self.sample_mask)
    }

    #[inline]
    fn ring(&self, tid: usize) -> &EventRing {
        // Out-of-range tids (impossible via `register`, but cheap to
        // tolerate) share the control ring.
        &self.rings[tid.min(self.rings.len() - 1)]
    }

    /// Current event timestamp: ns since recorder construction.
    #[inline]
    fn ts_now(&self) -> u64 {
        self.cal.ticks_to_ns(self.now().saturating_sub(self.origin))
    }

    /// Records an event attributed to registered thread `tid` on
    /// aggregator `agg`. Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, tid: usize, agg: u32, kind: TraceEventKind) {
        self.ring(tid).record(TraceEvent {
            ts_ns: self.ts_now(),
            tid: tid as u32,
            agg,
            kind,
        });
    }

    /// Records a control-plane event (no owning registered thread,
    /// e.g. a manual `set_active_aggregators` step).
    pub fn record_control(&self, kind: TraceEventKind) {
        self.rings[self.rings.len() - 1].record(TraceEvent {
            ts_ns: self.ts_now(),
            tid: u32::MAX,
            agg: 0,
            kind,
        });
    }

    /// Updates `tid`'s recycle-overflow watermark; returns the newly
    /// observed overflow count, if it grew.
    #[inline]
    pub(crate) fn overflow_delta(&self, tid: usize, current: u64) -> Option<u64> {
        self.ring(tid).overflow_delta(current)
    }

    /// Drains every ring and returns the surviving events merged into
    /// one timestamp-sorted stream. Reporting path: allocates, and
    /// should run at quiescence for an exact snapshot.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.rings.iter().flat_map(|r| r.drain()).collect();
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Announce→freeze wait distribution (ns): time from an op's
    /// announce to its batch being frozen, for sampled ops.
    pub fn announce_to_freeze(&self) -> &Histogram {
        &self.announce_to_freeze
    }

    /// Freeze→publish batch residency distribution (ns), recorded once
    /// per batch whose combiner was sampled.
    pub fn batch_residency(&self) -> &Histogram {
        &self.batch_residency
    }

    /// Combine-phase duration distribution (ns) for sampled combiners.
    pub fn combine_duration(&self) -> &Histogram {
        &self.combine_duration
    }

    /// End-to-end per-op latency distribution (ns) for sampled ops.
    pub fn op_latency(&self) -> &Histogram {
        &self.op_latency
    }

    /// Total events recorded across all rings (including overwritten
    /// ones).
    pub fn events_recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.recorded()).sum()
    }
}

/// A batch-degree distribution summary: fed by the per-batch histogram
/// in [`SecStats`](crate::SecStats) and reported on every
/// [`BatchReport`](crate::BatchReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegreeDist {
    /// Smallest frozen batch (0 when no batch froze).
    pub min: u64,
    /// Median batch degree.
    pub p50: u64,
    /// 99th-percentile batch degree.
    pub p99: u64,
    /// Largest frozen batch.
    pub max: u64,
}

impl DegreeDist {
    /// Summarizes a histogram of batch degrees.
    pub fn from_histogram(h: &Histogram) -> Self {
        Self {
            min: h.min(),
            p50: h.percentile(50.0),
            p99: h.percentile(99.0),
            max: h.max(),
        }
    }
}

/// A point-in-time poll of a structure's protocol counters, cheap
/// enough to take periodically from a monitoring thread. Two snapshots
/// differentiate into [`TraceRates`] via [`TraceSnapshot::rates_since`].
///
/// Available on every family structure and handle regardless of the
/// `trace` cargo feature (it reads the always-on [`SecStats`]
/// counters).
///
/// [`SecStats`]: crate::SecStats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Nanoseconds since the structure was constructed.
    pub at_ns: u64,
    /// Completed operations.
    pub ops: u64,
    /// Frozen batches.
    pub batches: u64,
    /// Operations that eliminated against an opposite-lane partner.
    pub eliminated: u64,
    /// Operations applied by a combiner.
    pub combined: u64,
    /// Blocking parks.
    pub parks: u64,
    /// Wakeups delivered.
    pub wakes: u64,
    /// Aggregator grow steps.
    pub grows: u64,
    /// Aggregator shrink steps.
    pub shrinks: u64,
    /// Active aggregators at the poll.
    pub active_aggregators: usize,
}

impl TraceSnapshot {
    /// Rates over the window from `earlier` to `self`. Counters are
    /// monotonic, so a well-ordered pair gives non-negative rates; a
    /// zero-length window reports zero rates.
    pub fn rates_since(&self, earlier: &TraceSnapshot) -> TraceRates {
        let dt_ns = self.at_ns.saturating_sub(earlier.at_ns);
        let secs = dt_ns as f64 / 1e9;
        let rate = |now: u64, then: u64| {
            if dt_ns == 0 {
                0.0
            } else {
                now.saturating_sub(then) as f64 / secs
            }
        };
        let d_ops = self.ops.saturating_sub(earlier.ops);
        let d_batches = self.batches.saturating_sub(earlier.batches);
        TraceRates {
            interval_s: secs,
            ops_per_sec: rate(self.ops, earlier.ops),
            batches_per_sec: rate(self.batches, earlier.batches),
            parks_per_sec: rate(self.parks, earlier.parks),
            batching_degree: if d_batches == 0 {
                0.0
            } else {
                d_ops as f64 / d_batches as f64
            },
        }
    }
}

/// Windowed rates between two [`TraceSnapshot`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRates {
    /// Window length in seconds.
    pub interval_s: f64,
    /// Completed operations per second over the window.
    pub ops_per_sec: f64,
    /// Frozen batches per second over the window.
    pub batches_per_sec: f64,
    /// Blocking parks per second over the window.
    pub parks_per_sec: f64,
    /// Mean ops per batch over the window (0 when no batch froze).
    pub batching_degree: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_merges_rings_in_timestamp_order() {
        let r = TraceRecorder::new(&TraceConfig::on().sample_shift(0), 4);
        r.record(2, 0, TraceEventKind::FreezerElected);
        r.record(
            0,
            1,
            TraceEventKind::Announce {
                lane: TraceLane::Add,
                seq: 0,
            },
        );
        r.record_control(TraceEventKind::Grow { k: 3 });
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(evs
            .iter()
            .any(|e| e.tid == u32::MAX && e.kind == TraceEventKind::Grow { k: 3 }));
    }

    #[test]
    fn sampling_respects_the_shift() {
        let r = TraceRecorder::new(&TraceConfig::on().sample_shift(3), 1);
        let hits = (0..32).filter(|_| r.sample(0)).count();
        assert_eq!(hits, 4);
        // An out-of-range tid must be tolerated (clamped), not panic.
        let _ = r.sample(5);
    }

    #[test]
    fn degree_dist_summarizes_histogram() {
        let h = Histogram::new();
        for d in [1u64, 2, 2, 3, 8] {
            h.record(d);
        }
        let dd = DegreeDist::from_histogram(&h);
        assert_eq!(dd.min, 1);
        assert_eq!(dd.p50, 2);
        assert_eq!(dd.max, 8);
        assert!(dd.p99 >= dd.p50 && dd.p99 <= dd.max);
        assert_eq!(
            DegreeDist::from_histogram(&Histogram::new()),
            DegreeDist::default()
        );
    }

    #[test]
    fn snapshot_rates_differentiate() {
        let a = TraceSnapshot {
            at_ns: 1_000_000_000,
            ops: 1_000,
            batches: 100,
            eliminated: 0,
            combined: 1_000,
            parks: 10,
            wakes: 10,
            grows: 0,
            shrinks: 0,
            active_aggregators: 2,
        };
        let b = TraceSnapshot {
            at_ns: 2_000_000_000,
            ops: 3_000,
            batches: 200,
            parks: 30,
            ..a
        };
        let r = b.rates_since(&a);
        assert!((r.interval_s - 1.0).abs() < 1e-9);
        assert!((r.ops_per_sec - 2_000.0).abs() < 1e-6);
        assert!((r.batches_per_sec - 100.0).abs() < 1e-6);
        assert!((r.parks_per_sec - 20.0).abs() < 1e-6);
        assert!((r.batching_degree - 20.0).abs() < 1e-6);
        // Degenerate window: no division blowups.
        let z = a.rates_since(&a);
        assert_eq!(z.ops_per_sec, 0.0);
        assert_eq!(z.batching_degree, 0.0);
    }
}
