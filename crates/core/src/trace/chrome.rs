//! Chrome-trace (Perfetto-loadable) JSON export.
//!
//! The [trace event format] is the lowest-common-denominator timeline
//! format: a JSON object with a `traceEvents` array whose entries carry
//! a name, a phase (`"X"` complete-span / `"i"` instant / `"M"`
//! metadata), microsecond timestamps, and pid/tid lanes. Both
//! `chrome://tracing` and [ui.perfetto.dev] open it directly.
//!
//! Span reconstruction: the recorder stores `combine` and `batch`
//! (freeze→publish residency) events with their *duration* as the
//! payload at the moment they end, so the dumper can emit proper `"X"`
//! spans (`ts = end - dur`) without pairing separate begin/end events
//! across rings.
//!
//! The JSON is hand-rolled — event names are static ASCII and every
//! argument is numeric, so no escaping machinery is needed (and the
//! repo deliberately carries no serde dependency).
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use super::ring::{TraceEvent, TraceEventKind};
use std::collections::BTreeSet;
use std::fmt::Write;

/// Lane shown for control-plane events (`u32::MAX` is unfriendly to
/// trace viewers' lane sorting). Lane 0 so it sorts first, with every
/// real tid shifted up by one — an earlier version mapped the control
/// ring to lane 999 999, which silently merged a genuine thread with
/// tid 999 999 into the control lane. The shift is total (real tids
/// are `< u32::MAX` by the recorder's contract), so no real tid can
/// collide with any other lane.
const CONTROL_LANE: u32 = 0;

fn lane_tid(tid: u32) -> u32 {
    if tid == u32::MAX {
        CONTROL_LANE
    } else {
        tid + 1
    }
}

/// Label of a lane: `control` for the control plane, otherwise the
/// *raw* recorder tid (undoing the +1 lane shift) so labels match what
/// the rest of the tooling prints.
fn lane_label(lane: u32) -> String {
    if lane == CONTROL_LANE {
        "control".to_string()
    } else {
        format!("thread {}", lane - 1)
    }
}

fn push_instant(out: &mut String, name: &str, ts_ns: u64, tid: u32, args: &[(&str, u64)]) {
    let _ = write!(
        out,
        r#"{{"name":"{name}","ph":"i","s":"t","ts":{:.3},"pid":1,"tid":{}"#,
        ts_ns as f64 / 1_000.0,
        lane_tid(tid),
    );
    push_args(out, args);
    out.push_str("},\n");
}

fn push_span(
    out: &mut String,
    name: &str,
    end_ns: u64,
    dur_ns: u64,
    tid: u32,
    args: &[(&str, u64)],
) {
    let _ = write!(
        out,
        r#"{{"name":"{name}","ph":"X","ts":{:.3},"dur":{:.3},"pid":1,"tid":{}"#,
        end_ns.saturating_sub(dur_ns) as f64 / 1_000.0,
        dur_ns as f64 / 1_000.0,
        lane_tid(tid),
    );
    push_args(out, args);
    out.push_str("},\n");
}

fn push_args(out: &mut String, args: &[(&str, u64)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(r#","args":{"#);
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, r#""{k}":{v}"#);
    }
    out.push('}');
}

/// Renders a merged event stream (from
/// [`TraceRecorder::events`](super::TraceRecorder::events)) as a
/// Chrome-trace JSON document.
///
/// Instant events keep their kind name; `combine` and `batch`
/// (freeze→publish) become duration spans on the recording thread's
/// lane. Control-plane events land on a dedicated `control` lane.
///
/// # Examples
///
/// ```
/// use sec_core::trace::{chrome_trace_json, TraceEvent, TraceEventKind, TraceLane};
/// let events = [TraceEvent {
///     ts_ns: 1_500,
///     tid: 0,
///     agg: 0,
///     kind: TraceEventKind::Announce { lane: TraceLane::Add, seq: 3 },
/// }];
/// let json = chrome_trace_json(&events);
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("\"announce\""));
/// ```
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 1024);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(
        r#"{"name":"process_name","ph":"M","pid":1,"args":{"name":"sec combining engine"}}"#,
    );
    out.push_str(",\n");
    // Name the lanes that appear, once each, in ascending lane order
    // (control first, then threads by tid — deterministic regardless
    // of event interleaving). The set also replaces the previous
    // per-event `Vec::contains` scan, which was O(events × lanes).
    let lanes: BTreeSet<u32> = events.iter().map(|e| lane_tid(e.tid)).collect();
    for lane in lanes {
        let _ = writeln!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\"{}\"}}}},",
            lane_label(lane),
        );
    }
    for e in events {
        let agg = e.agg as u64;
        match e.kind {
            TraceEventKind::Announce { lane, seq } => push_instant(
                &mut out,
                e.kind.name(),
                e.ts_ns,
                e.tid,
                &[("agg", agg), ("lane", lane as u64), ("seq", seq as u64)],
            ),
            TraceEventKind::FreezerElected => {
                push_instant(&mut out, e.kind.name(), e.ts_ns, e.tid, &[("agg", agg)])
            }
            TraceEventKind::BatchFrozen { adds, removes } => push_instant(
                &mut out,
                e.kind.name(),
                e.ts_ns,
                e.tid,
                &[
                    ("agg", agg),
                    ("adds", adds as u64),
                    ("removes", removes as u64),
                    ("degree", adds as u64 + removes as u64),
                ],
            ),
            TraceEventKind::CombineStart { lane } => push_instant(
                &mut out,
                e.kind.name(),
                e.ts_ns,
                e.tid,
                &[("agg", agg), ("lane", lane as u64)],
            ),
            TraceEventKind::CombineEnd { dur_ns } => push_span(
                &mut out,
                e.kind.name(),
                e.ts_ns,
                dur_ns,
                e.tid,
                &[("agg", agg)],
            ),
            TraceEventKind::Publish { residency_ns } => push_span(
                &mut out,
                e.kind.name(),
                e.ts_ns,
                residency_ns,
                e.tid,
                &[("agg", agg)],
            ),
            TraceEventKind::Park | TraceEventKind::Unpark => {
                push_instant(&mut out, e.kind.name(), e.ts_ns, e.tid, &[("agg", agg)])
            }
            TraceEventKind::Grow { k } | TraceEventKind::Shrink { k } => {
                push_instant(&mut out, e.kind.name(), e.ts_ns, e.tid, &[("k", k as u64)])
            }
            TraceEventKind::RecycleOverflow { count } => push_instant(
                &mut out,
                e.kind.name(),
                e.ts_ns,
                e.tid,
                &[("agg", agg), ("count", count)],
            ),
        }
    }
    // Strip the trailing ",\n" left by the last event (there is always
    // at least the process_name metadata entry).
    if out.ends_with(",\n") {
        out.truncate(out.len() - 2);
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::super::ring::TraceLane;
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                ts_ns: 1_000,
                tid: 0,
                agg: 0,
                kind: TraceEventKind::Announce {
                    lane: TraceLane::Add,
                    seq: 0,
                },
            },
            TraceEvent {
                ts_ns: 2_000,
                tid: 0,
                agg: 0,
                kind: TraceEventKind::BatchFrozen {
                    adds: 3,
                    removes: 2,
                },
            },
            TraceEvent {
                ts_ns: 9_000,
                tid: 1,
                agg: 0,
                kind: TraceEventKind::Publish {
                    residency_ns: 7_000,
                },
            },
            TraceEvent {
                ts_ns: 9_500,
                tid: u32::MAX,
                agg: 0,
                kind: TraceEventKind::Grow { k: 3 },
            },
        ]
    }

    #[test]
    fn output_shape_is_chrome_trace() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Residency span: starts at (9000-7000)/1000 µs with dur 7 µs.
        assert!(json.contains(r#""name":"batch","ph":"X","ts":2.000,"dur":7.000"#));
        assert!(json.contains(r#""degree":5"#));
        assert!(json.contains(r#""name":"control"#));
        // No dangling comma before the array close.
        assert!(!json.contains(",\n]"));
    }

    /// Regression: the control lane used to be a fixed tid 999 999,
    /// which silently merged a genuine thread with that tid into the
    /// control lane. The +1 lane shift keeps them apart.
    #[test]
    fn tid_999999_does_not_collide_with_control() {
        let events = [
            TraceEvent {
                ts_ns: 1_000,
                tid: 999_999,
                agg: 0,
                kind: TraceEventKind::Announce {
                    lane: TraceLane::Add,
                    seq: 0,
                },
            },
            TraceEvent {
                ts_ns: 2_000,
                tid: u32::MAX,
                agg: 0,
                kind: TraceEventKind::Grow { k: 2 },
            },
        ];
        let json = chrome_trace_json(&events);
        // Two distinct lanes, each with its own metadata entry.
        assert!(json.contains(r#""tid":1000000,"args":{"name":"thread 999999"}"#));
        assert!(json.contains(&format!(
            r#""tid":{CONTROL_LANE},"args":{{"name":"control"}}"#
        )));
        // The thread's event is on its own lane, not the control lane.
        assert!(
            json.contains(r#""name":"announce","ph":"i","s":"t","ts":1.000,"pid":1,"tid":1000000"#)
        );
        assert!(json.contains(&format!(
            r#""name":"grow","ph":"i","s":"t","ts":2.000,"pid":1,"tid":{CONTROL_LANE}"#
        )));
    }

    /// Lane metadata comes out in ascending lane order (control first,
    /// then threads by tid) no matter how the events interleave.
    #[test]
    fn lane_metadata_is_sorted_and_unique() {
        let mut events = sample_events();
        events.reverse(); // control event first, threads out of order
        let json = chrome_trace_json(&events);
        let tids: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("thread_name"))
            .map(|l| {
                let start = l.find("\"tid\":").unwrap() + 6;
                let end = l[start..].find(',').unwrap() + start;
                &l[start..end]
            })
            .collect();
        assert_eq!(
            tids,
            ["0", "1", "2"],
            "control lane 0, then tids 0,1 shifted"
        );
        let labels: Vec<bool> = json
            .lines()
            .filter(|l| l.contains("thread_name"))
            .map(|l| l.contains("control"))
            .collect();
        assert_eq!(labels, [true, false, false]);
    }

    #[test]
    fn empty_stream_is_still_valid() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("traceEvents"));
        assert!(!json.contains(",\n]"));
    }

    /// A no-dependency structural check: balanced braces/brackets and
    /// quotes outside of any string context — catches the classes of
    /// hand-rolled-JSON bugs (dangling commas aside, asserted above).
    #[test]
    fn braces_and_quotes_balance() {
        let json = chrome_trace_json(&sample_events());
        let mut depth = 0i64;
        let mut in_str = false;
        for c in json.chars() {
            match c {
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
