//! Mergeable log-bucketed concurrent histograms (HDR-style).
//!
//! The bucket layout is the classic HDR compromise: values below 16
//! are recorded exactly; above that, each power-of-two range is split
//! into 16 linear sub-buckets, so any recorded value is off by at most
//! one sixteenth (6.25%) of itself. That is precise enough for p50/p99
//! latency work and cheap enough that recording is a single relaxed
//! `fetch_add` (plus min/max maintenance) — no locks, no allocation,
//! usable from any number of threads concurrently.

use core::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-bucket count per power-of-two range.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two range.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 16 exact low buckets + 16 per range for
/// ranges `[2^4, 2^5) ..= [2^63, 2^64)`.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Maps a value to its bucket index.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let m = 63 - v.leading_zeros(); // highest set bit, ≥ SUB_BITS
        let group = (m - SUB_BITS + 1) as u64;
        let sub = (v >> (m - SUB_BITS)) - SUB;
        (group * SUB + sub) as usize
    }
}

/// Inclusive upper edge of bucket `idx` — the value `percentile`
/// reports for every sample that landed in the bucket.
#[inline]
fn bucket_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let group = idx / SUB - 1;
        let sub = idx % SUB;
        // Next bucket's lower edge, minus one; the last bucket's edge
        // saturates at u64::MAX.
        ((SUB + sub + 1) << group).wrapping_sub(1)
    }
}

/// A concurrent log-bucketed histogram with ≤ 6.25% relative error.
///
/// Recording is wait-free (one relaxed `fetch_add` on the bucket plus
/// min/max upkeep) and never allocates; the full bucket array is
/// allocated once at construction (~8 KiB). Queries walk the bucket
/// array and are meant for end-of-run or periodic reporting, not the
/// hot path.
///
/// Every query ([`count`](Self::count), [`mean`](Self::mean),
/// [`percentile`](Self::percentile)) copies the bucket array into a
/// local snapshot first and derives everything — count, rank, walk,
/// reported value — from that one snapshot, so a query racing
/// concurrent `record` calls is internally consistent (a percentile
/// can never chase a count that grew under its feet, and never
/// reflects a sample its own snapshot missed). The only best-effort
/// queries are [`min`](Self::min)/[`max`](Self::max) themselves:
/// they read separate atomics, so concurrently with recording they
/// may include an in-flight sample whose bucket increment a
/// simultaneous bucket query missed (or vice versa). They are exact
/// — never torn, never lossy — once recording has quiesced, and a
/// concurrent percentile still satisfies
/// `p ≤ max() · 17/16 + 1` because `max` only grows.
///
/// # Examples
///
/// ```
/// use sec_core::trace::Histogram;
/// let h = Histogram::new();
/// for v in [100, 200, 300, 400] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(50.0) >= 200);
/// assert_eq!(h.max(), 400);
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array from a
        // zeroed vec to keep the large array off the stack.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = v.into_boxed_slice().try_into().ok().unwrap();
        Self {
            buckets,
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free, allocation-free, callable
    /// concurrently from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[index_of(v)].fetch_add(1, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the bucket array into a local snapshot (one relaxed load
    /// per bucket, ~8 KiB of stack). Every statistic of one query is
    /// derived from the same snapshot — see the type-level note on
    /// query consistency.
    fn snapshot(&self) -> [u64; BUCKETS] {
        let mut snap = [0u64; BUCKETS];
        for (dst, b) in snap.iter_mut().zip(self.buckets.iter()) {
            *dst = b.load(Ordering::Relaxed);
        }
        snap
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Smallest recorded sample (0 when empty). Best-effort while
    /// recording is in flight (see the type-level note); exact once
    /// recorders have quiesced.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample (0 when empty). Best-effort while
    /// recording is in flight (see the type-level note); exact once
    /// recorders have quiesced. Monotone non-decreasing between
    /// resets, so a reading taken *after* a bucket snapshot is ≥
    /// every sample that snapshot holds.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples at bucket resolution (each sample
    /// counts as its bucket's upper edge, so the mean carries the same
    /// ≤ 6.25% relative error as `percentile`; 0.0 when empty).
    ///
    /// Count and sum come from one bucket snapshot, so the mean is
    /// consistent under concurrent recording — the previous exact
    /// running total was read separately from the bucket walk and
    /// could pair a stale sum with a fresh count (or vice versa).
    pub fn mean(&self) -> f64 {
        let snap = self.snapshot();
        let n: u64 = snap.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = snap
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * bucket_high(i) as f64)
            .sum();
        sum / n as f64
    }

    /// Value at or below which `p` percent of the samples fall, within
    /// the bucket resolution (≤ 6.25% relative error): the upper edge
    /// of the bucket holding the rank. Returns 0 when empty.
    ///
    /// The count that fixes the rank, the walk that finds it and the
    /// reported value all come from one bucket snapshot: a racing
    /// `record` can neither bump a later bucket between the two passes
    /// and shift the reported percentile off its own rank, nor leak an
    /// in-flight sample into the answer through the `min`/`max`
    /// atomics (earlier versions clamped the edge into `[min, max]`
    /// read *after* the snapshot, so a concurrent record could tug the
    /// reported value toward a sample the snapshot never saw).
    pub fn percentile(&self, p: f64) -> u64 {
        let snap = self.snapshot();
        let n: u64 = snap.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in snap.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i);
            }
        }
        // Unreachable: rank ≤ n and the walk visits every bucket.
        bucket_high(BUCKETS - 1)
    }

    /// Adds every sample of `other` into `self`. Min/max merge
    /// exactly; buckets add pairwise (identical layouts).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let t = theirs.load(Ordering::Relaxed);
            if t != 0 {
                mine.fetch_add(t, Ordering::Relaxed);
            }
        }
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Forgets every sample (not atomic with respect to concurrent
    /// recorders — quiesce first if exactness matters).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn low_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        // Every value below SUB has its own bucket: p100 of {0..15} is
        // exactly 15, p50 exactly 7 (rank 8 of 16).
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.percentile(50.0), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bucket_edges_are_continuous() {
        // index_of and bucket_high must agree: the upper edge of bucket
        // i lands in bucket i, and edge+1 lands in bucket i+1.
        for i in 0..BUCKETS - 1 {
            let hi = bucket_high(i);
            assert_eq!(index_of(hi), i, "edge {hi} of bucket {i}");
            assert_eq!(index_of(hi + 1), i + 1, "edge+1 of bucket {i}");
        }
        assert_eq!(index_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        for v in [3u64, 70, 900, 44_000] {
            a.record(v);
            c.record(v);
        }
        for v in [1u64, 5_000_000, 17] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), c.percentile(p));
        }
    }

    #[test]
    fn reset_forgets_everything() {
        let h = Histogram::new();
        h.record(123);
        h.record(456_789);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn mean_is_exact_low_and_bucket_bounded_high() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        // Values below SUB sit in exact buckets, so the bucket-derived
        // mean is the true mean.
        assert_eq!(h.mean(), 2.5);

        let g = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            g.record(v);
        }
        let exact = (1_000.0 + 2_000.0 + 4_000.0) / 3.0;
        let m = g.mean();
        // Upper-edge convention: never below the true mean, above it by
        // at most one sub-bucket width (1/16 relative) plus one.
        assert!(m >= exact, "mean {m} below exact {exact}");
        assert!(m <= exact * (1.0 + 1.0 / 16.0) + 1.0, "mean {m} too high");
    }

    /// Regression for the query/record race: rank and walk now come
    /// from one snapshot, so percentiles stay ordered and counts stay
    /// monotone while another thread is recording.
    #[test]
    fn queries_stay_consistent_under_concurrent_recording() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let stop = Arc::new(AtomicBool::new(false));
        let rec = {
            let h = Arc::clone(&h);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record(v % 100_000);
                    v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                }
            })
        };
        let mut last_count = 0u64;
        for _ in 0..2_000 {
            let c = h.count();
            assert!(c >= last_count, "count went backwards: {last_count} -> {c}");
            last_count = c;
            let (p50, p99) = (h.percentile(50.0), h.percentile(99.0));
            assert!(p50 <= p99, "p50 {p50} above p99 {p99}");
            // The documented concurrent bound: `max` is monotone and
            // read *after* the percentile's snapshot, so it dominates
            // every sample the snapshot saw; the reported bucket edge
            // can exceed it only by the bucket width (1/16) plus one.
            let max = h.max();
            assert!(
                p99 <= max + max / 16 + 1,
                "p99 {p99} above concurrent bound for max {max}"
            );
            let m = h.mean();
            assert!(m >= 0.0 && m.is_finite());
        }
        stop.store(true, Ordering::Relaxed);
        rec.join().unwrap();
    }

    /// The percentile answer is a pure function of the bucket
    /// snapshot: perturbing the best-effort `min`/`max` atomics (as an
    /// in-flight recorder would between a query's snapshot and its
    /// return) must not move it. Guards against reintroducing the old
    /// post-snapshot clamp into `[min, max]`.
    #[test]
    fn percentile_ignores_in_flight_min_max() {
        let h = Histogram::new();
        h.record(1_000);
        let before = h.percentile(50.0);
        assert_eq!(before, bucket_high(index_of(1_000)));
        // Simulate a racing `record(1)` / `record(1 << 40)` whose
        // bucket increments a concurrent snapshot missed.
        h.min.store(1, Ordering::Relaxed);
        h.max.store(1 << 40, Ordering::Relaxed);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(h.percentile(p), before, "p{p} moved with min/max");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        const THREADS: usize = 4;
        const PER: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let joins: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        h.record(t as u64 * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.count(), THREADS as u64 * PER);
        // Quiesced, min/max are exact — the best-effort caveat only
        // covers readings taken while recorders are in flight.
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), (THREADS as u64 - 1) * 1_000 + 996);
    }

    proptest! {
        /// The histogram percentile must bracket the exact (sorted
        /// vector) percentile: never below it, and above it by at most
        /// one sub-bucket width (1/16 relative) plus one.
        #[test]
        fn percentile_tracks_sorted_oracle(
            values in proptest::collection::vec(0u64..1_000_000_000, 1..400),
            p_tenths in 5u64..1000,
        ) {
            let p = p_tenths as f64 / 10.0;
            let mut values = values;
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            let rank = ((p / 100.0 * values.len() as f64).ceil() as usize)
                .clamp(1, values.len());
            let exact = values[rank - 1];
            let got = h.percentile(p);
            prop_assert!(got >= exact,
                "histogram p{p} = {got} below exact {exact}");
            let bound = exact + exact / 16 + 1;
            prop_assert!(got <= bound,
                "histogram p{p} = {got} above bound {bound} (exact {exact})");
        }

        /// Merging a partition of the samples equals recording them all
        /// into one histogram.
        #[test]
        fn merge_is_partition_invariant(
            values in proptest::collection::vec(0u64..u64::MAX, 0..200),
            split in 0usize..200,
        ) {
            let split = split.min(values.len());
            let (left, right) = values.split_at(split);
            let a = Histogram::new();
            let whole = Histogram::new();
            let b = Histogram::new();
            for &v in left { a.record(v); whole.record(v); }
            for &v in right { b.record(v); whole.record(v); }
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert_eq!(a.min(), whole.min());
            prop_assert_eq!(a.max(), whole.max());
            for p in [10.0, 50.0, 99.0] {
                prop_assert_eq!(a.percentile(p), whole.percentile(p));
            }
        }
    }
}
