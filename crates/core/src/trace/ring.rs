//! Fixed-capacity lock-free event rings.
//!
//! One ring per registered thread (plus one control ring for events
//! with no owning thread, e.g. a manual aggregator resize). Recording
//! claims a slot with a relaxed `fetch_add` on a monotonically growing
//! head and writes the event as four relaxed atomic words — no locks,
//! no allocation, and at capacity the ring silently overwrites its
//! oldest entries, so a long run keeps the most recent window.
//!
//! `drain` is a reporting-path operation: it snapshots the last ≤
//! capacity events in claim order. Concurrent recording during a drain
//! cannot corrupt memory (every word is atomic) but can tear an
//! in-flight event across old/new words; drain at quiescence when
//! exactness matters (the dump paths do).

use core::sync::atomic::{AtomicU64, Ordering};

/// Which side of a batch an operation announced on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLane {
    /// The insert lane (push / enqueue / add / insert).
    Add,
    /// The remove lane (pop / dequeue / read / remove).
    Remove,
}

impl TraceLane {
    fn code(self) -> u64 {
        match self {
            TraceLane::Add => 0,
            TraceLane::Remove => 1,
        }
    }

    fn from_code(c: u64) -> Self {
        if c == 0 {
            TraceLane::Add
        } else {
            TraceLane::Remove
        }
    }

    /// Short human label (`add` / `rem`).
    pub fn label(self) -> &'static str {
        match self {
            TraceLane::Add => "add",
            TraceLane::Remove => "rem",
        }
    }
}

/// One protocol-lifecycle event (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An operation joined a batch: `fetch_add` on the lane counter
    /// returned `seq`.
    Announce {
        /// The lane announced on.
        lane: TraceLane,
        /// The sequence number the announce drew.
        seq: u32,
    },
    /// This thread won the freezer election (drew sequence 0 and the
    /// `freezer_decided` test-and-set).
    FreezerElected,
    /// The freezer snapshotted the lane cuts and swapped in a fresh
    /// batch; `adds + removes` is the batch degree.
    BatchFrozen {
        /// Add-lane announcements at the freeze cut.
        adds: u32,
        /// Remove-lane announcements at the freeze cut.
        removes: u32,
    },
    /// The surviving combiner began applying the batch.
    CombineStart {
        /// The combiner's own lane.
        lane: TraceLane,
    },
    /// The combiner finished applying the batch.
    CombineEnd {
        /// Combine duration in nanoseconds.
        dur_ns: u64,
    },
    /// The batch result was published (`mark_applied`); waiters are
    /// released.
    Publish {
        /// Freeze→publish batch residency in nanoseconds.
        residency_ns: u64,
    },
    /// The operation entered its blocking wait (spin budget exhausted
    /// or first park, per the wait policy).
    Park,
    /// The operation came back from its blocking wait.
    Unpark,
    /// The aggregator layer grew to `k` active aggregators.
    Grow {
        /// Active-aggregator count after the step.
        k: u32,
    },
    /// The aggregator layer shrank to `k` active aggregators.
    Shrink {
        /// Active-aggregator count after the step.
        k: u32,
    },
    /// The thread's recycle cache overflowed `count` more blocks into
    /// the global pool since its last recorded overflow event.
    RecycleOverflow {
        /// Newly overflowed block count.
        count: u64,
    },
}

impl TraceEventKind {
    /// Short stable name (the Chrome-trace event name).
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Announce { .. } => "announce",
            TraceEventKind::FreezerElected => "freezer_elected",
            TraceEventKind::BatchFrozen { .. } => "batch_frozen",
            TraceEventKind::CombineStart { .. } => "combine_start",
            TraceEventKind::CombineEnd { .. } => "combine",
            TraceEventKind::Publish { .. } => "batch",
            TraceEventKind::Park => "park",
            TraceEventKind::Unpark => "unpark",
            TraceEventKind::Grow { .. } => "grow",
            TraceEventKind::Shrink { .. } => "shrink",
            TraceEventKind::RecycleOverflow { .. } => "recycle_overflow",
        }
    }

    /// Packs the kind into `(code, a, b)`; code 0 marks an unwritten
    /// slot, so kinds start at 1.
    fn encode(self) -> (u64, u64, u64) {
        match self {
            TraceEventKind::Announce { lane, seq } => (1, lane.code(), seq as u64),
            TraceEventKind::FreezerElected => (2, 0, 0),
            TraceEventKind::BatchFrozen { adds, removes } => (3, adds as u64, removes as u64),
            TraceEventKind::CombineStart { lane } => (4, lane.code(), 0),
            TraceEventKind::CombineEnd { dur_ns } => (5, dur_ns, 0),
            TraceEventKind::Publish { residency_ns } => (6, residency_ns, 0),
            TraceEventKind::Park => (7, 0, 0),
            TraceEventKind::Unpark => (8, 0, 0),
            TraceEventKind::Grow { k } => (9, k as u64, 0),
            TraceEventKind::Shrink { k } => (10, k as u64, 0),
            TraceEventKind::RecycleOverflow { count } => (11, count, 0),
        }
    }

    fn decode(code: u64, a: u64, b: u64) -> Option<Self> {
        Some(match code {
            1 => TraceEventKind::Announce {
                lane: TraceLane::from_code(a),
                seq: b as u32,
            },
            2 => TraceEventKind::FreezerElected,
            3 => TraceEventKind::BatchFrozen {
                adds: a as u32,
                removes: b as u32,
            },
            4 => TraceEventKind::CombineStart {
                lane: TraceLane::from_code(a),
            },
            5 => TraceEventKind::CombineEnd { dur_ns: a },
            6 => TraceEventKind::Publish { residency_ns: a },
            7 => TraceEventKind::Park,
            8 => TraceEventKind::Unpark,
            9 => TraceEventKind::Grow { k: a as u32 },
            10 => TraceEventKind::Shrink { k: a as u32 },
            11 => TraceEventKind::RecycleOverflow { count: a },
            _ => return None,
        })
    }
}

/// One timestamped, thread- and aggregator-attributed event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// Dense thread id of the recording thread (`u32::MAX` for
    /// control-plane events with no owning registered thread).
    pub tid: u32,
    /// Aggregator index the event concerns (0 when not applicable).
    pub agg: u32,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Event storage: four atomic words per slot.
struct Slot {
    words: [AtomicU64; 4],
}

/// A fixed-capacity overwrite-oldest event ring.
///
/// Single-writer by convention (each registered thread records only
/// into its own ring); the head claim is atomic, so the occasional
/// multi-writer use (the control ring) stays memory-safe.
pub struct EventRing {
    /// Total events ever claimed (monotonic; `head % capacity` is the
    /// next write position).
    head: AtomicU64,
    /// Per-thread operation counter driving the sampling decision.
    ops: AtomicU64,
    /// Watermark of the thread's recycle-overflow counter, for
    /// emitting deltas as events.
    overflows_seen: AtomicU64,
    slots: Box<[Slot]>,
}

impl EventRing {
    /// Creates a ring holding the most recent `capacity` events
    /// (rounded up to a power of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            head: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            overflows_seen: AtomicU64::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    words: [
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                    ],
                })
                .collect(),
        }
    }

    /// Ring capacity (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Advances the owning thread's op counter and reports whether this
    /// operation is sampled (`true` once per `mask + 1` ops).
    #[inline]
    pub(crate) fn tick(&self, mask: u64) -> bool {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        n & mask == 0
    }

    /// Updates the recycle-overflow watermark to `current` and returns
    /// the positive delta, if any.
    pub(crate) fn overflow_delta(&self, current: u64) -> Option<u64> {
        let seen = self.overflows_seen.swap(current, Ordering::Relaxed);
        (current > seen).then(|| current - seen)
    }

    /// Appends `ev`, overwriting the oldest event when full. Wait-free
    /// and allocation-free.
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed) as usize & (self.slots.len() - 1);
        let (code, a, b) = ev.kind.encode();
        let meta = ((ev.tid as u64) << 32) | ((ev.agg as u64 & 0xFF_FFFF) << 8) | code;
        let w = &self.slots[idx].words;
        w[0].store(ev.ts_ns, Ordering::Relaxed);
        w[2].store(a, Ordering::Relaxed);
        w[3].store(b, Ordering::Relaxed);
        // The meta word carries the kind code; writing it last (with
        // release ordering) keeps a racing drain from decoding a slot
        // whose payload words are still the previous event's.
        w[1].store(meta, Ordering::Release);
    }

    /// Snapshots the surviving events, oldest first (the last
    /// ≤ `capacity` recorded). Allocation happens here, off the hot
    /// path; see the module docs for the concurrency caveat.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let n = head.min(cap);
        let mut out = Vec::with_capacity(n as usize);
        for i in head - n..head {
            let w = &self.slots[(i % cap) as usize].words;
            let meta = w[1].load(Ordering::Acquire);
            let (code, a, b) = (
                meta & 0xFF,
                w[2].load(Ordering::Relaxed),
                w[3].load(Ordering::Relaxed),
            );
            if let Some(kind) = TraceEventKind::decode(code, a, b) {
                out.push(TraceEvent {
                    ts_ns: w[0].load(Ordering::Relaxed),
                    tid: (meta >> 32) as u32,
                    agg: ((meta >> 8) & 0xFF_FFFF) as u32,
                    kind,
                });
            }
        }
        out
    }
}

impl core::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: i,
            tid: 1,
            agg: (i % 3) as u32,
            kind: TraceEventKind::Announce {
                lane: if i.is_multiple_of(2) {
                    TraceLane::Add
                } else {
                    TraceLane::Remove
                },
                seq: i as u32,
            },
        }
    }

    #[test]
    fn drain_of_partial_ring_preserves_order() {
        let r = EventRing::new(16);
        for i in 0..5 {
            r.record(ev(i));
        }
        let got = r.drain();
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(*e, ev(i as u64));
        }
    }

    #[test]
    fn overwrite_at_capacity_keeps_the_newest_window() {
        let r = EventRing::new(8);
        assert_eq!(r.capacity(), 8);
        // Write 2× capacity; the drain must return exactly the last 8,
        // oldest first.
        for i in 0..16 {
            r.record(ev(i));
        }
        assert_eq!(r.recorded(), 16);
        let got = r.drain();
        assert_eq!(got.len(), 8);
        for (j, e) in got.iter().enumerate() {
            assert_eq!(*e, ev(8 + j as u64), "slot {j}");
        }
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = [
            TraceEventKind::Announce {
                lane: TraceLane::Remove,
                seq: 17,
            },
            TraceEventKind::FreezerElected,
            TraceEventKind::BatchFrozen {
                adds: 5,
                removes: 9,
            },
            TraceEventKind::CombineStart {
                lane: TraceLane::Add,
            },
            TraceEventKind::CombineEnd { dur_ns: 12_345 },
            TraceEventKind::Publish { residency_ns: 999 },
            TraceEventKind::Park,
            TraceEventKind::Unpark,
            TraceEventKind::Grow { k: 4 },
            TraceEventKind::Shrink { k: 3 },
            TraceEventKind::RecycleOverflow { count: 2 },
        ];
        let r = EventRing::new(kinds.len());
        for (i, &kind) in kinds.iter().enumerate() {
            r.record(TraceEvent {
                ts_ns: i as u64,
                tid: 7,
                agg: 2,
                kind,
            });
        }
        let got = r.drain();
        assert_eq!(got.len(), kinds.len());
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.kind, kinds[i]);
            assert_eq!(e.tid, 7);
            assert_eq!(e.agg, 2);
        }
    }

    #[test]
    fn sampling_tick_fires_once_per_period() {
        let r = EventRing::new(8);
        let mask = (1u64 << 3) - 1; // every 8th op
        let fired = (0..64).filter(|_| r.tick(mask)).count();
        assert_eq!(fired, 8);
        // mask 0 samples everything
        let r2 = EventRing::new(8);
        assert!((0..10).all(|_| r2.tick(0)));
    }

    #[test]
    fn overflow_delta_reports_increments_once() {
        let r = EventRing::new(8);
        assert_eq!(r.overflow_delta(0), None);
        assert_eq!(r.overflow_delta(3), Some(3));
        assert_eq!(r.overflow_delta(3), None);
        assert_eq!(r.overflow_delta(10), Some(7));
    }
}
