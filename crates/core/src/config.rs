//! Construction-time tunables of the SEC stack.
//!
//! Two orthogonal knobs shape the aggregator layer:
//!
//! * [`AggregatorPolicy`] — how many aggregators are *active*: a fixed
//!   `K` (the paper's model; Figure 4 picks `K = 2` as the best static
//!   all-round setting) or an elastic range `[min_k, max_k]` resized at
//!   runtime by the contention monitor (DESIGN.md §8);
//! * [`ShardPolicy`] — how thread ids map onto the active aggregators.
//!
//! A third, orthogonal knob — [`RecyclePolicy`] — governs whether
//! retired nodes and batches are recycled through per-thread free lists
//! instead of freed (DESIGN.md §10; on by default).
//!
//! A fourth — [`WaitPolicy`] — governs how blocking waits behave once
//! their optimistic check fails: pure spinning, spin-then-yield, or
//! spin-then-park through the registered-waiter event subsystem
//! (DESIGN.md §11; parking is the default).

pub use sec_reclaim::RecyclePolicy;
pub use sec_sync::event::WaitPolicy;

use crate::trace::TraceConfig;

/// How thread ids map to aggregators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Contiguous blocks: with `K` aggregators and `N` threads, thread
    /// `t` goes to aggregator `t * K / N`. This is the paper's default
    /// ("with two aggregators and ten threads, the first aggregator
    /// serves the first five threads") and keeps neighbouring thread
    /// ids — often neighbouring cores — on the same aggregator.
    Block,
    /// Striped: thread `t` goes to aggregator `t mod K`.
    RoundRobin,
    /// Topology-aware blocks: thread ids are first grouped into
    /// hardware-thread *neighbourhoods* of [`sec_sync::topology::smt_width`]
    /// siblings, and whole neighbourhoods are block-mapped onto the
    /// aggregators. SMT siblings share L1/L2, so keeping them on the
    /// same aggregator makes elimination partners cache-local; unlike
    /// plain [`ShardPolicy::Block`], a re-mapping to a different `K`
    /// never splits a sibling pair (DESIGN.md §6).
    Topology,
}

/// Pure topology-aware shard mapping: `tid`'s neighbourhood (of
/// `smt_width` consecutive ids, modelling SMT siblings) is block-mapped
/// over `k` aggregators.
///
/// Exposed as a free function so the property suite can sweep widths
/// the host doesn't have. Guarantees, for `k ≥ 1`, `max_threads ≥ 1`:
/// the result is `< k` (total), ids in the same neighbourhood map to
/// the same aggregator for **every** `k` (stability under re-mapping),
/// and neighbourhoods spread with block balance (each aggregator gets
/// `⌊M/k⌋` or `⌈M/k⌉` of the `M` neighbourhoods).
pub fn topology_shard(tid: usize, k: usize, max_threads: usize, smt_width: usize) -> usize {
    let k = k.max(1);
    let w = smt_width.max(1);
    let groups = sec_sync::topology::neighbourhoods(max_threads, w);
    let g = (tid / w).min(groups - 1);
    (g * k / groups).min(k - 1)
}

/// How many aggregators are active: statically fixed or elastic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregatorPolicy {
    /// The paper's model: `K` aggregators, chosen at construction.
    Fixed(usize),
    /// Elastic sharding (DESIGN.md §8): the active aggregator count
    /// moves inside `[min_k, max_k]`, driven by the contention monitor
    /// that the freezers feed with per-batch measurements.
    Adaptive {
        /// Lower bound on the active aggregator count (≥ 1).
        min_k: usize,
        /// Upper bound on the active aggregator count (≥ `min_k`);
        /// also the number of aggregator slots allocated up front.
        max_k: usize,
        /// Operations per decision window: the monitor re-evaluates the
        /// active count once at least this many operations have been
        /// frozen since the previous decision.
        window: u64,
    },
}

impl AggregatorPolicy {
    /// Default decision-window length for [`AggregatorPolicy::adaptive`]:
    /// long enough that one window sees many batches (decisions follow
    /// sustained contention, not one burst), short enough to react
    /// within milliseconds at realistic throughputs.
    pub const DEFAULT_WINDOW: u64 = 1024;

    /// Elastic policy over `[min_k, max_k]` with the default window.
    pub const fn adaptive(min_k: usize, max_k: usize) -> Self {
        AggregatorPolicy::Adaptive {
            min_k,
            max_k,
            window: Self::DEFAULT_WINDOW,
        }
    }

    /// Smallest permitted active count (normalized: ≥ 1).
    pub fn min_k(&self) -> usize {
        match *self {
            AggregatorPolicy::Fixed(k) => k.max(1),
            AggregatorPolicy::Adaptive { min_k, .. } => min_k.max(1),
        }
    }

    /// Largest permitted active count (normalized: ≥ [`min_k`](Self::min_k)).
    pub fn max_k(&self) -> usize {
        match *self {
            AggregatorPolicy::Fixed(k) => k.max(1),
            AggregatorPolicy::Adaptive { max_k, .. } => max_k.max(self.min_k()),
        }
    }

    /// Number of aggregator slots a stack must allocate to honor this
    /// policy (the largest count that can ever become active).
    pub fn slots(&self) -> usize {
        self.max_k()
    }

    /// The decision-window length (0 for [`AggregatorPolicy::Fixed`],
    /// which never decides; clamped to ≥ 1 for adaptive).
    pub fn window(&self) -> u64 {
        match *self {
            AggregatorPolicy::Fixed(_) => 0,
            AggregatorPolicy::Adaptive { window, .. } => window.max(1),
        }
    }

    /// The active count a fresh stack starts with: `K` for fixed; the
    /// paper's best static setting (`K = 2`, Figure 4) clamped into
    /// `[min_k, max_k]` for adaptive, so the monitor starts from the
    /// known-good default and only moves away on evidence.
    pub fn initial_active(&self) -> usize {
        match *self {
            AggregatorPolicy::Fixed(k) => k.max(1),
            AggregatorPolicy::Adaptive { .. } => 2.clamp(self.min_k(), self.max_k()),
        }
    }

    /// `true` for [`AggregatorPolicy::Adaptive`].
    pub fn is_adaptive(&self) -> bool {
        matches!(self, AggregatorPolicy::Adaptive { .. })
    }
}

/// Configuration of a [`SecStack`](crate::SecStack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecConfig {
    /// Number of aggregator slots allocated by the stack (≥ 1). Under
    /// [`AggregatorPolicy::Fixed`] all of them are active; under
    /// [`AggregatorPolicy::Adaptive`] this equals `max_k` and the
    /// *active* prefix grows and shrinks at runtime. Kept in sync with
    /// `policy` by the constructors and builders.
    pub aggregators: usize,
    /// Maximum number of threads that will ever register (≥ 1). Sizes
    /// the elimination arrays and the reclamation registry.
    pub max_threads: usize,
    /// Spin iterations the freezer waits before freezing its batch
    /// (§3.1: "the freezer thread executes a short backoff before
    /// freezing B to increase the elimination degree"). 0 disables.
    pub freezer_backoff: u32,
    /// `yield_now` calls appended to the freezer's backoff. On a machine
    /// with free cores a yield returns almost immediately (nothing to
    /// switch to), so this costs little; on an *oversubscribed* host it
    /// is the only way the backoff can achieve the paper's goal — other
    /// threads must get CPU time to announce into the batch. 0 disables.
    pub freezer_yields: u32,
    /// Thread-to-aggregator mapping.
    pub shard_policy: ShardPolicy,
    /// Fixed or elastic active-aggregator count.
    pub policy: AggregatorPolicy,
    /// Node/batch recycling through per-thread free lists (DESIGN.md
    /// §10). On by default ([`RecyclePolicy::per_thread`]): steady-state
    /// operations then perform zero heap allocations.
    pub recycle: RecyclePolicy,
    /// How blocking waits (freezer/combiner waits, batch-pointer
    /// swaps) behave after their spin phase (DESIGN.md §11). Parking
    /// by default ([`WaitPolicy::spin_then_park`]): waiters leave the
    /// run queue, so throughput survives thread counts far beyond the
    /// core count.
    pub wait: WaitPolicy,
    /// sec-trace observability knobs (DESIGN.md §14). Off by default;
    /// inert unless the crate was built with the `trace` cargo
    /// feature, in which case an enabled config makes the structure
    /// build a [`TraceRecorder`](crate::trace::TraceRecorder) and feed
    /// its event rings and phase histograms.
    pub trace: TraceConfig,
}

impl SecConfig {
    /// Paper-default configuration: `K = 2` aggregators, a short freezer
    /// backoff, block sharding.
    pub fn new(aggregators: usize, max_threads: usize) -> Self {
        // Defaults from the freezer_backoff ablation (see
        // EXPERIMENTS.md): pause-loop spins tax every batch without
        // aggregating anything once the host is saturated, while a
        // single yield is cheap on idle cores and is what actually
        // fills batches when threads outnumber cores — at 16 threads it
        // lifts the batching degree from 1.0 to ~7 and the elimination
        // share from 0% to ~70% (the paper's Table 1 zone).
        Self {
            aggregators: aggregators.max(1),
            max_threads: max_threads.max(1),
            freezer_backoff: 0,
            freezer_yields: 1,
            shard_policy: ShardPolicy::Block,
            policy: AggregatorPolicy::Fixed(aggregators.max(1)),
            recycle: RecyclePolicy::default(),
            wait: WaitPolicy::default(),
            trace: TraceConfig::off(),
        }
    }

    /// Elastic configuration: active count in `[min_k, max_k]` with the
    /// default decision window, for up to `max_threads` threads.
    pub fn adaptive(min_k: usize, max_k: usize, max_threads: usize) -> Self {
        Self::new(max_k, max_threads).aggregator_policy(AggregatorPolicy::adaptive(min_k, max_k))
    }

    /// [`SecConfig::adaptive`] with an explicit decision window (tests
    /// and demos shorten it so the monitor decides within small runs).
    pub fn adaptive_windowed(min_k: usize, max_k: usize, window: u64, max_threads: usize) -> Self {
        Self::new(max_k, max_threads).aggregator_policy(AggregatorPolicy::Adaptive {
            min_k,
            max_k,
            window,
        })
    }

    /// Sets the freezer backoff (builder style).
    pub fn freezer_backoff(mut self, spins: u32) -> Self {
        self.freezer_backoff = spins;
        self
    }

    /// Sets the freezer yield count (builder style).
    pub fn freezer_yields(mut self, yields: u32) -> Self {
        self.freezer_yields = yields;
        self
    }

    /// Sets the sharding policy (builder style).
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard_policy = policy;
        self
    }

    /// Sets the node-recycling policy (builder style).
    pub fn recycle(mut self, recycle: RecyclePolicy) -> Self {
        self.recycle = recycle;
        self
    }

    /// Sets the blocking-wait policy (builder style).
    pub fn wait_policy(mut self, wait: WaitPolicy) -> Self {
        self.wait = wait;
        self
    }

    /// Sets the tracing config (builder style).
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the aggregator policy (builder style), re-deriving the
    /// allocated slot count from it.
    pub fn aggregator_policy(mut self, policy: AggregatorPolicy) -> Self {
        self.policy = policy;
        self.aggregators = policy.slots();
        self
    }

    /// Aggregator index for thread `tid` when `k` aggregators are
    /// active. Always `< k` for `k ≥ 1`.
    pub fn aggregator_for(&self, tid: usize, k: usize) -> usize {
        debug_assert!(tid < self.max_threads);
        let k = k.max(1);
        match self.shard_policy {
            ShardPolicy::Block => (tid * k / self.max_threads).min(k - 1),
            ShardPolicy::RoundRobin => tid % k,
            ShardPolicy::Topology => {
                topology_shard(tid, k, self.max_threads, sec_sync::topology::smt_width())
            }
        }
    }

    /// Aggregator index for thread `tid` with every allocated
    /// aggregator active (the static mapping; under an adaptive policy
    /// the stack remaps through [`SecConfig::aggregator_for`] with the
    /// *current* active count instead).
    pub fn aggregator_of(&self, tid: usize) -> usize {
        self.aggregator_for(tid, self.aggregators)
    }

    /// Upper bound on threads that can announce into any single batch;
    /// sizes each batch's elimination array (the paper's per-aggregator
    /// `P`).
    ///
    /// Under [`AggregatorPolicy::Adaptive`] this is `max_threads`: a
    /// re-mapping can transiently route threads holding a stale active
    /// count into the same aggregator, and with `min_k = 1` all of them
    /// legitimately share one. Under [`AggregatorPolicy::Fixed`] the
    /// mapping is static, so the exact per-aggregator maximum suffices.
    pub fn per_aggregator_capacity(&self) -> usize {
        if self.policy.is_adaptive() {
            return self.max_threads;
        }
        match self.shard_policy {
            // Ceiling division; exact for Block, an upper bound for both.
            ShardPolicy::Block | ShardPolicy::RoundRobin => {
                self.max_threads.div_ceil(self.aggregators)
            }
            // Neighbourhood granularity can overfill one aggregator
            // past ⌈N/K⌉ (e.g. 10 threads, width 4, K = 2: aggregator 0
            // serves two whole neighbourhoods = 8 threads); count the
            // actual maximum.
            ShardPolicy::Topology => {
                let mut counts = vec![0usize; self.aggregators];
                for t in 0..self.max_threads {
                    counts[self.aggregator_of(t)] += 1;
                }
                counts.into_iter().max().unwrap_or(1).max(1)
            }
        }
    }
}

impl Default for SecConfig {
    /// `K = 2`, capacity for the host's hardware threads (at least 2).
    fn default() -> Self {
        Self::new(2, sec_sync::topology::hardware_threads().max(2) * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_block_assignment() {
        // "with two aggregators and ten threads, the first aggregator
        //  serves the first five threads and the second the remaining
        //  five" (§3.2).
        let c = SecConfig::new(2, 10);
        for t in 0..5 {
            assert_eq!(c.aggregator_of(t), 0, "tid {t}");
        }
        for t in 5..10 {
            assert_eq!(c.aggregator_of(t), 1, "tid {t}");
        }
    }

    #[test]
    fn block_assignment_is_balanced_and_in_range() {
        for k in 1..=5 {
            for n in 1..=32 {
                let c = SecConfig::new(k, n);
                let mut counts = vec![0usize; k];
                for t in 0..n {
                    let a = c.aggregator_of(t);
                    assert!(a < k);
                    counts[a] += 1;
                }
                let cap = c.per_aggregator_capacity();
                assert!(counts.iter().all(|&x| x <= cap), "k={k} n={n} {counts:?}");
            }
        }
    }

    #[test]
    fn round_robin_stripes() {
        let c = SecConfig::new(3, 9).shard_policy(ShardPolicy::RoundRobin);
        assert_eq!(c.aggregator_of(0), 0);
        assert_eq!(c.aggregator_of(1), 1);
        assert_eq!(c.aggregator_of(2), 2);
        assert_eq!(c.aggregator_of(3), 0);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let c = SecConfig::new(0, 0);
        assert_eq!(c.aggregators, 1);
        assert_eq!(c.max_threads, 1);
        assert_eq!(c.aggregator_of(0), 0);
        assert_eq!(c.per_aggregator_capacity(), 1);
    }

    #[test]
    fn builder_methods_apply() {
        let c = SecConfig::new(2, 4)
            .freezer_backoff(7)
            .shard_policy(ShardPolicy::RoundRobin);
        assert_eq!(c.freezer_backoff, 7);
        assert_eq!(c.shard_policy, ShardPolicy::RoundRobin);
    }

    #[test]
    fn recycling_defaults_on_and_builder_toggles() {
        let c = SecConfig::new(2, 4);
        assert!(c.recycle.is_on(), "recycling is on by default");
        assert_eq!(
            c.recycle.cache_cap(),
            RecyclePolicy::DEFAULT_CACHE_CAP,
            "default cache bound"
        );
        let c = c.recycle(RecyclePolicy::Off);
        assert!(!c.recycle.is_on());
        let c = c.recycle(RecyclePolicy::PerThread { cache_cap: 8 });
        assert_eq!(c.recycle.cache_cap(), 8);
    }

    #[test]
    fn wait_policy_defaults_to_park_and_builder_toggles() {
        let c = SecConfig::new(2, 4);
        assert!(c.wait.parks(), "parking is the default wait policy");
        assert_eq!(c.wait, WaitPolicy::spin_then_park());
        let c = c.wait_policy(WaitPolicy::SpinThenYield);
        assert_eq!(c.wait, WaitPolicy::SpinThenYield);
        let c = c.wait_policy(WaitPolicy::SpinThenPark { spin_rounds: 3 });
        assert_eq!(c.wait, WaitPolicy::SpinThenPark { spin_rounds: 3 });
    }

    #[test]
    fn trace_defaults_off_and_builder_toggles() {
        let c = SecConfig::new(2, 4);
        assert!(!c.trace.enabled, "tracing is off by default");
        let c = c.trace(TraceConfig::on().sample_shift(0).ring_capacity(128));
        assert!(c.trace.enabled);
        assert_eq!(c.trace.sample_shift, 0);
        assert_eq!(c.trace.ring_capacity, 128);
    }

    #[test]
    fn default_is_two_aggregators() {
        let c = SecConfig::default();
        assert_eq!(c.aggregators, 2);
        assert!(c.max_threads >= 2);
    }

    #[test]
    fn fixed_policy_mirrors_aggregator_count() {
        let c = SecConfig::new(3, 8);
        assert_eq!(c.policy, AggregatorPolicy::Fixed(3));
        assert_eq!(c.policy.min_k(), 3);
        assert_eq!(c.policy.max_k(), 3);
        assert_eq!(c.policy.initial_active(), 3);
        assert_eq!(c.policy.window(), 0);
        assert!(!c.policy.is_adaptive());
    }

    #[test]
    fn adaptive_config_allocates_max_k_slots() {
        let c = SecConfig::adaptive(1, 4, 16);
        assert_eq!(c.aggregators, 4);
        assert!(c.policy.is_adaptive());
        assert_eq!(c.policy.min_k(), 1);
        assert_eq!(c.policy.max_k(), 4);
        // Starts at the paper's best static K, clamped into range.
        assert_eq!(c.policy.initial_active(), 2);
        assert_eq!(c.policy.window(), AggregatorPolicy::DEFAULT_WINDOW);
        // Stale-snapshot re-mapping can route everyone to one batch.
        assert_eq!(c.per_aggregator_capacity(), 16);
    }

    #[test]
    fn adaptive_policy_normalizes_degenerate_bounds() {
        let p = AggregatorPolicy::Adaptive {
            min_k: 0,
            max_k: 0,
            window: 0,
        };
        assert_eq!(p.min_k(), 1);
        assert_eq!(p.max_k(), 1);
        assert_eq!(p.window(), 1);
        assert_eq!(p.initial_active(), 1);

        let p = AggregatorPolicy::adaptive(5, 3); // inverted bounds
        assert_eq!(p.min_k(), 5);
        assert_eq!(p.max_k(), 5, "max_k clamps up to min_k");
    }

    #[test]
    fn aggregator_for_varies_with_active_count() {
        let c = SecConfig::adaptive(1, 4, 8);
        for k in 1..=4 {
            for t in 0..8 {
                assert!(c.aggregator_for(t, k) < k, "k={k} t={t}");
            }
        }
        // k = 1 funnels everyone to aggregator 0.
        for t in 0..8 {
            assert_eq!(c.aggregator_for(t, 1), 0);
        }
    }

    #[test]
    fn topology_shard_is_total_and_keeps_siblings_together() {
        for w in 1..=4usize {
            for n in 1..=24usize {
                for k in 1..=5usize {
                    for t in 0..n {
                        let a = topology_shard(t, k, n, w);
                        assert!(a < k, "t={t} k={k} n={n} w={w}");
                        // The whole neighbourhood agrees.
                        let base = (t / w) * w;
                        for s in base..(base + w).min(n) {
                            assert_eq!(topology_shard(s, k, n, w), a, "siblings split");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn topology_capacity_covers_actual_assignment() {
        for n in [4usize, 10, 16, 17] {
            for k in 1..=4usize {
                let c = SecConfig::new(k, n).shard_policy(ShardPolicy::Topology);
                let mut counts = vec![0usize; k];
                for t in 0..n {
                    counts[c.aggregator_of(t)] += 1;
                }
                assert_eq!(
                    c.per_aggregator_capacity(),
                    *counts.iter().max().unwrap(),
                    "n={n} k={k}"
                );
            }
        }
    }
}
