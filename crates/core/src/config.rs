//! Construction-time tunables of the SEC stack.

/// How thread ids map to aggregators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Contiguous blocks: with `K` aggregators and `N` threads, thread
    /// `t` goes to aggregator `t * K / N`. This is the paper's default
    /// ("with two aggregators and ten threads, the first aggregator
    /// serves the first five threads") and keeps neighbouring thread
    /// ids — often neighbouring cores — on the same aggregator.
    Block,
    /// Striped: thread `t` goes to aggregator `t mod K`.
    RoundRobin,
}

/// Configuration of a [`SecStack`](crate::SecStack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecConfig {
    /// Number of aggregators `K` (≥ 1). The paper's evaluation uses 2
    /// as the best all-round setting (Figure 4).
    pub aggregators: usize,
    /// Maximum number of threads that will ever register (≥ 1). Sizes
    /// the elimination arrays and the reclamation registry.
    pub max_threads: usize,
    /// Spin iterations the freezer waits before freezing its batch
    /// (§3.1: "the freezer thread executes a short backoff before
    /// freezing B to increase the elimination degree"). 0 disables.
    pub freezer_backoff: u32,
    /// `yield_now` calls appended to the freezer's backoff. On a machine
    /// with free cores a yield returns almost immediately (nothing to
    /// switch to), so this costs little; on an *oversubscribed* host it
    /// is the only way the backoff can achieve the paper's goal — other
    /// threads must get CPU time to announce into the batch. 0 disables.
    pub freezer_yields: u32,
    /// Thread-to-aggregator mapping.
    pub shard_policy: ShardPolicy,
}

impl SecConfig {
    /// Paper-default configuration: `K = 2` aggregators, a short freezer
    /// backoff, block sharding.
    pub fn new(aggregators: usize, max_threads: usize) -> Self {
        // Defaults from the freezer_backoff ablation (see
        // EXPERIMENTS.md): pause-loop spins tax every batch without
        // aggregating anything once the host is saturated, while a
        // single yield is cheap on idle cores and is what actually
        // fills batches when threads outnumber cores — at 16 threads it
        // lifts the batching degree from 1.0 to ~7 and the elimination
        // share from 0% to ~70% (the paper's Table 1 zone).
        Self {
            aggregators: aggregators.max(1),
            max_threads: max_threads.max(1),
            freezer_backoff: 0,
            freezer_yields: 1,
            shard_policy: ShardPolicy::Block,
        }
    }

    /// Sets the freezer backoff (builder style).
    pub fn freezer_backoff(mut self, spins: u32) -> Self {
        self.freezer_backoff = spins;
        self
    }

    /// Sets the freezer yield count (builder style).
    pub fn freezer_yields(mut self, yields: u32) -> Self {
        self.freezer_yields = yields;
        self
    }

    /// Sets the sharding policy (builder style).
    pub fn shard_policy(mut self, policy: ShardPolicy) -> Self {
        self.shard_policy = policy;
        self
    }

    /// Aggregator index for thread `tid` under this configuration.
    pub fn aggregator_of(&self, tid: usize) -> usize {
        debug_assert!(tid < self.max_threads);
        match self.shard_policy {
            ShardPolicy::Block => tid * self.aggregators / self.max_threads,
            ShardPolicy::RoundRobin => tid % self.aggregators,
        }
    }

    /// Upper bound on threads assigned to any single aggregator; sizes
    /// each batch's elimination array (the paper's per-aggregator `P`).
    pub fn per_aggregator_capacity(&self) -> usize {
        // Ceiling division; exact for Block, an upper bound for both.
        self.max_threads.div_ceil(self.aggregators)
    }
}

impl Default for SecConfig {
    /// `K = 2`, capacity for the host's hardware threads (at least 2).
    fn default() -> Self {
        Self::new(2, sec_sync::topology::hardware_threads().max(2) * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_block_assignment() {
        // "with two aggregators and ten threads, the first aggregator
        //  serves the first five threads and the second the remaining
        //  five" (§3.2).
        let c = SecConfig::new(2, 10);
        for t in 0..5 {
            assert_eq!(c.aggregator_of(t), 0, "tid {t}");
        }
        for t in 5..10 {
            assert_eq!(c.aggregator_of(t), 1, "tid {t}");
        }
    }

    #[test]
    fn block_assignment_is_balanced_and_in_range() {
        for k in 1..=5 {
            for n in 1..=32 {
                let c = SecConfig::new(k, n);
                let mut counts = vec![0usize; k];
                for t in 0..n {
                    let a = c.aggregator_of(t);
                    assert!(a < k);
                    counts[a] += 1;
                }
                let cap = c.per_aggregator_capacity();
                assert!(counts.iter().all(|&x| x <= cap), "k={k} n={n} {counts:?}");
            }
        }
    }

    #[test]
    fn round_robin_stripes() {
        let c = SecConfig::new(3, 9).shard_policy(ShardPolicy::RoundRobin);
        assert_eq!(c.aggregator_of(0), 0);
        assert_eq!(c.aggregator_of(1), 1);
        assert_eq!(c.aggregator_of(2), 2);
        assert_eq!(c.aggregator_of(3), 0);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let c = SecConfig::new(0, 0);
        assert_eq!(c.aggregators, 1);
        assert_eq!(c.max_threads, 1);
        assert_eq!(c.aggregator_of(0), 0);
        assert_eq!(c.per_aggregator_capacity(), 1);
    }

    #[test]
    fn builder_methods_apply() {
        let c = SecConfig::new(2, 4)
            .freezer_backoff(7)
            .shard_policy(ShardPolicy::RoundRobin);
        assert_eq!(c.freezer_backoff, 7);
        assert_eq!(c.shard_policy, ShardPolicy::RoundRobin);
    }

    #[test]
    fn default_is_two_aggregators() {
        let c = SecConfig::default();
        assert_eq!(c.aggregators, 2);
        assert!(c.max_threads >= 2);
    }
}
