//! The generic SEC combining engine (DESIGN.md §12).
//!
//! The paper's core contribution is one mechanism — announcement
//! batching, batch freezing, counter-based elimination, and combining —
//! yet it is useful for many structures. This module owns that
//! mechanism *once*:
//!
//! * announcement slots and sequence numbers ([`CombineBatch`]),
//! * seq-0 freezer election and the freeze/publish state machine
//!   ([`CombineEngine::freeze_batch`]),
//! * the `wait_applied`/`mark_applied` waiter seam (batch.rs),
//! * elastic-K re-mapping — the contention monitor, the epoch fence,
//!   and the lazy per-handle `seen_k` re-map ([`OpState`]),
//! * recycle-aware batch/slot allocation (DESIGN.md §10),
//! * per-batch stats recording ([`SecStats`]).
//!
//! A data structure instantiates the engine by implementing
//! [`CombineOp`]: a sequential "apply this frozen batch to the shared
//! structure" for each lane, plus hooks for elimination and result
//! consumption. `SecStack`, `SecQueue`, `SecDeque` and `SecCounter`
//! are all such instantiations (`SecPool` composes single-aggregator
//! stacks and therefore instantiates it transitively); see DESIGN.md
//! §12 for the state machine and the `CombineOp` contract.
//!
//! ## One driver for mixed and homogeneous batches
//!
//! The engine's driver ([`CombineEngine::run`]) implements the paper's
//! Algorithms 1 and 2 over the two lanes of a [`CombineBatch`]. The
//! key observation that lets the queue's per-end (homogeneous) batches
//! ride the same driver: a homogeneous batch is a mixed batch whose
//! other lane's counter is pinned at zero. The inclusion test, the
//! elimination test (`my_seq < other_cut` — never true), the combiner
//! election (`my_seq == other_cut` — true exactly for seq 0) and the
//! freezer test&set (a single seq-0 announcer always wins) all
//! degenerate to the homogeneous protocol without a single branch of
//! family-specific driver code.

pub(crate) mod batch;
pub(crate) mod durable;

use crate::config::{AggregatorPolicy, SecConfig};
use crate::sec::elastic::{self, ContentionMonitor, Direction};
use crate::sec::stats::SecStats;
use crate::trace::{TraceConfig, TraceEventKind, TraceLane, TraceRecorder, TraceSnapshot};
pub(crate) use batch::{
    mark_applied, wait_applied, wait_ptr, CombineAggregator, CombineBatch, Role, MAX_BULK_OPS,
};
use core::ptr;
use core::sync::atomic::{AtomicUsize, Ordering};
use sec_reclaim::{Collector, Guard, Handle as ReclaimHandle};
use sec_sync::event::spin_wait;
use sec_sync::CachePadded;
use std::time::Instant;

impl Role {
    /// The opposite lane (elimination partners and combiner election
    /// look across).
    #[inline]
    pub(crate) fn other(self) -> Role {
        match self {
            Role::Add => Role::Remove,
            Role::Remove => Role::Add,
        }
    }

    /// The lane tag trace events carry.
    #[inline]
    fn trace_lane(self) -> TraceLane {
        match self {
            Role::Add => TraceLane::Add,
            Role::Remove => TraceLane::Remove,
        }
    }
}

/// A family's sequential apply logic — everything the engine does
/// *not* own. Implementors hold the shared structure itself (the
/// stack's top pointer, the queue's head/tail, the deque's locked
/// `VecDeque`, the counter's accumulator) and apply frozen batches to
/// it; the engine guarantees each hook's calling discipline:
///
/// * [`combine_add`]/[`combine_remove`] run on exactly one thread per
///   frozen batch and lane (the surviving operation with the lowest
///   sequence number), strictly after the batch's cuts are published
///   and before `applied` is flipped;
/// * [`eliminate`] runs only for mixed batches, on the remove with a
///   same-sequence add partner in the batch;
/// * [`take_result`] runs once per surviving remove, strictly after
///   `applied` (publication order makes the combiner's writes
///   visible).
///
/// [`combine_add`]: CombineOp::combine_add
/// [`combine_remove`]: CombineOp::combine_remove
/// [`eliminate`]: CombineOp::eliminate
/// [`take_result`]: CombineOp::take_result
pub(crate) trait CombineOp: Sized + Send + Sync {
    /// The node type flowing through announcement slots and result
    /// chains.
    type Node: Send;
    /// What a remove-lane operation returns.
    type Value;

    /// Apply the batch's surviving adds (sequence numbers
    /// `my_seq..add_at_freeze`) to the shared structure. `my_seq ==
    /// remove_at_freeze` — the combiner is the lowest-sequence add
    /// that did not eliminate. Families without an add lane never see
    /// this called.
    fn combine_add(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Self::Node>,
        my_seq: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) {
        let _ = (eng, batch, my_seq, agg_idx, guard);
        unreachable!("this family has no add-lane combiner");
    }

    /// Apply the batch's surviving removes: take `remove_at_freeze -
    /// my_seq` values out of the shared structure and publish them
    /// (typically as a chain through `batch.result_head`) for
    /// [`CombineOp::take_result`].
    fn combine_remove(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Self::Node>,
        my_seq: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    );

    /// A remove whose sequence number pairs with an add of the batch:
    /// consume the partner's announced node. Only mixed-batch families
    /// (stack, deque) pair operations; homogeneous families keep the
    /// default.
    fn eliminate(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Self::Node>,
        my_seq: usize,
        guard: &Guard<'_, '_>,
    ) -> Self::Value {
        let _ = (eng, batch, my_seq, guard);
        unreachable!("homogeneous batches never eliminate");
    }

    /// Consume the result at `offset` of the published chain (`offset`
    /// = the remove's rank among the batch's non-eliminated removes).
    /// Runs after `applied`; `None` reports EMPTY. Bulk aggregators
    /// (addressed by `agg_idx`) deliver results through the announced
    /// request instead and return `None` here.
    fn take_result(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Self::Node>,
        offset: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) -> Option<Self::Value>;
}

/// Per-thread announcement-mapping state: which aggregator this thread
/// announces to, and the active-K it was computed against (a mismatch
/// triggers the lazy elastic re-map). Families embed this in their
/// handles; fixed-aggregator families ignore it by announcing through
/// [`Lane::At`].
#[derive(Debug, Clone)]
pub(crate) struct OpState {
    tid: usize,
    seen_k: usize,
    agg_idx: usize,
}

impl OpState {
    /// This thread's dense id (== its reclamation slot).
    pub(crate) fn tid(&self) -> usize {
        self.tid
    }

    /// The aggregator this thread last announced to.
    pub(crate) fn aggregator(&self) -> usize {
        self.agg_idx
    }
}

/// How an operation picks its aggregator.
pub(crate) enum Lane<'s> {
    /// Policy-mapped (and elastically re-mapped) by thread id — the
    /// stack's and counter's announcement path.
    Mapped(&'s mut OpState),
    /// A fixed aggregator index — the queue's and deque's per-end
    /// path.
    At(usize),
}

/// How the engine lays out its aggregators at construction.
pub(crate) enum AggLayout<'a> {
    /// One aggregator per policy slot, addressed through
    /// [`Lane::Mapped`]; elastic policies resize the active prefix.
    Mapped {
        /// Whether announcers bring nodes (and batches therefore carry
        /// slot arrays).
        with_slots: bool,
        /// Dedicated bulk aggregators appended after the mapped prefix
        /// (always slotted, sized for every thread), addressed through
        /// `Lane::At(engine.bulk_agg(i))`. Elastic re-mapping never
        /// reaches them: the active count is bounded by the policy's
        /// slots, which the bulk suffix sits beyond.
        bulk: usize,
    },
    /// One aggregator per listed end, addressed through [`Lane::At`];
    /// each entry says whether that end's batches carry slots.
    Fixed {
        /// Per-end slot flags.
        ends: &'a [bool],
        /// Dedicated bulk aggregators appended after the fixed ends,
        /// with the same semantics as [`AggLayout::Mapped::bulk`].
        bulk: usize,
    },
}

/// The batched-combining engine: aggregators, batches, freezing,
/// elimination pairing, combiner election, waiter parking, elastic
/// sharding, recycling and stats — everything of the SEC protocol
/// that is not a family's sequential apply logic.
pub(crate) struct CombineEngine<O: CombineOp> {
    /// Family name for diagnostics (overflow asserts, registration).
    name: &'static str,
    /// The family's apply logic + shared structure. Declared before
    /// `collector` so structure teardown (op's `Drop`) runs before the
    /// collector frees retired husks.
    op: O,
    config: SecConfig,
    /// All aggregator slots the layout can ever activate. Under
    /// [`AggregatorPolicy::Adaptive`] only the prefix `aggs[..active]`
    /// receives new [`Lane::Mapped`] announcements; retired slots keep
    /// their current batch (in-flight batches drain themselves) and
    /// are reused when the active set grows back.
    aggs: Box<[CachePadded<CombineAggregator<O::Node>>]>,
    /// Number of currently active aggregators, in
    /// `[policy.min_k(), policy.max_k()]`. Constant for
    /// [`AggregatorPolicy::Fixed`]; irrelevant to [`Lane::At`]
    /// announcements.
    active: CachePadded<AtomicUsize>,
    /// Elastic-sharding window accumulator + epoch fence (inert under
    /// a fixed policy).
    monitor: ContentionMonitor,
    /// Index of the first dedicated bulk aggregator (== the mapped
    /// prefix length for [`AggLayout::Mapped`]; past the end when the
    /// layout carries none).
    bulk_base: usize,
    collector: Collector,
    stats: SecStats,
    /// Construction instant, anchoring [`TraceSnapshot::at_ns`].
    born: Instant,
    /// The sec-trace recording substrate (DESIGN.md §14), built only
    /// when [`TraceConfig::enabled`] is set. The field itself exists
    /// only under the `trace` cargo feature; every hook goes through
    /// [`CombineEngine::tracer`], which degenerates to a constant
    /// `None` without it — the optimizer then erases the hooks
    /// entirely, so default builds pay nothing.
    #[cfg(feature = "trace")]
    tracer: Option<Box<TraceRecorder>>,
}

// Safety: all engine-shared state is atomics; node/batch ownership
// transfer follows the protocol's exactly-once consumption discipline,
// and the op is itself Send + Sync.
unsafe impl<O: CombineOp> Send for CombineEngine<O> {}
unsafe impl<O: CombineOp> Sync for CombineEngine<O> {}

impl<O: CombineOp> CombineEngine<O> {
    /// Builds an engine from a family's apply logic and configuration.
    ///
    /// Normalizes the two aggregator knobs first: `aggregators`
    /// (allocated slots) and `policy` are kept in sync by the config
    /// builders, but the fields are public — make the
    /// direct-assignment path behave like the documented one.
    pub(crate) fn new(name: &'static str, op: O, config: SecConfig, layout: AggLayout<'_>) -> Self {
        let mut config = config;
        match config.policy {
            AggregatorPolicy::Fixed(k) if k != config.aggregators => {
                config.policy = AggregatorPolicy::Fixed(config.aggregators);
            }
            AggregatorPolicy::Fixed(_) => {}
            AggregatorPolicy::Adaptive { .. } => config.aggregators = config.policy.slots(),
        }
        let cap = config.per_aggregator_capacity();
        // (with_slots, capacity) per aggregator: the mapped prefix and
        // fixed ends use the policy-derived capacity; dedicated bulk
        // aggregators must admit every thread (any thread may issue a
        // bulk call regardless of its mapped aggregator).
        let (slotting, bulk_base): (Vec<(bool, usize)>, usize) = match layout {
            AggLayout::Mapped { with_slots, bulk } => {
                let mut v = vec![(with_slots, cap); config.aggregators];
                v.extend((0..bulk).map(|_| (true, config.max_threads)));
                (v, config.aggregators)
            }
            AggLayout::Fixed { ends, bulk } => {
                let mut v: Vec<_> = ends.iter().map(|&ws| (ws, cap)).collect();
                let base = v.len();
                v.extend((0..bulk).map(|_| (true, config.max_threads)));
                (v, base)
            }
        };
        Self {
            name,
            op,
            aggs: slotting
                .iter()
                .map(|&(ws, c)| CachePadded::new(CombineAggregator::new(c, ws)))
                .collect(),
            active: CachePadded::new(AtomicUsize::new(config.policy.initial_active())),
            monitor: ContentionMonitor::new(),
            bulk_base,
            collector: Collector::with_recycle(config.max_threads, config.recycle),
            stats: SecStats::new(),
            born: Instant::now(),
            #[cfg(feature = "trace")]
            tracer: config
                .trace
                .enabled
                .then(|| Box::new(TraceRecorder::new(&config.trace, config.max_threads))),
            config,
        }
    }

    /// Registers the calling thread: a reclamation handle plus the
    /// announcement-mapping state families embed in their handles.
    pub(crate) fn register(&self) -> (ReclaimHandle<'_>, OpState) {
        let reclaim = self.collector.register().unwrap_or_else(|| {
            panic!(
                "{}: more threads registered than the configured max_threads",
                self.name
            )
        });
        let tid = reclaim.slot();
        let seen_k = self.active.load(Ordering::Acquire);
        let agg_idx = self.config.aggregator_for(tid, seen_k);
        (
            reclaim,
            OpState {
                tid,
                seen_k,
                agg_idx,
            },
        )
    }

    /// The configuration the engine was built with.
    pub(crate) fn config(&self) -> &SecConfig {
        &self.config
    }

    /// Pre-registration configuration access for family builders
    /// (consuming-receiver builders guarantee exclusivity).
    pub(crate) fn config_mut(&mut self) -> &mut SecConfig {
        &mut self.config
    }

    /// Re-points the collector's recycle policy (builder path; must
    /// run before any thread registers, which `&mut` guarantees).
    pub(crate) fn set_recycle_policy(&mut self, recycle: crate::config::RecyclePolicy) {
        self.config.recycle = recycle;
        self.collector.set_recycle_policy(recycle);
    }

    /// The family's apply logic / shared structure.
    pub(crate) fn op(&self) -> &O {
        &self.op
    }

    /// Mutable op access for family builders (pre-registration).
    pub(crate) fn op_mut(&mut self) -> &mut O {
        &mut self.op
    }

    /// The batching/elimination/combining instrumentation.
    pub(crate) fn stats(&self) -> &SecStats {
        &self.stats
    }

    /// The trace recorder, when one was configured *and* the `trace`
    /// cargo feature is compiled in. This accessor is the hooks' single
    /// seam: without the feature it is a constant `None`, so every
    /// `if let Some(t) = self.tracer()` hook folds away and the hot
    /// path is byte-identical to an untraced build.
    #[inline]
    pub(crate) fn tracer(&self) -> Option<&TraceRecorder> {
        #[cfg(feature = "trace")]
        {
            self.tracer.as_deref()
        }
        #[cfg(not(feature = "trace"))]
        {
            None
        }
    }

    /// Re-points the tracing configuration (builder path; `&mut`
    /// guarantees no thread has registered yet). Rebuilds the recorder
    /// to match under the `trace` feature; without it only the stored
    /// config changes.
    pub(crate) fn set_trace_config(&mut self, trace: TraceConfig) {
        self.config.trace = trace;
        #[cfg(feature = "trace")]
        {
            self.tracer = trace
                .enabled
                .then(|| Box::new(TraceRecorder::new(&trace, self.config.max_threads)));
        }
    }

    /// A point-in-time poll of the protocol counters (works with or
    /// without the `trace` cargo feature — it reads the always-on
    /// [`SecStats`]).
    pub(crate) fn trace_snapshot(&self) -> TraceSnapshot {
        let r = self.stats.report();
        TraceSnapshot {
            at_ns: self.born.elapsed().as_nanos() as u64,
            ops: r.ops,
            batches: r.batches,
            eliminated: r.eliminated,
            combined: r.combined,
            parks: r.parks,
            wakes: r.wakes,
            grows: r.grows,
            shrinks: r.shrinks,
            active_aggregators: self.active_aggregators(),
        }
    }

    /// Reclamation statistics (diagnostic).
    pub(crate) fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.collector.stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances) and returns the resulting stats.
    pub(crate) fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.collector.quiesce(rounds)
    }

    /// Number of currently active aggregators.
    pub(crate) fn active_aggregators(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The aggregator index of the layout's `i`-th dedicated bulk
    /// aggregator (see [`AggLayout::Mapped`]).
    #[inline]
    pub(crate) fn bulk_agg(&self, i: usize) -> usize {
        self.bulk_base + i
    }

    /// Forces the active aggregator count to `k` (clamped into the
    /// policy's `[min_k, max_k]`). Serializes with monitor decisions
    /// through the same election and arms the same epoch fence; each
    /// step is recorded in the resize counters.
    pub(crate) fn set_active_aggregators(&self, k: usize) -> usize {
        let k = k.clamp(self.config.policy.min_k(), self.config.policy.max_k());
        // A blocking wait on the concurrent decider's `end_decision`:
        // policy-aware, but never parked (decisions are a few loads —
        // there is no waker registration on the monitor).
        spin_wait(self.config.wait, || self.monitor.begin_decision());
        let prev = self.active.swap(k, Ordering::AcqRel);
        for _ in k..prev {
            self.stats.record_shrink();
        }
        for _ in prev..k {
            self.stats.record_grow();
        }
        if k != prev {
            self.monitor.arm_fence(self.collector.global_epoch());
            if let Some(t) = self.tracer() {
                t.record_control(if k > prev {
                    TraceEventKind::Grow { k: k as u32 }
                } else {
                    TraceEventKind::Shrink { k: k as u32 }
                });
            }
        }
        self.monitor.end_decision();
        k
    }

    /// One elastic-resize attempt: called by the freezer whose batch
    /// filled the decision window (DESIGN.md §8). Loses gracefully to
    /// a concurrent decider, and holds while the epoch fence of the
    /// previous transition is still up.
    fn try_elastic_resize(&self) {
        if !self.monitor.begin_decision() {
            return;
        }
        let epoch = self.collector.global_epoch();
        if self.monitor.fence_passed(epoch) {
            let sample = self.monitor.take_window(self.stats.cas_failures_now());
            let active = self.active.load(Ordering::Relaxed);
            let (min_k, max_k) = (self.config.policy.min_k(), self.config.policy.max_k());
            match elastic::decide(&sample, active, min_k, max_k, self.config.max_threads) {
                // Hysteresis: act only when two consecutive windows
                // vote the same way.
                Some(dir) if self.monitor.confirm(dir) => {
                    match dir {
                        Direction::Grow => {
                            self.active.store(active + 1, Ordering::Release);
                            self.stats.record_grow();
                            if let Some(t) = self.tracer() {
                                t.record_control(TraceEventKind::Grow {
                                    k: (active + 1) as u32,
                                });
                            }
                        }
                        Direction::Shrink => {
                            self.active.store(active - 1, Ordering::Release);
                            self.stats.record_shrink();
                            if let Some(t) = self.tracer() {
                                t.record_control(TraceEventKind::Shrink {
                                    k: (active - 1) as u32,
                                });
                            }
                        }
                    }
                    self.monitor.clear_pending();
                    self.monitor.arm_fence(epoch);
                }
                Some(_) => {}
                None => self.monitor.clear_pending(),
            }
        }
        self.monitor.end_decision();
    }

    /// The aggregator for `st`'s thread under the *current* active
    /// count, re-mapping lazily when the count changed since the last
    /// look. One shared (rarely-written, cache-padded) load per call;
    /// the re-map itself is a pure index computation.
    #[inline]
    fn remap(&self, st: &mut OpState) -> usize {
        let k = self.active.load(Ordering::Acquire);
        if k != st.seen_k {
            st.seen_k = k;
            st.agg_idx = self.config.aggregator_for(st.tid, k);
        }
        st.agg_idx
    }

    // ------------------------------------------------------------------
    // Freezing (paper lines 28–32)
    // ------------------------------------------------------------------

    /// `FreezeBatch`: aggregation backoff, snapshot both lane
    /// counters, install a fresh batch, retire the frozen one —
    /// identical for every family (a homogeneous batch simply
    /// snapshots a zero on its unused lane).
    fn freeze_batch(
        &self,
        agg: &CombineAggregator<O::Node>,
        batch_ptr: *mut CombineBatch<O::Node>,
        guard: &Guard<'_, '_>,
        tid: usize,
        agg_idx: usize,
    ) {
        let batch = unsafe { &*batch_ptr };

        // §3.1: the freezer backs off briefly so more operations join
        // the batch, raising the elimination and combining degrees.
        // The yields matter on oversubscribed hosts, where the joining
        // threads need CPU time before the cut (see SecConfig).
        for _ in 0..self.config.freezer_backoff {
            core::hint::spin_loop();
        }
        for _ in 0..self.config.freezer_yields {
            std::thread::yield_now();
        }

        // Lines 29–30: the snapshot order (remove lane first) matches
        // the paper; any interleaved announcements simply land on one
        // side of the cut or the other. The values are published to
        // every waiter by the Release store of the batch pointer below.
        // Each snapshot is a packed (announcements, ops) pair — one
        // load is a consistent prefix of the lane's fetch_add order —
        // so op-weighted accounting stays exact under bulk
        // announcements (see `batch::pack_announce`).
        let removes = batch.remove_count.load(Ordering::Acquire);
        let adds = batch.add_count.load(Ordering::Acquire);
        batch.remove_at_freeze.store(removes, Ordering::Relaxed);
        batch.add_at_freeze.store(adds, Ordering::Relaxed);
        let add_ops = batch::unpack_ops(adds);
        let remove_ops = batch::unpack_ops(removes);

        self.stats.record_batch(add_ops, remove_ops);
        // sec-trace per-batch hooks (never sampled — batches are ~P×
        // rarer than ops): stamp the freeze instant for the combiner's
        // residency measurement and log the frozen degree. The stamp
        // precedes the batch-pointer swap below, whose Release/Acquire
        // edge publishes it to every included waiter.
        if let Some(t) = self.tracer() {
            batch.frozen_at.store(t.now(), Ordering::Relaxed);
            t.record(
                tid,
                agg_idx as u32,
                TraceEventKind::BatchFrozen {
                    adds: add_ops as u32,
                    removes: remove_ops as u32,
                },
            );
        }
        // Elastic sharding: the same frozen snapshot feeds the
        // contention monitor (§8 — measurement free-rides on the
        // freeze), in operations so bulk announcements register their
        // full weight. Inert for fixed-policy families.
        let window_full = self.config.policy.is_adaptive()
            && self
                .monitor
                .on_batch(add_ops, remove_ops, self.config.policy.window());

        // Line 31: installing the new batch is the freeze's
        // linearization aid — it simultaneously (a) signals spinning
        // announcers that the `*_at_freeze` fields are valid (Release)
        // and (b) directs new announcers to the fresh batch. The fresh
        // batch reuses recycled batch/array blocks when the free lists
        // have them.
        let fresh = CombineBatch::alloc_with(guard.handle(), agg.capacity, agg.with_slots);
        agg.batch.store(fresh, Ordering::Release);
        // Wake the frozen batch's registered swap-waiters: the Release
        // store above published the cut, so the handshake's
        // condition-before-notify contract holds (DESIGN.md §11).
        agg.event.notify_key(batch_ptr as usize, self.stats.wait());

        // The frozen batch is now unreachable for *new* pins; threads
        // already inside it are pinned and keep it alive. Retirement is
        // centralized in the freezer, which is unique per batch
        // (Observation B.1); once quiesced, its blocks feed future
        // `alloc_with` calls instead of the heap.
        unsafe { CombineBatch::retire_with(guard, batch_ptr) };

        // Recycle pressure: if this thread's free-list cache spilled
        // blocks to the global pool since the last freeze we traced,
        // log the delta (a watermark diff — cheap, and only here, off
        // the announce path).
        if let Some(t) = self.tracer() {
            if let Some(count) = t.overflow_delta(tid, guard.handle().recycle_overflows()) {
                t.record(
                    tid,
                    agg_idx as u32,
                    TraceEventKind::RecycleOverflow { count },
                );
            }
        }

        // The freezer that filled the decision window runs the resize
        // decision — *after* publishing the fresh batch, so the
        // announcers spinning on the batch pointer never wait through
        // the decision work.
        if window_full {
            self.try_elastic_resize();
        }
    }

    /// Announce-and-freeze prologue (lines 8–13 / 57–62): the seq-0
    /// announcer that wins the test&set freezes; everyone else waits
    /// (parked, per the configured policy) for the batch swap.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn freeze_or_wait(
        &self,
        agg: &CombineAggregator<O::Node>,
        batch_ptr: *mut CombineBatch<O::Node>,
        my_seq: usize,
        guard: &Guard<'_, '_>,
        tid: usize,
        agg_idx: usize,
        sampled: Option<&TraceRecorder>,
    ) {
        let batch = unsafe { &*batch_ptr };
        if my_seq == 0 && !batch.freezer_decided.swap(true, Ordering::AcqRel) {
            // We won the test&set among the (at most two) first
            // announcers: play the freezer 𝑓_B.
            if let Some(t) = self.tracer() {
                t.record(tid, agg_idx as u32, TraceEventKind::FreezerElected);
            }
            self.freeze_batch(agg, batch_ptr, guard, tid, agg_idx);
        } else {
            // Line 11/60: wait for the freezer to swap the batch
            // pointer — parked (per the configured policy) on the
            // aggregator's event queue; the freezer wakes us.
            if let Some(t) = sampled {
                t.record(tid, agg_idx as u32, TraceEventKind::Park);
            }
            agg.event.wait_until(
                batch_ptr as usize,
                self.config.wait,
                self.stats.wait(),
                || !ptr::eq(agg.batch.load(Ordering::Acquire), batch_ptr),
            );
            if let Some(t) = sampled {
                t.record(tid, agg_idx as u32, TraceEventKind::Unpark);
            }
        }
    }

    // ------------------------------------------------------------------
    // sec-trace hook helpers (each folds to its bare operation when
    // `trace` is None — always the case in untraced builds)
    // ------------------------------------------------------------------

    /// Runs a combiner's apply closure with the sampled-op combine
    /// hooks around it: `combine_start` event, timed apply, duration
    /// histogram, `combine` span event.
    #[inline]
    fn traced_combine(
        &self,
        trace: Option<&TraceRecorder>,
        tid: usize,
        agg_idx: usize,
        role: Role,
        apply: impl FnOnce(),
    ) {
        if let Some(t) = trace {
            t.record(
                tid,
                agg_idx as u32,
                TraceEventKind::CombineStart {
                    lane: role.trace_lane(),
                },
            );
            let t0 = t.now();
            apply();
            let dur_ns = t.delta_ns(t0);
            t.combine_duration().record(dur_ns);
            t.record(tid, agg_idx as u32, TraceEventKind::CombineEnd { dur_ns });
        } else {
            apply();
        }
    }

    /// Publish hook, run by the combiner right after `mark_applied`:
    /// freeze→publish batch residency, read off the freezer's
    /// `frozen_at` stamp (zero when the freezer was not traced —
    /// nothing is recorded then).
    #[inline]
    fn trace_publish(
        &self,
        trace: Option<&TraceRecorder>,
        tid: usize,
        agg_idx: usize,
        batch: &CombineBatch<O::Node>,
    ) {
        if let Some(t) = trace {
            let frozen = batch.frozen_at.load(Ordering::Relaxed);
            if frozen != 0 {
                let residency_ns = t.delta_ns(frozen);
                t.batch_residency().record(residency_ns);
                t.record(
                    tid,
                    agg_idx as u32,
                    TraceEventKind::Publish { residency_ns },
                );
            }
        }
    }

    /// The applied-flag wait with park/unpark events around it for
    /// sampled ops.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn traced_wait_applied(
        &self,
        trace: Option<&TraceRecorder>,
        tid: usize,
        agg_idx: usize,
        agg: &CombineAggregator<O::Node>,
        batch: &CombineBatch<O::Node>,
        batch_ptr: *mut CombineBatch<O::Node>,
    ) {
        if let Some(t) = trace {
            t.record(tid, agg_idx as u32, TraceEventKind::Park);
        }
        wait_applied(agg, batch, batch_ptr, self.config.wait, self.stats.wait());
        if let Some(t) = trace {
            t.record(tid, agg_idx as u32, TraceEventKind::Unpark);
        }
    }

    // ------------------------------------------------------------------
    // The driver (paper Algorithms 1 and 2, one implementation)
    // ------------------------------------------------------------------

    /// Drives one operation through the full
    /// announce → freeze → (eliminate | combine | wait) → publish
    /// cycle and returns its result.
    ///
    /// `node` is the operation's announced node (null for operations
    /// that bring none — the slot store is skipped); excluded
    /// announcements (after the freeze) retry in a newer batch with
    /// the node still exclusively theirs.
    pub(crate) fn run(
        &self,
        lane: Lane<'_>,
        role: Role,
        node: *mut O::Node,
        reclaim: &ReclaimHandle<'_>,
    ) -> Option<O::Value> {
        self.run_weighted(lane, role, node, 1, reclaim)
    }

    /// [`CombineEngine::run`] for an announcement carrying `ops`
    /// operations — the bulk entry point. The node is announced once
    /// (one sequence number, one slot), but the lane counter advances
    /// by `ops` on its operation half, so freezing, stats and the
    /// contention monitor account the batch's true degree.
    pub(crate) fn run_weighted(
        &self,
        lane: Lane<'_>,
        role: Role,
        node: *mut O::Node,
        ops: u32,
        reclaim: &ReclaimHandle<'_>,
    ) -> Option<O::Value> {
        debug_assert!(
            (1..=MAX_BULK_OPS as u32).contains(&ops),
            "{}: bulk weight {} outside 1..={} (families chunk above the bound)",
            self.name,
            ops,
            MAX_BULK_OPS
        );
        // sec-trace sampling decision, hoisted out of the protocol:
        // unsampled ops (and untraced builds, where `tracer()` is a
        // constant `None`) take exactly one predictable branch here and
        // pass `None` down — every hook inside the driver then folds to
        // nothing.
        let tid = reclaim.slot();
        let trace = self.tracer().filter(|t| t.sample(tid));
        let t_op = trace.map(|t| t.now());
        let out = self.run_inner(lane, role, node, ops, reclaim, tid, trace);
        if let (Some(t), Some(t0)) = (trace, t_op) {
            t.op_latency().record(t.delta_ns(t0));
        }
        out
    }

    /// The driver proper; `trace` is `Some` only for sampled ops of a
    /// traced structure (see [`CombineEngine::run`]).
    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        mut lane: Lane<'_>,
        role: Role,
        node: *mut O::Node,
        ops: u32,
        reclaim: &ReclaimHandle<'_>,
        tid: usize,
        trace: Option<&TraceRecorder>,
    ) -> Option<O::Value> {
        loop {
            // Re-resolve the mapping each attempt: an excluded retry
            // after an elastic re-mapping must land on the thread's
            // *new* aggregator, or a retired one would keep receiving
            // work.
            let agg_idx = match &mut lane {
                Lane::Mapped(st) => self.remap(st),
                Lane::At(i) => *i,
            };
            let agg = &*self.aggs[agg_idx];
            let guard = reclaim.pin();
            // Line 5/55.
            let batch_ptr = agg.batch.load(Ordering::Acquire);
            let batch = unsafe { &*batch_ptr };
            // Line 6/56: announce. AcqRel: the freezer's counter read
            // and our increment are ordered; the low half of the packed
            // prior value is our sequence number (the high half tallies
            // op weight for the freezer's accounting).
            let my_seq = batch::unpack_count(
                batch
                    .count(role)
                    .fetch_add(batch::pack_announce(ops), Ordering::AcqRel),
            );
            assert!(
                my_seq < batch.capacity,
                "{}: more announcements ({}) than the aggregator capacity ({}) — was \
                 the structure shared by more threads than its configured max_threads?",
                self.name,
                my_seq + 1,
                batch.capacity
            );
            // Line 7: publish the node *before* anything else, so
            // neither an eliminating partner nor the combiner waits on
            // us longer than necessary (§3.1).
            if !node.is_null() {
                batch.slots[my_seq].store(node, Ordering::Release);
            }
            if let Some(t) = trace {
                t.record(
                    tid,
                    agg_idx as u32,
                    TraceEventKind::Announce {
                        lane: role.trace_lane(),
                        seq: my_seq as u32,
                    },
                );
            }
            let t_announce = trace.map(|t| t.now());

            // Lines 8–13 / 57–62.
            self.freeze_or_wait(agg, batch_ptr, my_seq, &guard, tid, agg_idx, trace);
            if let (Some(t), Some(t0)) = (trace, t_announce) {
                t.announce_to_freeze().record(t.delta_ns(t0));
            }

            // Line 14/63: inclusion test.
            let my_cut = batch.frozen_cut(role);
            if my_seq >= my_cut {
                // Excluded (announced after the freeze): retry in a
                // newer batch.
                continue;
            }
            let other_cut = batch.frozen_cut(role.other());
            match role {
                Role::Add => {
                    // Line 15: elimination test — if a remove with our
                    // sequence number belongs to the batch, it consumes
                    // our node and we are done the moment the batch
                    // froze.
                    if my_seq >= other_cut {
                        // Line 16: combiner test.
                        if my_seq == other_cut {
                            self.traced_combine(trace, tid, agg_idx, role, || {
                                self.op.combine_add(self, batch, my_seq, agg_idx, &guard);
                            });
                            // Line 18 — and wake the batch's waiters.
                            mark_applied(agg, batch, batch_ptr, self.stats.wait());
                            self.trace_publish(trace, tid, agg_idx, batch);
                        } else {
                            // Line 20: parked wait for the combiner.
                            self.traced_wait_applied(trace, tid, agg_idx, agg, batch, batch_ptr);
                        }
                    }
                    // Line 24: adds return no value.
                    return None;
                }
                Role::Remove => {
                    // Line 64: elimination test — the add with our
                    // sequence number belongs to the batch; take its
                    // value.
                    if my_seq < other_cut {
                        return Some(self.op.eliminate(self, batch, my_seq, &guard));
                    }
                    // Line 69: combiner test.
                    if my_seq == other_cut {
                        self.traced_combine(trace, tid, agg_idx, role, || {
                            self.op.combine_remove(self, batch, my_seq, agg_idx, &guard);
                        });
                        // Line 71 — and wake the batch's waiters.
                        mark_applied(agg, batch, batch_ptr, self.stats.wait());
                        self.trace_publish(trace, tid, agg_idx, batch);
                    } else {
                        // Line 73: parked wait for the combiner.
                        self.traced_wait_applied(trace, tid, agg_idx, agg, batch, batch_ptr);
                    }
                    // Line 76: consume our offset of the result chain.
                    return self
                        .op
                        .take_result(self, batch, my_seq - other_cut, agg_idx, &guard);
                }
            }
        }
    }
}

impl<O: CombineOp> Drop for CombineEngine<O> {
    fn drop(&mut self) {
        // No handles exist (they borrow the engine), so everything is
        // quiescent and each aggregator's current batch is virgin (any
        // announcement freezes its batch before returning, installing
        // a newer one). Retired batches are freed by the collector's
        // own drop. After this, field drop order tears down the op
        // (the family's shared structure) and then the collector.
        for agg in self.aggs.iter() {
            let b = agg.batch.load(Ordering::Relaxed);
            if !b.is_null() {
                drop(unsafe { Box::from_raw(b) });
            }
        }
    }
}

#[cfg(test)]
mod tests;
