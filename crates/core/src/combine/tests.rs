//! Engine-only unit tests: the announce→freeze→combine→publish state
//! machine, seq-0 freezer election, and elastic re-mapping under a
//! forced resize — driven through a synthetic [`CombineOp`] so no data
//! structure family is involved.

use super::*;
use crate::config::SecConfig;
use crate::sec::node::Node;
use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;

/// What a synthetic combiner call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Applied {
    agg_idx: usize,
    role: Role,
    count: usize,
}

/// A structureless family: adds fold their operands into `sum`,
/// removes apply to nothing and report EMPTY, eliminated pairs hand
/// the operand over directly. Every combiner call is logged so tests
/// can assert the engine's calling discipline.
struct TallyOp {
    sum: AtomicU64,
    log: Mutex<Vec<Applied>>,
}

impl TallyOp {
    fn new() -> Self {
        Self {
            sum: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
        }
    }
}

impl CombineOp for TallyOp {
    type Node = Node<u64>;
    type Value = u64;

    fn combine_add(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Self::Node>,
        my_seq: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) {
        let cut = batch.frozen_cut(Role::Add);
        for i in my_seq..cut {
            let n = wait_ptr(&batch.slots[i], eng.config().wait);
            let v = unsafe { Node::take_value(n) };
            unsafe { guard.retire_recycle(n) };
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
        self.log.lock().unwrap().push(Applied {
            agg_idx,
            role: Role::Add,
            count: cut - my_seq,
        });
    }

    fn combine_remove(
        &self,
        _eng: &CombineEngine<Self>,
        batch: &CombineBatch<Self::Node>,
        my_seq: usize,
        agg_idx: usize,
        _guard: &Guard<'_, '_>,
    ) {
        let cut = batch.frozen_cut(Role::Remove);
        batch
            .result_head
            .store(core::ptr::null_mut(), Ordering::Release);
        self.log.lock().unwrap().push(Applied {
            agg_idx,
            role: Role::Remove,
            count: cut - my_seq,
        });
    }

    fn eliminate(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Self::Node>,
        my_seq: usize,
        guard: &Guard<'_, '_>,
    ) -> u64 {
        let n = wait_ptr(&batch.slots[my_seq], eng.config().wait);
        let v = unsafe { Node::take_value(n) };
        unsafe { guard.retire_recycle(n) };
        v
    }

    fn take_result(
        &self,
        _eng: &CombineEngine<Self>,
        _batch: &CombineBatch<Self::Node>,
        _offset: usize,
        _agg_idx: usize,
        _guard: &Guard<'_, '_>,
    ) -> Option<u64> {
        None
    }
}

fn engine(config: SecConfig) -> CombineEngine<TallyOp> {
    CombineEngine::new(
        "tally",
        TallyOp::new(),
        config,
        AggLayout::Mapped {
            with_slots: true,
            bulk: 0,
        },
    )
}

#[test]
fn single_add_runs_the_full_cycle() {
    let eng = engine(SecConfig::new(1, 1));
    let (reclaim, mut st) = eng.register();
    let n = Node::alloc_with(&reclaim, 7u64);
    assert_eq!(eng.run(Lane::Mapped(&mut st), Role::Add, n, &reclaim), None);
    assert_eq!(eng.op().sum.load(Ordering::Relaxed), 7);
    let log = eng.op().log.lock().unwrap().clone();
    assert_eq!(
        log,
        vec![Applied {
            agg_idx: 0,
            role: Role::Add,
            count: 1
        }]
    );
    let r = eng.stats().report();
    assert_eq!((r.batches, r.ops, r.combined, r.eliminated), (1, 1, 1, 0));
}

#[test]
fn single_remove_applies_and_reports_empty() {
    let eng = engine(SecConfig::new(1, 1));
    let (reclaim, mut st) = eng.register();
    let out = eng.run(
        Lane::Mapped(&mut st),
        Role::Remove,
        core::ptr::null_mut(),
        &reclaim,
    );
    assert_eq!(out, None);
    let log = eng.op().log.lock().unwrap().clone();
    assert_eq!(
        log,
        vec![Applied {
            agg_idx: 0,
            role: Role::Remove,
            count: 1
        }]
    );
}

#[test]
fn freeze_publishes_cut_swaps_batch_and_publish_wakes() {
    // Drive the state machine by hand, transition by transition, while
    // pinned (a retired batch stays readable until quiescence —
    // exactly the discipline every waiter relies on).
    let eng = engine(SecConfig::new(1, 2));
    let (reclaim, _st) = eng.register();
    let guard = reclaim.pin();
    let agg = &*eng.aggs[0];
    let b0 = agg.batch.load(Ordering::Acquire);
    let batch = unsafe { &*b0 };

    // Announce: one add (weight 1), sequence number 0 — the packed
    // prior value is zero on a virgin batch.
    assert_eq!(
        batch
            .count(Role::Add)
            .fetch_add(batch::pack_announce(1), Ordering::AcqRel),
        0
    );
    let n = Node::alloc_with(&reclaim, 41u64);
    batch.slots[0].store(n, Ordering::Release);

    // Freezer election: the first seq-0 announcer wins the test&set,
    // any later claimant loses.
    assert!(
        !batch.freezer_decided.swap(true, Ordering::AcqRel),
        "first wins"
    );
    assert!(
        batch.freezer_decided.swap(true, Ordering::AcqRel),
        "second loses"
    );

    // Freeze: cuts published, fresh batch installed, frozen one
    // retired (still readable: we are pinned).
    eng.freeze_batch(agg, b0, &guard, 0, 0);
    // The snapshots are packed (count | ops<<32): one add of weight 1.
    assert_eq!(
        batch.add_at_freeze.load(Ordering::Acquire),
        batch::pack_announce(1)
    );
    assert_eq!(batch.remove_at_freeze.load(Ordering::Acquire), 0);
    assert_eq!(batch.frozen_cut(Role::Add), 1);
    assert_eq!(batch.frozen_cut(Role::Remove), 0);
    assert!(
        !ptr::eq(agg.batch.load(Ordering::Acquire), b0),
        "batch swapped"
    );
    assert!(!batch.applied.load(Ordering::Acquire), "not yet applied");

    // Combine + publish: the combiner applies, flips `applied`, wakes.
    eng.op().combine_add(&eng, batch, 0, 0, &guard);
    mark_applied(agg, batch, b0, eng.stats().wait());
    assert!(batch.applied.load(Ordering::Acquire));
    assert_eq!(eng.op().sum.load(Ordering::Relaxed), 41);
    drop(guard);
}

#[test]
fn concurrent_mix_conserves_values_and_elects_unique_combiners() {
    const THREADS: usize = 6;
    const PER: usize = 400;
    let eng = engine(SecConfig::new(2, THREADS));
    let eliminated_sum: u64 = thread::scope(|scope| {
        (0..THREADS)
            .map(|t| {
                let eng = &eng;
                scope.spawn(move || {
                    let (reclaim, mut st) = eng.register();
                    let mut got = 0u64;
                    for i in 0..PER {
                        if (t + i) % 2 == 0 {
                            let n = Node::alloc_with(&reclaim, 1u64);
                            eng.run(Lane::Mapped(&mut st), Role::Add, n, &reclaim);
                        } else if let Some(v) = eng.run(
                            Lane::Mapped(&mut st),
                            Role::Remove,
                            core::ptr::null_mut(),
                            &reclaim,
                        ) {
                            got += v;
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .sum()
    });
    let r = eng.stats().report();
    // Every operation was included in exactly one frozen batch and
    // either eliminated or combined.
    assert_eq!(r.ops, (THREADS * PER) as u64);
    assert_eq!(r.eliminated + r.combined, r.ops);
    // Adds carried 1 each: applied adds landed in `sum`, eliminated
    // adds were handed to their partner remove.
    let adds: u64 = (0..THREADS)
        .map(|t| (0..PER).filter(|i| (t + i) % 2 == 0).count() as u64)
        .sum();
    assert_eq!(eng.op().sum.load(Ordering::Relaxed) + eliminated_sum, adds);
    // Combiner election is unique: one combiner call per batch-lane
    // with survivors, and their sizes account for every combined op.
    let log = eng.op().log.lock().unwrap();
    assert!(
        log.len() as u64 <= r.batches,
        "at most one combiner per batch"
    );
    assert_eq!(log.iter().map(|a| a.count as u64).sum::<u64>(), r.combined);
}

#[test]
fn forced_resize_remaps_mapped_announcements() {
    const MAX: usize = 8;
    let eng = engine(SecConfig::adaptive(1, 4, MAX));
    // Register a few handles to obtain distinct dense tids.
    let handles: Vec<_> = (0..4).map(|_| eng.register()).collect();
    let (reclaim, mut st) = {
        let (r, s) = &handles[3];
        (r, s.clone())
    };
    assert_eq!(st.tid(), 3);

    for k in [2usize, 4, 1, 3] {
        assert_eq!(eng.set_active_aggregators(k), k);
        assert_eq!(eng.active_aggregators(), k);
        let n = Node::alloc_with(reclaim, 1u64);
        eng.run(Lane::Mapped(&mut st), Role::Add, n, reclaim);
        // The lazy re-map kicked in before the announcement landed.
        let expect = eng.config().aggregator_for(3, k);
        assert_eq!(st.aggregator(), expect, "k = {k}");
        let last = *eng.op().log.lock().unwrap().last().unwrap();
        assert_eq!(last.agg_idx, expect, "k = {k}");
    }
    // Every forced step was recorded in the resize counters.
    let r = eng.stats().report();
    assert!(r.resizes() >= 4, "grow/shrink steps recorded: {r:?}");
}

#[test]
fn excluded_announcements_retry_on_the_remapped_aggregator() {
    // A fixed-lane engine used through Lane::At must never consult the
    // mapped state; a mapped engine re-resolves each retry. Exercised
    // here by running ops through Lane::At against aggregator 0 of a
    // two-slot engine and checking they apply there.
    let eng = CombineEngine::new(
        "tally-at",
        TallyOp::new(),
        SecConfig::new(2, 2),
        AggLayout::Fixed {
            ends: &[true, true],
            bulk: 0,
        },
    );
    let (reclaim, _st) = eng.register();
    for _ in 0..3 {
        let n = Node::alloc_with(&reclaim, 2u64);
        eng.run(Lane::At(1), Role::Add, n, &reclaim);
    }
    assert_eq!(eng.op().sum.load(Ordering::Relaxed), 6);
    assert!(eng.op().log.lock().unwrap().iter().all(|a| a.agg_idx == 1));
}
