//! The engine's batch and aggregator types — one generalization of the
//! paper's Figure 1 (`struct Batch`, `struct Aggregator`) serving every
//! SEC family.
//!
//! A [`CombineBatch`] carries *two* announcement lanes, add and remove
//! (the stack's `pushCount`/`popCount`). Families with homogeneous
//! batches — the queue's per-end batches, the counter — simply never
//! announce on the other lane, whose counter then stays pinned at zero;
//! the mixed-batch protocol (freezer test&set, inclusion test,
//! elimination pairing, combiner election) degenerates to exactly the
//! homogeneous one, which is what lets a single engine drive all of
//! them (DESIGN.md §12).
//!
//! Field-by-field correspondence with the paper's Figure 1:
//!
//! | paper                 | here               |
//! |-----------------------|--------------------|
//! | `pushCount`           | `add_count`        |
//! | `popCount`            | `remove_count`     |
//! | `pushCountAtFreeze`   | `add_at_freeze`    |
//! | `popCountAtFreeze`    | `remove_at_freeze` |
//! | `eliminationArray[P]` | `slots`            |
//! | `subStackTop`         | `result_head`      |
//! | `isFreezerDecided`    | `freezer_decided`  |
//! | `isBatchApplied`      | `applied`          |
//!
//! `taken` is the queue family's addition: when the result chain's last
//! node lives on (as the queue's dummy), null-termination cannot
//! delimit the chain, so the combiner publishes an explicit length.

use core::alloc::Layout;
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use sec_reclaim::{Guard, Handle as ReclaimHandle};
use sec_sync::event::{spin_wait, WaitPolicy, WaitQueue, WaitStats};
use sec_sync::CachePadded;

/// Low half of a packed lane counter: the announcement count.
const COUNT_MASK: u64 = 0xFFFF_FFFF;

/// Largest op weight a single announcement may carry. Bulk APIs chunk
/// above this; the bound keeps the high half of a packed lane counter
/// from overflowing even when every slot of a max-capacity batch
/// carries a maximal bulk announcement: with announcements per batch
/// bounded by the aggregator capacity (≤ max_threads ≪ 2^16), the op
/// half's worst-case sum (2^16 − 1) × 2^16 fits its 32 bits.
pub(crate) const MAX_BULK_OPS: usize = 1 << 16;

/// The packed-counter increment for an announcement carrying `ops`
/// operations (1 for a plain announcement, N for a bulk one).
///
/// Lane counters pack two fields into one `AtomicU64`: the low 32 bits
/// count *announcements* (the sequence-number source — one per node,
/// bulk or not), the high 32 bits count *operations*. Both halves move
/// in the same `fetch_add`, so any prefix of the counter's modification
/// order carries a consistent (announcements, ops) pair — the freezer's
/// single snapshot load therefore yields the announcement cut *and* the
/// exact operation weight below it, which is what keeps `SecStats` op
/// accounting exact when announcements stop being unit-weight.
#[inline]
pub(crate) const fn pack_announce(ops: u32) -> u64 {
    1 | ((ops as u64) << 32)
}

/// The announcement count of a packed lane-counter value.
#[inline]
pub(crate) const fn unpack_count(v: u64) -> usize {
    (v & COUNT_MASK) as usize
}

/// The operation count of a packed lane-counter value.
#[inline]
pub(crate) const fn unpack_ops(v: u64) -> u64 {
    v >> 32
}

/// Which announcement lane an operation uses. Adds bring a node into
/// the batch's slot array; removes take results out of the published
/// chain. Same-sequence add/remove pairs eliminate in mixed batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Role {
    /// The inserting lane (`push`, `enqueue`, `push_front`/`push_back`).
    Add,
    /// The removing / result-bearing lane (`pop`, `dequeue`,
    /// `fetch_add` — any operation that receives a value back).
    Remove,
}

/// A batch: the unit of freezing, elimination and combining, generic
/// over the node type `N` flowing through its slots and result chain.
///
/// The two announcement counters are cache-padded: they are the only
/// fields hammered by fetch&increment from every thread of the
/// aggregator, and the two lanes must not false-share.
pub(crate) struct CombineBatch<N> {
    /// Announcement counter for the add lane (sequence-number source).
    pub(crate) add_count: CachePadded<AtomicU64>,
    /// Announcement counter for the remove lane.
    pub(crate) remove_count: CachePadded<AtomicU64>,
    /// `add_count` as snapshotted by the freezer; published by the
    /// aggregator's batch-pointer swap.
    pub(crate) add_at_freeze: AtomicU64,
    /// `remove_count` as snapshotted by the freezer.
    pub(crate) remove_at_freeze: AtomicU64,
    /// Test&set word electing the freezer among the (at most two)
    /// sequence-number-0 announcers. Homogeneous batches have a single
    /// seq-0 announcer, for which the swap trivially returns `false` —
    /// the election is uniform across families.
    pub(crate) freezer_decided: AtomicBool,
    /// Set by the combiner once every surviving operation of the batch
    /// has been applied to the shared structure.
    pub(crate) applied: AtomicBool,
    /// Head of the chain of result nodes the remove combiner published
    /// (the stack's `subStackTop`); remove waiter `i` consumes the
    /// `i`-th node.
    pub(crate) result_head: AtomicPtr<N>,
    /// How many results the remove combiner actually produced, for
    /// families whose result chain is not null-terminated (the queue —
    /// see the module docs). Published before `applied`.
    pub(crate) taken: AtomicU64,
    /// Clock ticks at the freeze, stamped by a tracing freezer
    /// (DESIGN.md §14) so the combiner can report the freeze→publish
    /// batch residency. Stays zero when tracing is off; eight dead
    /// bytes per batch is cheaper than a second cfg'd batch layout.
    pub(crate) frozen_at: AtomicU64,
    /// The announcement slot array: slot `i` carries the node brought
    /// by the announcer with sequence number `i` on the slot-publishing
    /// lane. Empty for aggregators whose announcers bring no nodes.
    pub(crate) slots: Box<[AtomicPtr<N>]>,
    /// Announcement bound for the overflow assert (== `slots.len()`
    /// where slots are allocated; kept separately because slotless
    /// aggregators still bound their announcements).
    pub(crate) capacity: usize,
}

impl<N> CombineBatch<N> {
    /// The lane's announcement counter.
    #[inline]
    pub(crate) fn count(&self, role: Role) -> &AtomicU64 {
        match role {
            Role::Add => &self.add_count,
            Role::Remove => &self.remove_count,
        }
    }

    /// The lane's frozen cut.
    #[inline]
    pub(crate) fn cut(&self, role: Role) -> &AtomicU64 {
        match role {
            Role::Add => &self.add_at_freeze,
            Role::Remove => &self.remove_at_freeze,
        }
    }

    /// The lane's frozen *announcement* cut — the sequence-number bound
    /// of the inclusion test and the combiners' slot walks. The cut
    /// fields store the freezer's packed snapshot (see
    /// [`pack_announce`]); this unpacks the low half.
    #[inline]
    pub(crate) fn frozen_cut(&self, role: Role) -> usize {
        unpack_count(self.cut(role).load(Ordering::Acquire))
    }

    /// Heap-allocates a fresh batch (construction-time path; freezers
    /// go through [`CombineBatch::alloc_with`]).
    pub(crate) fn alloc(capacity: usize, with_slots: bool) -> *mut CombineBatch<N> {
        Box::into_raw(Box::new(Self::fresh(
            Self::fresh_slots(capacity, with_slots, None),
            capacity,
        )))
    }

    fn fresh(slots: Box<[AtomicPtr<N>]>, capacity: usize) -> CombineBatch<N> {
        CombineBatch {
            add_count: CachePadded::new(AtomicU64::new(0)),
            remove_count: CachePadded::new(AtomicU64::new(0)),
            add_at_freeze: AtomicU64::new(0),
            remove_at_freeze: AtomicU64::new(0),
            freezer_decided: AtomicBool::new(false),
            applied: AtomicBool::new(false),
            result_head: AtomicPtr::new(ptr::null_mut()),
            taken: AtomicU64::new(0),
            frozen_at: AtomicU64::new(0),
            slots,
            capacity,
        }
    }

    /// Slotless aggregators (announcers bring no nodes) get an empty
    /// array, which owns no allocation; slotted ones go through the
    /// recycled-buffer helper.
    fn fresh_slots(
        capacity: usize,
        with_slots: bool,
        reclaim: Option<&ReclaimHandle<'_>>,
    ) -> Box<[AtomicPtr<N>]> {
        if with_slots {
            alloc_slots_with(reclaim, capacity)
        } else {
            Vec::new().into_boxed_slice()
        }
    }

    /// Allocates a fresh batch, reusing recycled batch-struct and
    /// slot-array blocks from `reclaim`'s free lists when available
    /// (DESIGN.md §10) — the freezer's hot-path replacement for
    /// [`CombineBatch::alloc`].
    pub(crate) fn alloc_with(
        reclaim: &ReclaimHandle<'_>,
        capacity: usize,
        with_slots: bool,
    ) -> *mut CombineBatch<N> {
        let slots = Self::fresh_slots(capacity, with_slots, Some(reclaim));
        reclaim.alloc_boxed(Self::fresh(slots, capacity))
    }

    /// Retires a frozen batch for recycling: the struct block and the
    /// slot array's buffer return to the retiring thread's free lists
    /// once quiesced. Replaces `guard.retire(batch)` — the batch's
    /// destructor must *not* run (it would free the array the free
    /// list now owns), so the two blocks are retired separately.
    ///
    /// # Safety
    ///
    /// Same contract as [`Guard::retire`] for `batch` (unique,
    /// unreachable for new pins, currently-pinned readers may still
    /// use it); additionally every node pointer still in the array
    /// must be owned elsewhere (elimination/combining consumed them).
    pub(crate) unsafe fn retire_with(guard: &Guard<'_, '_>, batch: *mut CombineBatch<N>)
    where
        N: Send,
    {
        // Reading the field is safe: we are pinned and the batch is
        // live until quiescence; `slots` is immutable after
        // construction.
        unsafe { retire_slots(guard, &(*batch).slots) };
        // Safety: forwarded caller contract; the slots buffer's
        // ownership moved to the collector above (empty boxes own no
        // allocation), and the struct block is recycled raw, so the
        // destructor never runs.
        unsafe { guard.retire_recycle(batch) };
    }
}

// Safety: a batch contains only atomics (plus the boxed slot array);
// raw node pointers are managed by the engine and its ops, which
// transfer node ownership only between threads that may own the nodes.
unsafe impl<N: Send> Send for CombineBatch<N> {}
unsafe impl<N: Send> Sync for CombineBatch<N> {}

/// The exact layout of a `capacity`-slot `AtomicPtr<N>` array's buffer
/// — its recycle size class.
fn slots_layout<N>(capacity: usize) -> Layout {
    Layout::array::<AtomicPtr<N>>(capacity).expect("slot-array layout overflow")
}

/// Builds a `capacity`-length boxed slice of null `AtomicPtr`s, reusing
/// a recycled buffer from `reclaim` when one is available (`None` —
/// construction time — always heap-allocates).
pub(crate) fn alloc_slots_with<N>(
    reclaim: Option<&ReclaimHandle<'_>>,
    capacity: usize,
) -> Box<[AtomicPtr<N>]> {
    if capacity == 0 {
        return Vec::new().into_boxed_slice();
    }
    if let Some(block) = reclaim.and_then(|r| r.alloc_raw(slots_layout::<N>(capacity))) {
        let p = block.as_ptr().cast::<AtomicPtr<N>>();
        // Safety: the block has exactly the array's layout
        // (exact-layout size classes) and is unaliased; it originated
        // from a `Box<[AtomicPtr<_>]>` of the same length, so
        // rebuilding the box is sound.
        unsafe {
            for i in 0..capacity {
                p.add(i).write(AtomicPtr::new(ptr::null_mut()));
            }
            return Box::from_raw(ptr::slice_from_raw_parts_mut(p, capacity));
        }
    }
    (0..capacity)
        .map(|_| AtomicPtr::new(ptr::null_mut()))
        .collect()
}

/// Retires a batch's slot-array buffer for recycling (a no-op for the
/// empty slice, which owns no allocation).
///
/// # Safety
///
/// `slots` must be a batch's own boxed-slice array; the owning batch
/// must be retired via raw recycling in the same epoch so its
/// destructor never runs (the free list owns the buffer from here);
/// and every node pointer still in the array must be owned elsewhere.
pub(crate) unsafe fn retire_slots<N>(guard: &Guard<'_, '_>, slots: &[AtomicPtr<N>]) {
    if slots.is_empty() {
        return;
    }
    let buf = slots.as_ptr() as *mut u8;
    // Safety: unique live buffer of exactly `slots_layout(len)` per
    // the caller contract, consumed exactly once.
    unsafe { guard.retire_recycle_raw(buf, slots_layout::<N>(slots.len())) };
}

/// An aggregator: one pointer to its currently active batch, plus the
/// park queue its batches' waiters register on.
pub(crate) struct CombineAggregator<N> {
    pub(crate) batch: AtomicPtr<CombineBatch<N>>,
    /// Parked-waiter registry for every batch generation that passes
    /// through this aggregator, keyed by batch address (DESIGN.md
    /// §11). Living here — not in the batch — keeps it out of the
    /// destructor-less recycled batch blocks.
    pub(crate) event: WaitQueue,
    /// Whether this aggregator's batches carry announcement slots.
    pub(crate) with_slots: bool,
    /// Slot-array size of every batch this aggregator installs. Mapped
    /// aggregators share the policy-derived per-aggregator capacity;
    /// dedicated bulk aggregators are sized for every thread (any
    /// thread may issue a bulk call).
    pub(crate) capacity: usize,
}

impl<N> CombineAggregator<N> {
    /// Creates an aggregator with a fresh initial batch.
    pub(crate) fn new(capacity: usize, with_slots: bool) -> Self {
        Self {
            batch: AtomicPtr::new(CombineBatch::alloc(capacity, with_slots)),
            event: WaitQueue::new(),
            with_slots,
            capacity,
        }
    }
}

/// The shared `applied`-flag wait: parks (per `policy`) on the
/// aggregator's event queue, keyed by the batch's address, until the
/// batch's combiner flips `applied`. This is the single seam the
/// families' former copy-pasted `while !batch.applied { snooze }`
/// loops collapsed into; the waking half is [`mark_applied`].
#[inline]
pub(crate) fn wait_applied<N>(
    agg: &CombineAggregator<N>,
    batch: &CombineBatch<N>,
    key: *mut CombineBatch<N>,
    policy: WaitPolicy,
    stats: &WaitStats,
) {
    agg.event.wait_until(key as usize, policy, stats, || {
        batch.applied.load(Ordering::Acquire)
    });
}

/// The waking half of [`wait_applied`]: publishes `applied` (Release —
/// the handshake requires the condition to be visible before the
/// notify) and wakes exactly the batch's registered waiters.
#[inline]
pub(crate) fn mark_applied<N>(
    agg: &CombineAggregator<N>,
    batch: &CombineBatch<N>,
    key: *mut CombineBatch<N>,
    stats: &WaitStats,
) {
    batch.applied.store(true, Ordering::Release);
    agg.event.notify_key(key as usize, stats);
}

/// Waits (policy-aware, never parking) for a slot another announcer is
/// about to publish — the "line 38" wait shared by the push combiner,
/// the eliminating pop, the deque combiners, the queue's enqueue
/// combiner and the counter's summing combiner. The publisher is
/// between its `fetch&increment` and its slot store — a few
/// instructions — so there is no waker to register with and nothing
/// worth parking for; see [`spin_wait`].
#[inline]
pub(crate) fn wait_ptr<N>(slot: &AtomicPtr<N>, policy: WaitPolicy) -> *mut N {
    let mut p = slot.load(Ordering::Acquire);
    if !p.is_null() {
        return p;
    }
    spin_wait(policy, || {
        p = slot.load(Ordering::Acquire);
        !p.is_null()
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;

    #[test]
    fn fresh_batch_is_virgin() {
        let b = CombineBatch::<u32>::alloc(4, true);
        let r = unsafe { &*b };
        assert_eq!(r.add_count.load(Ordering::Relaxed), 0);
        assert_eq!(r.remove_count.load(Ordering::Relaxed), 0);
        assert!(!r.freezer_decided.load(Ordering::Relaxed));
        assert!(!r.applied.load(Ordering::Relaxed));
        assert_eq!(r.slots.len(), 4);
        assert_eq!(r.capacity, 4);
        assert!(r.slots.iter().all(|p| p.load(Ordering::Relaxed).is_null()));
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn slotless_batch_keeps_capacity_bound() {
        let b = CombineBatch::<u32>::alloc(8, false);
        let r = unsafe { &*b };
        assert!(r.slots.is_empty());
        assert_eq!(r.capacity, 8);
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn aggregator_starts_with_live_batch() {
        let a = CombineAggregator::<u32>::new(2, true);
        let b = a.batch.load(Ordering::Acquire);
        assert!(!b.is_null());
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn lane_accessors_pick_the_right_counters() {
        let b = CombineBatch::<u32>::alloc(2, true);
        let r = unsafe { &*b };
        r.count(Role::Add).store(3, Ordering::Relaxed);
        r.count(Role::Remove).store(5, Ordering::Relaxed);
        r.cut(Role::Add).store(7, Ordering::Relaxed);
        r.cut(Role::Remove).store(9, Ordering::Relaxed);
        assert_eq!(r.add_count.load(Ordering::Relaxed), 3);
        assert_eq!(r.remove_count.load(Ordering::Relaxed), 5);
        assert_eq!(r.add_at_freeze.load(Ordering::Relaxed), 7);
        assert_eq!(r.remove_at_freeze.load(Ordering::Relaxed), 9);
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn packed_counters_round_trip() {
        // A sum of packed announcements unpacks to (count, Σops) —
        // the invariant the freezer's single-snapshot accounting
        // rests on.
        let mut v = 0u64;
        let weights = [1u32, 1, 64, MAX_BULK_OPS as u32, 1];
        for &w in &weights {
            v += pack_announce(w);
        }
        assert_eq!(unpack_count(v), weights.len());
        assert_eq!(
            unpack_ops(v),
            weights.iter().map(|&w| w as u64).sum::<u64>()
        );
        // The worst case — a batch maxed out at 2^16 − 1 announcements
        // (the capacity assert bounds announcements by max_threads,
        // which is far below that) of maximal weight each — stays
        // clear of the halves' boundary.
        let n = MAX_BULK_OPS - 1;
        let full = pack_announce(MAX_BULK_OPS as u32) * (n as u64);
        assert_eq!(unpack_count(full), n);
        assert_eq!(unpack_ops(full), (n * MAX_BULK_OPS) as u64);
    }

    #[test]
    fn frozen_cut_unpacks_the_snapshot() {
        let b = CombineBatch::<u32>::alloc(2, true);
        let r = unsafe { &*b };
        r.cut(Role::Add).store(pack_announce(5), Ordering::Relaxed);
        r.cut(Role::Remove)
            .store(pack_announce(1) + pack_announce(3), Ordering::Relaxed);
        assert_eq!(r.frozen_cut(Role::Add), 1);
        assert_eq!(r.frozen_cut(Role::Remove), 2);
        drop(unsafe { Box::from_raw(b) });
    }
}
