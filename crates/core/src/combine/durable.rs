//! Crash-durable detectable combining (DESIGN.md §16).
//!
//! Combining is the natural persistence seam: instead of every thread
//! flushing every operation, the one elected combiner persists one
//! frozen batch with O(1) flushes — the PBComb / detectable-combining
//! approach. This module adds that seam to the generic engine:
//!
//! * **Persistent heap** — all durable state (redo log, intent cells)
//!   lives in a [`PersistentHeap`](sec_reclaim::PersistentHeap):
//!   a file-backed `MAP_SHARED` mmap whose retired stores survive the
//!   process dying (including `SIGKILL`), or an in-memory `Volatile`
//!   arena with identical code paths for tests and CI.
//! * **Intent cells** — before announcing, a handle writes an *intent*
//!   (its per-handle op sequence number + op descriptor) to its cell
//!   and only then joins a batch. On recovery, comparing the cell's
//!   sequence number against the log tells the announcer whether its
//!   in-flight op executed — every op is *detectable*.
//! * **Per-shard redo log** — the combiner applies the frozen batch to
//!   the in-memory structure and appends one record (op descriptors +
//!   results) per batch, fences, *commits* the record with a single
//!   release store, and only then lets the engine publish results.
//!   A record whose commit word is unset is a torn record: its ops
//!   never happened.
//! * **Recovery** — [`DurableCore::open`] scans every shard, orders
//!   committed records by their global sequence number, verifies that
//!   each handle's logged ops form a gap-free prefix (zero
//!   double-applies), classifies every pending intent, and hands the
//!   ordered op list to the family for replay into a fresh structure.
//!
//! Durability fine print: `MAP_SHARED` stores live in the kernel page
//! cache, which survives the *process* (kill−9 semantics — exactly
//! what the fault-injection harness exercises). Surviving *power
//! failure* additionally requires `msync`, which [`SyncMode::Sync`]
//! performs once per committed record.

use core::any::TypeId;
use core::mem;
use core::sync::atomic::{AtomicU64, Ordering};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use sec_reclaim::PersistentHeap;

/// Magic word ("SECDUR01" in ASCII) committed last when a heap is
/// initialised; recovery refuses heaps without it.
const MAGIC: u64 = 0x5345_4344_5552_3031;
/// On-heap layout version.
const VERSION: u64 = 1;
/// Header size in words (generous; unused words stay zero).
const HDR_WORDS: usize = 16;
/// Header word indices.
const H_MAGIC: usize = 0;
const H_FAMILY: usize = 1;
const H_MAX_HANDLES: usize = 2;
const H_SHARDS: usize = 3;
const H_RECORD_CAP: usize = 4;
const H_ENTRIES_CAP: usize = 5;
const H_FAMILY_PARAM: usize = 6;
const H_GLOBAL_SEQ: usize = 7;
const H_VERSION: usize = 8;
/// Words per intent cell: op_seq, opcode, operand, operand2, checksum.
const INTENT_WORDS: usize = 5;
/// Words per log entry: meta (handle | opcode | result tag), op_seq,
/// operand, operand2, result.
const ENTRY_WORDS: usize = 5;
/// Record header words: commit (global seq + 1; 0 = torn), n_ops,
/// checksum.
const REC_HDR_WORDS: usize = 3;

/// Operation codes recorded in the redo log, one namespace across all
/// four durable families. Public so the fault-injection harness can
/// fold a recovered log over its own sequential model.
pub mod opcode {
    /// `SecStack::push(operand)`.
    pub const PUSH: u8 = 1;
    /// `SecStack::pop()`.
    pub const POP: u8 = 2;
    /// `SecQueue::enqueue(operand)`.
    pub const ENQUEUE: u8 = 3;
    /// `SecQueue::dequeue()`.
    pub const DEQUEUE: u8 = 4;
    /// `SecCounter::fetch_add(operand)`.
    pub const ADD: u8 = 5;
    /// `SecMap::get(operand)`.
    pub const MAP_GET: u8 = 6;
    /// `SecMap::insert(operand, operand2)`.
    pub const MAP_INSERT: u8 = 7;
    /// `SecMap::remove(operand)`.
    pub const MAP_REMOVE: u8 = 8;
}

/// Result tags stored in an entry's meta word.
const RTAG_UNIT: u8 = 0;
const RTAG_EMPTY: u8 = 1;
const RTAG_VALUE: u8 = 2;

/// The durable family stored in the heap header; recovery refuses to
/// replay a stack log into a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Family {
    Stack = 1,
    Queue = 2,
    Counter = 3,
    Map = 4,
}

impl Family {
    fn from_u64(v: u64) -> Option<Self> {
        match v {
            1 => Some(Family::Stack),
            2 => Some(Family::Queue),
            3 => Some(Family::Counter),
            4 => Some(Family::Map),
            _ => None,
        }
    }
}

/// Where the durable heap lives.
#[derive(Clone, Debug)]
pub enum DurableMode {
    /// An anonymous in-memory heap: full durable code paths (intents,
    /// redo log, recovery) with no file I/O. Recover by keeping the
    /// heap alive across structure drops ([`DurableMode::Heap`]).
    Volatile,
    /// A file-backed mmap at this path. Survives kill−9 as-is;
    /// combine with [`SyncMode::Sync`] for power-failure durability.
    File(PathBuf),
    /// An existing heap, shared by reference — how a Volatile-mode
    /// structure is recovered after a drop, and how tests inject
    /// pre-corrupted heaps.
    Heap(Arc<PersistentHeap>),
}

/// When the redo log is flushed (`msync`) to its backing file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// Never. Stores still survive process death (page cache), but
    /// not power loss. The default, and the only mode the kill−9
    /// harness needs.
    None,
    /// `msync(MS_SYNC)` the record range once per committed record —
    /// the O(1)-flushes-per-batch discipline from the PBComb line of
    /// work. No-op on volatile heaps.
    Sync,
}

/// How many log records a combined batch produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogGranularity {
    /// One record per frozen batch (chunked only when a batch exceeds
    /// the record's entry capacity) — the combining win.
    PerBatch,
    /// One record per operation — the flush-per-op strawman that
    /// `durable_bench` measures the batch discipline against.
    PerOp,
}

/// Configuration for a crash-durable structure: where the heap lives
/// and how the per-shard redo log is shaped.
///
/// ```
/// use sec_core::DurablePolicy;
/// let p = DurablePolicy::volatile().shards(2).record_capacity(1024);
/// ```
#[derive(Clone, Debug)]
pub struct DurablePolicy {
    /// Heap backing.
    pub mode: DurableMode,
    /// Number of durable combining shards (dedicated aggregators).
    pub shards: usize,
    /// Log records per shard; the log is not circular, so this bounds
    /// the structure's total batch count between recoveries.
    pub record_capacity: usize,
    /// Operation entries per record; batches larger than this are
    /// split across consecutive records.
    pub batch_entries: usize,
    /// Flush discipline (see [`SyncMode`]).
    pub sync: SyncMode,
    /// Records per batch or per op (see [`LogGranularity`]).
    pub granularity: LogGranularity,
}

impl DurablePolicy {
    fn with_mode(mode: DurableMode) -> Self {
        Self {
            mode,
            shards: 1,
            record_capacity: 4096,
            batch_entries: 64,
            sync: SyncMode::None,
            granularity: LogGranularity::PerBatch,
        }
    }

    /// An in-memory policy (tests/CI; no file I/O).
    pub fn volatile() -> Self {
        Self::with_mode(DurableMode::Volatile)
    }

    /// A file-backed policy at `path`.
    pub fn file(path: impl Into<PathBuf>) -> Self {
        Self::with_mode(DurableMode::File(path.into()))
    }

    /// A policy over an existing heap (Volatile-mode recovery).
    pub fn heap(heap: Arc<PersistentHeap>) -> Self {
        Self::with_mode(DurableMode::Heap(heap))
    }

    /// Sets the durable shard count (builder style).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Sets the per-shard record capacity (builder style).
    pub fn record_capacity(mut self, n: usize) -> Self {
        self.record_capacity = n.max(1);
        self
    }

    /// Sets the per-record entry capacity (builder style).
    pub fn batch_entries(mut self, n: usize) -> Self {
        self.batch_entries = n.max(1);
        self
    }

    /// Sets the flush discipline (builder style).
    pub fn sync(mut self, s: SyncMode) -> Self {
        self.sync = s;
        self
    }

    /// Sets the log granularity (builder style).
    pub fn granularity(mut self, g: LogGranularity) -> Self {
        self.granularity = g;
        self
    }
}

/// Errors from durable construction and recovery.
#[derive(Debug)]
pub enum DurableError {
    /// Heap file I/O failed.
    Io(std::io::Error),
    /// A [`DurableMode::Heap`] heap is smaller than the layout needs.
    HeapTooSmall {
        /// Words the layout requires.
        needed: usize,
        /// Words the heap has.
        have: usize,
    },
    /// The heap carries no valid magic/version — not a durable heap,
    /// or one from an incompatible layout.
    BadMagic,
    /// The heap was written by a different family (e.g. recovering a
    /// queue from a stack's heap).
    WrongFamily,
    /// Recovering over [`DurableMode::Volatile`] is meaningless (the
    /// heap died with the process); use [`DurableMode::Heap`] or
    /// [`DurableMode::File`].
    NothingToRecover,
    /// The log violates an invariant that commit ordering should make
    /// impossible (per-handle gaps, duplicate sequence numbers,
    /// replay/result divergence).
    Corrupt(String),
}

impl core::fmt::Display for DurableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable heap I/O: {e}"),
            DurableError::HeapTooSmall { needed, have } => {
                write!(
                    f,
                    "durable heap too small: need {needed} words, have {have}"
                )
            }
            DurableError::BadMagic => write!(f, "not a durable SEC heap (bad magic/version)"),
            DurableError::WrongFamily => write!(f, "durable heap belongs to a different family"),
            DurableError::NothingToRecover => {
                write!(
                    f,
                    "volatile mode has no heap to recover; pass DurableMode::Heap"
                )
            }
            DurableError::Corrupt(s) => write!(f, "durable log corrupt: {s}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// The result a logged (or recovered) operation produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// The op returns nothing (push, enqueue).
    Unit,
    /// The op returned "absent" (pop/dequeue on empty, get/remove miss).
    Empty,
    /// The op returned this value (popped value, previous counter
    /// value, previous/looked-up map value).
    Value(u64),
}

impl OpResult {
    fn to_words(self) -> (u8, u64) {
        match self {
            OpResult::Unit => (RTAG_UNIT, 0),
            OpResult::Empty => (RTAG_EMPTY, 0),
            OpResult::Value(v) => (RTAG_VALUE, v),
        }
    }

    fn from_words(rtag: u8, result: u64) -> Option<Self> {
        match rtag {
            RTAG_UNIT => Some(OpResult::Unit),
            RTAG_EMPTY => Some(OpResult::Empty),
            RTAG_VALUE => Some(OpResult::Value(result)),
            _ => None,
        }
    }
}

/// One committed operation recovered from the redo log, in global
/// application order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoggedOp {
    /// The announcing handle's id (collector slot).
    pub handle: u32,
    /// The handle's per-op sequence number (1-based, gap-free).
    pub op_seq: u64,
    /// One of the [`opcode`] constants.
    pub opcode: u8,
    /// First operand (value/key/delta), 0 when unused.
    pub operand: u64,
    /// Second operand (map insert value), 0 when unused.
    pub operand2: u64,
    /// The result the op produced when it originally executed.
    pub result: OpResult,
}

/// What recovery determined about one handle's in-flight operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PendingOutcome {
    /// The handle had no announced-but-unacknowledged op at the crash.
    None,
    /// The announced op executed; its logged result is here — the
    /// caller must *not* re-issue it.
    Executed {
        /// The executed op's per-handle sequence number.
        op_seq: u64,
        /// The result it produced.
        result: OpResult,
    },
    /// The announced op never executed (no committed record carries
    /// it); re-issuing it is safe and cannot double-apply.
    NeverExecuted {
        /// The never-executed op's per-handle sequence number.
        op_seq: u64,
    },
    /// The crash hit the middle of the intent write itself; the op
    /// was never announced to a batch, so it never executed.
    TornIntent,
}

/// Per-handle recovery verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HandleRecovery {
    /// Number of this handle's ops found committed in the log.
    pub executed: u64,
    /// Classification of the handle's last announced op.
    pub pending: PendingOutcome,
}

/// Everything [`recover()`](crate::SecStack::recover) learned from the
/// heap: the ordered op log (already replayed into the returned
/// structure), per-handle detectability verdicts, and scan statistics.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Committed records found across all shards.
    pub committed_records: usize,
    /// Torn records skipped (payload present, commit word unset or
    /// checksum mismatch) — ops that never happened.
    pub torn_records: usize,
    /// Per-handle verdicts, indexed by handle id.
    pub handles: Vec<HandleRecovery>,
    /// Every committed op in global application order; replaying these
    /// sequentially reproduces the recovered structure exactly.
    pub ops: Vec<LoggedOp>,
}

impl RecoveryReport {
    /// Total committed operations.
    pub fn replayed_ops(&self) -> usize {
        self.ops.len()
    }
}

/// Snapshot of a durable structure's logging counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DurableStats {
    /// Records committed to the redo log.
    pub records: u64,
    /// Operation entries across those records.
    pub entries: u64,
    /// `msync` calls issued ([`SyncMode::Sync`] only).
    pub msyncs: u64,
}

/// A durable op request, announced by value from the caller's stack
/// frame (cast to the engine's node type, exactly like the bulk-op
/// requests). The combiner fills `rtag`/`result`; the engine's
/// release publish makes them visible to the announcer.
#[repr(C)]
pub(crate) struct DurableReq {
    pub handle: u32,
    pub opcode: u8,
    pub rtag: u8,
    pub op_seq: u64,
    pub operand: u64,
    pub operand2: u64,
    pub result: u64,
}

impl DurableReq {
    pub(crate) fn new(handle: usize, op_seq: u64, opcode: u8, operand: u64, operand2: u64) -> Self {
        Self {
            handle: handle as u32,
            opcode,
            rtag: RTAG_UNIT,
            op_seq,
            operand,
            operand2,
            result: 0,
        }
    }

    /// The combiner's write-back: records the op's result for both the
    /// log entry and the announcer.
    pub(crate) fn set_result(&mut self, r: OpResult) {
        let (rtag, result) = r.to_words();
        self.rtag = rtag;
        self.result = result;
    }

    pub(crate) fn take_result(&self) -> OpResult {
        OpResult::from_words(self.rtag, self.result).expect("combiner left result tag unset")
    }
}

/// Fault-injection points for the kill−9 harness. The hooks are armed
/// through the environment (`SEC_CRASH_POINT`, `SEC_CRASH_AFTER`) and
/// deliver `SIGKILL` to the *current process* on the N-th hit — they
/// exist so a child workload process can crash itself at a seeded
/// protocol point; they are never armed in normal operation.
pub mod fault {
    use core::sync::atomic::{AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// A protocol point at which the process can be made to die.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    #[repr(u8)]
    pub enum FaultPoint {
        /// Between applying individual ops of a frozen batch.
        MidCombine = 1,
        /// After the record payload is written, before its commit
        /// word: the record must recover as torn.
        PostLog = 2,
        /// After the commit word (log is durable), before the engine
        /// publishes results: ops recover as executed, announcers as
        /// pending-executed.
        PostCommit = 3,
        /// While waiters are consuming published results.
        MidPublish = 4,
        /// Between an intent cell's field stores and its checksum:
        /// the cell must recover as torn (op never announced).
        IntentWrite = 5,
        /// Per committed record during recovery's scan — proves
        /// `recover()` is re-entrant (kill mid-recovery, recover
        /// again).
        RecoverScan = 6,
    }

    impl FaultPoint {
        /// Parses the `SEC_CRASH_POINT` value (numeric).
        pub fn from_u8(v: u8) -> Option<Self> {
            match v {
                1 => Some(FaultPoint::MidCombine),
                2 => Some(FaultPoint::PostLog),
                3 => Some(FaultPoint::PostCommit),
                4 => Some(FaultPoint::MidPublish),
                5 => Some(FaultPoint::IntentWrite),
                6 => Some(FaultPoint::RecoverScan),
                _ => None,
            }
        }
    }

    struct Arm {
        point: u8,
        remaining: AtomicU64,
    }

    static ARM: OnceLock<Option<Arm>> = OnceLock::new();

    fn arm() -> &'static Option<Arm> {
        ARM.get_or_init(|| {
            let point: u8 = std::env::var("SEC_CRASH_POINT").ok()?.parse().ok()?;
            FaultPoint::from_u8(point)?;
            let after: u64 = std::env::var("SEC_CRASH_AFTER")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            Some(Arm {
                point,
                remaining: AtomicU64::new(after.max(1)),
            })
        })
    }

    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
        fn getpid() -> i32;
    }

    /// The hook the durable code paths call; kills the process with
    /// `SIGKILL` when the armed point's countdown reaches zero.
    #[inline]
    pub(crate) fn hit(p: FaultPoint) {
        if let Some(a) = arm() {
            if a.point == p as u8 && a.remaining.fetch_sub(1, Ordering::Relaxed) == 1 {
                // SAFETY: kill(getpid(), SIGKILL) has no memory-safety
                // preconditions; it simply never returns control here.
                unsafe {
                    kill(getpid(), 9);
                }
                // SIGKILL cannot be blocked; unreachable in practice.
                std::process::abort();
            }
        }
    }
}

use fault::FaultPoint;

/// Converts a (u64-monomorphic) durable payload into its log word.
/// Durable constructors exist only for `u64` element types; generic
/// code paths route through this checked transmute.
pub(crate) fn to_word<T: 'static>(v: T) -> u64 {
    assert_eq!(
        TypeId::of::<T>(),
        TypeId::of::<u64>(),
        "durable SEC structures carry u64 payloads"
    );
    // SAFETY: T is u64 (checked above); sizes and bit validity match.
    let w = unsafe { mem::transmute_copy::<T, u64>(&v) };
    mem::forget(v);
    w
}

/// By-reference twin of [`to_word`] for call sites that only borrow
/// their payload (the map's `get(&K)`/`remove(&K)`). Sound because the
/// checked type is `u64`, which is `Copy`.
pub(crate) fn word_of<T: 'static>(v: &T) -> u64 {
    assert_eq!(
        TypeId::of::<T>(),
        TypeId::of::<u64>(),
        "durable SEC structures carry u64 payloads"
    );
    // SAFETY: T is u64 (checked above); u64 is Copy, so reading the
    // bits out of a borrow duplicates nothing that owns anything.
    unsafe { mem::transmute_copy::<T, u64>(v) }
}

/// Inverse of [`to_word`].
pub(crate) fn from_word<T: 'static>(w: u64) -> T {
    assert_eq!(
        TypeId::of::<T>(),
        TypeId::of::<u64>(),
        "durable SEC structures carry u64 payloads"
    );
    // SAFETY: T is u64 (checked above).
    unsafe { mem::transmute_copy::<u64, T>(&w) }
}

/// Collects the frozen durable requests `[my_seq, cut)` of a batch —
/// the slot walk every family's durable combiner starts with. The
/// pointers were announced as type-erased nodes; durable aggregators
/// carry only [`DurableReq`]s, so the cast recovers the real type.
pub(crate) fn frozen_reqs<N>(
    batch: &super::batch::CombineBatch<N>,
    my_seq: usize,
    cut: usize,
    wait: crate::config::WaitPolicy,
) -> Vec<*mut DurableReq> {
    batch.slots[my_seq..cut]
        .iter()
        .map(|s| super::batch::wait_ptr(s, wait).cast::<DurableReq>())
        .collect()
}

fn mix(h: u64, v: u64) -> u64 {
    let h = (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 29)
}

fn intent_checksum(handle: u64, seq: u64, opcode: u64, a: u64, b: u64) -> u64 {
    let mut h = 0x5EC0_0001;
    for v in [handle, seq, opcode, a, b] {
        h = mix(h, v);
    }
    h
}

struct StatsInner {
    records: AtomicU64,
    entries: AtomicU64,
    msyncs: AtomicU64,
}

/// The shared durable state a family's op struct owns when built with
/// a [`DurablePolicy`]: the heap, the layout geometry, the apply lock
/// that serialises structure mutation with log append, and the
/// per-handle resume sequence numbers recovery produced.
pub(crate) struct DurableCore {
    heap: Arc<PersistentHeap>,
    family: Family,
    max_handles: usize,
    shards: usize,
    record_cap: usize,
    entries_cap: usize,
    sync: SyncMode,
    granularity: LogGranularity,
    /// Serialises apply+log across all shards: log order is exactly
    /// structure-application order, which is what makes sequential
    /// replay reproduce the recovered structure.
    apply_lock: Mutex<()>,
    /// Per-handle next op sequence number (1 when fresh; last+1 after
    /// recovery; advanced by every intent write so a re-registered
    /// collector slot resumes where its predecessor left off).
    start_seq: Box<[AtomicU64]>,
    stats: StatsInner,
}

impl DurableCore {
    // ---- layout ---------------------------------------------------

    fn record_words(&self) -> usize {
        REC_HDR_WORDS + self.entries_cap * ENTRY_WORDS
    }

    fn intent_off(&self, handle: usize) -> usize {
        HDR_WORDS + handle * INTENT_WORDS
    }

    fn shard_words(&self) -> usize {
        1 + self.record_cap * self.record_words()
    }

    fn tail_off(&self, shard: usize) -> usize {
        HDR_WORDS + self.max_handles * INTENT_WORDS + shard * self.shard_words()
    }

    fn record_off(&self, shard: usize, idx: usize) -> usize {
        self.tail_off(shard) + 1 + idx * self.record_words()
    }

    fn words_needed(
        max_handles: usize,
        shards: usize,
        record_cap: usize,
        entries_cap: usize,
    ) -> usize {
        let record_words = REC_HDR_WORDS + entries_cap * ENTRY_WORDS;
        HDR_WORDS + max_handles * INTENT_WORDS + shards * (1 + record_cap * record_words)
    }

    #[inline]
    fn w(&self, idx: usize) -> &AtomicU64 {
        self.heap.word(idx)
    }

    // ---- construction ---------------------------------------------

    /// Initialises a fresh durable heap for `family` and returns the
    /// core. The heap (created or supplied) must be zeroed.
    pub(crate) fn create(
        policy: &DurablePolicy,
        family: Family,
        family_param: u64,
        max_handles: usize,
    ) -> Result<Self, DurableError> {
        let shards = policy.shards.max(1);
        let record_cap = policy.record_capacity.max(1);
        let entries_cap = policy.batch_entries.max(1);
        let needed = Self::words_needed(max_handles, shards, record_cap, entries_cap);
        let heap = match &policy.mode {
            DurableMode::Volatile => PersistentHeap::volatile(needed),
            DurableMode::File(path) => PersistentHeap::create_file(path, needed)?,
            DurableMode::Heap(h) => {
                if h.words() < needed {
                    return Err(DurableError::HeapTooSmall {
                        needed,
                        have: h.words(),
                    });
                }
                Arc::clone(h)
            }
        };
        let core = Self {
            heap,
            family,
            max_handles,
            shards,
            record_cap,
            entries_cap,
            sync: policy.sync,
            granularity: policy.granularity,
            apply_lock: Mutex::new(()),
            start_seq: (0..max_handles).map(|_| AtomicU64::new(1)).collect(),
            stats: StatsInner {
                records: AtomicU64::new(0),
                entries: AtomicU64::new(0),
                msyncs: AtomicU64::new(0),
            },
        };
        core.w(H_FAMILY).store(family as u64, Ordering::Relaxed);
        core.w(H_MAX_HANDLES)
            .store(max_handles as u64, Ordering::Relaxed);
        core.w(H_SHARDS).store(shards as u64, Ordering::Relaxed);
        core.w(H_RECORD_CAP)
            .store(record_cap as u64, Ordering::Relaxed);
        core.w(H_ENTRIES_CAP)
            .store(entries_cap as u64, Ordering::Relaxed);
        core.w(H_FAMILY_PARAM)
            .store(family_param, Ordering::Relaxed);
        core.w(H_GLOBAL_SEQ).store(0, Ordering::Relaxed);
        core.w(H_VERSION).store(VERSION, Ordering::Relaxed);
        // The magic commits the header: a crash before this store
        // leaves a heap that recovery correctly refuses.
        core.w(H_MAGIC).store(MAGIC, Ordering::Release);
        core.heap.msync(0, HDR_WORDS).ok();
        Ok(core)
    }

    /// Opens an existing durable heap, scans and orders the committed
    /// log, classifies every handle's pending intent, and normalises
    /// the allocator words (idempotently — `open` can itself be killed
    /// and re-run). The returned report's `ops` are ready for the
    /// family to replay.
    pub(crate) fn open(
        policy: &DurablePolicy,
        family: Family,
    ) -> Result<(Self, RecoveryReport), DurableError> {
        let heap = match &policy.mode {
            DurableMode::Volatile => return Err(DurableError::NothingToRecover),
            DurableMode::File(path) => PersistentHeap::open_file(path)?,
            DurableMode::Heap(h) => Arc::clone(h),
        };
        if heap.words() < HDR_WORDS
            || heap.word(H_MAGIC).load(Ordering::Acquire) != MAGIC
            || heap.word(H_VERSION).load(Ordering::Relaxed) != VERSION
        {
            return Err(DurableError::BadMagic);
        }
        if Family::from_u64(heap.word(H_FAMILY).load(Ordering::Relaxed)) != Some(family) {
            return Err(DurableError::WrongFamily);
        }
        let max_handles = heap.word(H_MAX_HANDLES).load(Ordering::Relaxed) as usize;
        let shards = heap.word(H_SHARDS).load(Ordering::Relaxed) as usize;
        let record_cap = heap.word(H_RECORD_CAP).load(Ordering::Relaxed) as usize;
        let entries_cap = heap.word(H_ENTRIES_CAP).load(Ordering::Relaxed) as usize;
        let needed = Self::words_needed(max_handles, shards, record_cap, entries_cap);
        if max_handles == 0 || shards == 0 || heap.words() < needed {
            return Err(DurableError::Corrupt(format!(
                "implausible header geometry ({max_handles} handles, {shards} shards)"
            )));
        }
        let mut core = Self {
            heap,
            family,
            max_handles,
            shards,
            record_cap,
            entries_cap,
            sync: policy.sync,
            granularity: policy.granularity,
            apply_lock: Mutex::new(()),
            start_seq: (0..max_handles).map(|_| AtomicU64::new(1)).collect(),
            stats: StatsInner {
                records: AtomicU64::new(0),
                entries: AtomicU64::new(0),
                msyncs: AtomicU64::new(0),
            },
        };
        let report = core.scan_and_classify()?;
        Ok((core, report))
    }

    /// Family parameter stored at creation (bucket count for maps).
    pub(crate) fn family_param(&self) -> u64 {
        self.w(H_FAMILY_PARAM).load(Ordering::Relaxed)
    }

    /// Stored handle capacity (drives the recovered `SecConfig`).
    pub(crate) fn max_handles(&self) -> usize {
        self.max_handles
    }

    /// Durable shard count (drives the recovered aggregator layout).
    pub(crate) fn shards(&self) -> usize {
        self.shards
    }

    /// The backing heap (shared so Volatile-mode callers can recover
    /// after dropping the structure).
    pub(crate) fn heap(&self) -> Arc<PersistentHeap> {
        Arc::clone(&self.heap)
    }

    /// Logging counters.
    pub(crate) fn stats(&self) -> DurableStats {
        DurableStats {
            records: self.stats.records.load(Ordering::Relaxed),
            entries: self.stats.entries.load(Ordering::Relaxed),
            msyncs: self.stats.msyncs.load(Ordering::Relaxed),
        }
    }

    /// Fixed thread→shard mapping (block partition, like
    /// `SecConfig::aggregator_for` under a fixed policy).
    pub(crate) fn shard_of(&self, tid: usize) -> usize {
        (tid * self.shards / self.max_handles).min(self.shards - 1)
    }

    /// The per-handle op sequence number announcing should resume
    /// from (1 fresh, last committed + 1 after recovery).
    pub(crate) fn start_seq(&self, handle: usize) -> u64 {
        self.start_seq[handle].load(Ordering::Relaxed)
    }

    // ---- hot path --------------------------------------------------

    /// Persists a handle's intent before it announces: on recovery the
    /// cell tells the handle whether this op executed. Field stores
    /// first, checksum last (release) — a crash in between leaves a
    /// checksum mismatch, classified as [`PendingOutcome::TornIntent`].
    pub(crate) fn write_intent(&self, handle: usize, seq: u64, opcode: u8, a: u64, b: u64) {
        // Keep the in-memory resume point current: a handle dropped
        // and re-registered on the same collector slot must continue
        // this sequence, not restart it.
        self.start_seq[handle].store(seq + 1, Ordering::Relaxed);
        let off = self.intent_off(handle);
        self.w(off).store(seq, Ordering::Relaxed);
        self.w(off + 1).store(opcode as u64, Ordering::Relaxed);
        self.w(off + 2).store(a, Ordering::Relaxed);
        self.w(off + 3).store(b, Ordering::Relaxed);
        fault::hit(FaultPoint::IntentWrite);
        let sum = intent_checksum(handle as u64, seq, opcode as u64, a, b);
        self.w(off + 4).store(sum, Ordering::Release);
    }

    /// The durable combiner body: under the apply lock, applies each
    /// request to the in-memory structure via `apply`, logs the batch
    /// (one record per batch or per op, by policy), and commits before
    /// returning — the engine publishes results only after this
    /// returns, so a published result is always a logged result.
    ///
    /// # Safety
    /// `reqs` must point to live `DurableReq`s owned by announcers
    /// currently parked in this batch (the engine's slot discipline).
    pub(crate) unsafe fn combine_batch(
        &self,
        shard: usize,
        reqs: &[*mut DurableReq],
        mut apply: impl FnMut(&mut DurableReq),
    ) {
        let _g = self.apply_lock.lock().unwrap();
        let mut entries: Vec<[u64; ENTRY_WORDS]> = Vec::with_capacity(reqs.len());
        for &r in reqs {
            // SAFETY: caller contract — r is a live announced request.
            let req = unsafe { &mut *r };
            fault::hit(FaultPoint::MidCombine);
            apply(req);
            let e = Self::entry_words(req);
            match self.granularity {
                LogGranularity::PerOp => self.append(shard, core::slice::from_ref(&e)),
                LogGranularity::PerBatch => entries.push(e),
            }
        }
        if self.granularity == LogGranularity::PerBatch && !entries.is_empty() {
            self.append(shard, &entries);
        }
    }

    fn entry_words(req: &DurableReq) -> [u64; ENTRY_WORDS] {
        let meta = req.handle as u64 | ((req.opcode as u64) << 32) | ((req.rtag as u64) << 40);
        [meta, req.op_seq, req.operand, req.operand2, req.result]
    }

    /// Appends `entries` to `shard`'s log (splitting over records as
    /// needed), committing each record with a release store of its
    /// global sequence number.
    fn append(&self, shard: usize, entries: &[[u64; ENTRY_WORDS]]) {
        for chunk in entries.chunks(self.entries_cap) {
            let tail = self.w(self.tail_off(shard)).load(Ordering::Relaxed) as usize;
            assert!(
                tail < self.record_cap,
                "durable log full: shard {shard} exhausted its {} records; \
                 raise DurablePolicy::record_capacity (the log is not circular)",
                self.record_cap
            );
            let seq = self.w(H_GLOBAL_SEQ).fetch_add(1, Ordering::Relaxed);
            let off = self.record_off(shard, tail);
            self.w(off + 1).store(chunk.len() as u64, Ordering::Relaxed);
            let mut sum = mix(0x5EC0_0002, seq);
            sum = mix(sum, chunk.len() as u64);
            for (i, e) in chunk.iter().enumerate() {
                for (j, &word) in e.iter().enumerate() {
                    self.w(off + REC_HDR_WORDS + i * ENTRY_WORDS + j)
                        .store(word, Ordering::Relaxed);
                    sum = mix(sum, word);
                }
            }
            self.w(off + 2).store(sum, Ordering::Relaxed);
            fault::hit(FaultPoint::PostLog);
            // The commit point: everything above is ordered before
            // this release store, so a visible commit word implies a
            // complete, checksummed payload.
            self.w(off).store(seq + 1, Ordering::Release);
            self.w(self.tail_off(shard))
                .store(tail as u64 + 1, Ordering::Relaxed);
            if self.sync == SyncMode::Sync {
                self.heap.msync(off, self.record_words()).ok();
                self.heap.msync(H_GLOBAL_SEQ, 1).ok();
                self.heap.msync(self.tail_off(shard), 1).ok();
                self.stats.msyncs.fetch_add(1, Ordering::Relaxed);
            }
            fault::hit(FaultPoint::PostCommit);
            self.stats.records.fetch_add(1, Ordering::Relaxed);
            self.stats
                .entries
                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        }
    }

    // ---- recovery --------------------------------------------------

    fn scan_and_classify(&mut self) -> Result<RecoveryReport, DurableError> {
        let mut committed: Vec<(u64, Vec<LoggedOp>)> = Vec::new();
        let mut torn = 0usize;
        let mut max_seq: u64 = 0;
        for shard in 0..self.shards {
            let mut shard_max_idx: Option<usize> = None;
            for idx in 0..self.record_cap {
                let off = self.record_off(shard, idx);
                let commit = self.w(off).load(Ordering::Acquire);
                if commit == 0 {
                    // Uncommitted slot. Everything past the first
                    // uncommitted slot is also uncommitted (records
                    // are appended in slot order under the apply
                    // lock), so stop scanning this shard — but check
                    // whether the slot holds a torn payload first.
                    if self.w(off + 1).load(Ordering::Relaxed) != 0 {
                        torn += 1;
                    }
                    break;
                }
                let seq = commit - 1;
                let n = self.w(off + 1).load(Ordering::Relaxed) as usize;
                let stored_sum = self.w(off + 2).load(Ordering::Relaxed);
                if n == 0 || n > self.entries_cap {
                    return Err(DurableError::Corrupt(format!(
                        "committed record {shard}/{idx} has implausible n_ops {n}"
                    )));
                }
                let mut sum = mix(0x5EC0_0002, seq);
                sum = mix(sum, n as u64);
                let mut ops = Vec::with_capacity(n);
                for i in 0..n {
                    let mut words = [0u64; ENTRY_WORDS];
                    for (j, w) in words.iter_mut().enumerate() {
                        *w = self
                            .w(off + REC_HDR_WORDS + i * ENTRY_WORDS + j)
                            .load(Ordering::Relaxed);
                        sum = mix(sum, *w);
                    }
                    let [meta, op_seq, operand, operand2, result] = words;
                    let rtag = ((meta >> 40) & 0xff) as u8;
                    let result = OpResult::from_words(rtag, result).ok_or_else(|| {
                        DurableError::Corrupt(format!(
                            "record {shard}/{idx} entry {i} has bad result tag {rtag}"
                        ))
                    })?;
                    ops.push(LoggedOp {
                        handle: (meta & 0xffff_ffff) as u32,
                        op_seq,
                        opcode: ((meta >> 32) & 0xff) as u8,
                        operand,
                        operand2,
                        result,
                    });
                }
                if sum != stored_sum {
                    // A commit word over a mismatched payload cannot
                    // come from an ordered crash; refuse the heap.
                    return Err(DurableError::Corrupt(format!(
                        "committed record {shard}/{idx} fails its checksum"
                    )));
                }
                fault::hit(FaultPoint::RecoverScan);
                max_seq = max_seq.max(seq + 1);
                committed.push((seq, ops));
                shard_max_idx = Some(idx);
            }
            // Normalise the tail allocator: next append goes after the
            // last committed record (idempotent; overwrites any torn
            // slot the crash left at the old tail).
            let tail = shard_max_idx.map_or(0, |i| i as u64 + 1);
            self.w(self.tail_off(shard)).store(tail, Ordering::Relaxed);
        }
        committed.sort_by_key(|&(seq, _)| seq);
        for pair in committed.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(DurableError::Corrupt(format!(
                    "duplicate global sequence number {}",
                    pair[0].0
                )));
            }
        }
        // Normalise the global sequence allocator (idempotent).
        self.w(H_GLOBAL_SEQ).store(max_seq, Ordering::Relaxed);
        let committed_records = committed.len();
        let ops: Vec<LoggedOp> = committed.into_iter().flat_map(|(_, v)| v).collect();

        // Per-handle detectability: committed op_seqs must form the
        // gap-free prefix 1..=n in replay order (anything else would
        // mean a lost or double-applied op).
        let mut last = vec![0u64; self.max_handles];
        let mut last_result = vec![OpResult::Unit; self.max_handles];
        for op in &ops {
            let h = op.handle as usize;
            if h >= self.max_handles {
                return Err(DurableError::Corrupt(format!(
                    "logged handle {h} out of range"
                )));
            }
            if op.op_seq != last[h] + 1 {
                return Err(DurableError::Corrupt(format!(
                    "handle {h}: op_seq {} after {} (gap or double-apply)",
                    op.op_seq, last[h]
                )));
            }
            last[h] = op.op_seq;
            last_result[h] = op.result;
        }
        let mut handles = Vec::with_capacity(self.max_handles);
        for h in 0..self.max_handles {
            let off = self.intent_off(h);
            let seq = self.w(off).load(Ordering::Relaxed);
            let opcode = self.w(off + 1).load(Ordering::Relaxed);
            let a = self.w(off + 2).load(Ordering::Relaxed);
            let b = self.w(off + 3).load(Ordering::Relaxed);
            let sum = self.w(off + 4).load(Ordering::Acquire);
            let pending = if seq == 0 {
                PendingOutcome::None
            } else if sum != intent_checksum(h as u64, seq, opcode, a, b) {
                PendingOutcome::TornIntent
            } else if seq == last[h] {
                PendingOutcome::Executed {
                    op_seq: seq,
                    result: last_result[h],
                }
            } else if seq == last[h] + 1 {
                PendingOutcome::NeverExecuted { op_seq: seq }
            } else {
                return Err(DurableError::Corrupt(format!(
                    "handle {h}: intent seq {seq} vs last committed {}",
                    last[h]
                )));
            };
            self.start_seq[h].store(last[h] + 1, Ordering::Relaxed);
            handles.push(HandleRecovery {
                executed: last[h],
                pending,
            });
        }
        Ok(RecoveryReport {
            committed_records,
            torn_records: torn,
            handles,
            ops,
        })
    }
}

impl core::fmt::Debug for DurableCore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DurableCore")
            .field("family", &self.family)
            .field("shards", &self.shards)
            .field("record_cap", &self.record_cap)
            .field("entries_cap", &self.entries_cap)
            .field("heap", &self.heap)
            .finish()
    }
}
