//! The SEC stack: Algorithms 1 and 2 of the paper, instantiated from
//! the generic combining engine.
//!
//! Module layout:
//!
//! * `node` — shared-stack nodes (paper Figure 1, `Node`),
//! * [`elastic`] — the contention monitor behind
//!   [`AggregatorPolicy::Adaptive`](crate::AggregatorPolicy::Adaptive)
//!   (DESIGN.md §8),
//! * [`stats`] — the Table 1–3 instrumentation,
//! * [`model`] — the closed-form binomial prediction of the
//!   elimination/combining degrees the instrumentation measures,
//! * this file — [`SecStack`], [`SecHandle`], and the stack's
//!   `CombineOp` instantiation: the single-CAS substack splice
//!   (push combining), the single-CAS chain unlink (pop combining)
//!   and elimination through the slot array.
//!
//! The protocol itself — announcement, freezing, freezer election,
//! elimination pairing, combiner election, waiter parking, elastic
//! re-mapping — lives in `crate::combine` (DESIGN.md §12); this file
//! contains only what is specific to a *stack*. Comments reference the
//! paper's pseudocode line numbers (Algorithm 1 = push, lines 1–51;
//! Algorithm 2 = pop, lines 52–103). Two pseudocode errata are
//! corrected here, both documented in DESIGN.md §2: the push
//! combiner's substack chain starts at its own node (`top = bot`, not
//! `⊥`), and the pop combiner advances its cursor once per
//! non-eliminated pop (the paper's loop advances one time too few,
//! which would pop `k−1` nodes for `k` pops while handing out `k`
//! values).

pub mod elastic;
pub mod model;
pub(crate) mod node;
pub mod stats;

use crate::combine::{
    wait_ptr, AggLayout, CombineBatch, CombineEngine, CombineOp, Lane, OpState, Role,
};
use crate::config::SecConfig;
use crate::trace::{TraceRecorder, TraceSnapshot};
use crate::traits::{ConcurrentStack, StackHandle};
use core::fmt;
use core::ptr;
use core::sync::atomic::{AtomicPtr, Ordering};
use node::Node;
use sec_reclaim::{Guard, Handle as ReclaimHandle};
use sec_sync::{Backoff, CachePadded};
use stats::SecStats;

/// The stack's apply logic: a Treiber-style top pointer plus the
/// paper's two single-CAS combiners. Everything else — batching,
/// freezing, elimination pairing, parking, elastic sharding — is the
/// engine's.
struct StackOp<T: Send + 'static> {
    /// `stackTop` (paper line 2): the *only* cross-aggregator
    /// contention point, touched once per batch by each combiner.
    top: CachePadded<AtomicPtr<Node<T>>>,
}

impl<T: Send + 'static> CombineOp for StackOp<T> {
    type Node = Node<T>;
    type Value = T;

    // ------------------------------------------------------------------
    // Push combining (paper lines 33–51)
    // ------------------------------------------------------------------

    /// `PushToStack`: build the substack of all non-eliminated pushes
    /// and splice it onto the shared stack with one CAS.
    fn combine_add(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        _agg_idx: usize,
        _guard: &Guard<'_, '_>,
    ) {
        let add_at_freeze = batch.add_at_freeze.load(Ordering::Acquire) as usize;

        // Line 36: our own node is the bottom of the substack (we are
        // the surviving push with the smallest sequence number, hence
        // LIFO-first, hence deepest).
        let bot = batch.slots[my_seq].load(Ordering::Acquire);
        debug_assert!(
            !bot.is_null(),
            "combiner published its node before freezing"
        );

        // Erratum fix (DESIGN.md §2.1): the chain grows from `bot`, not
        // from null — otherwise single-push batches would install null
        // and multi-push batches would orphan `bot`.
        let mut top = bot;
        for i in my_seq + 1..add_at_freeze {
            // Line 38: the push with sequence number `i` belongs to the
            // batch (i < pushCountAtFreeze), so it *will* publish its
            // node; it may just not have gotten to line 7 yet.
            let n = wait_ptr(&batch.slots[i], eng.config().wait);
            // Lines 41–42: link below the running top. Relaxed is
            // enough: the successful CAS below releases the whole chain.
            unsafe { (*n).next.store(top, Ordering::Relaxed) };
            top = n;
        }

        // Lines 44–50: splice the substack in with a single CAS.
        let mut backoff = Backoff::new();
        loop {
            let cur = self.top.load(Ordering::Acquire);
            unsafe { (*bot).next.store(cur, Ordering::Relaxed) };
            if self
                .top
                .compare_exchange(cur, top, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // Contention is only with other combiners (≤ one per live
            // batch), so plain spinning suffices. The failure count is
            // the contention monitor's cross-aggregator signal.
            eng.stats().record_cas_failure();
            backoff.spin();
        }
    }

    // ------------------------------------------------------------------
    // Pop combining (paper lines 80–94)
    // ------------------------------------------------------------------

    /// `PopFromStack`: unlink one node per non-eliminated pop (up to
    /// the stack's depth) with a single CAS, and publish the removed
    /// chain.
    fn combine_remove(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        _agg_idx: usize,
        _guard: &Guard<'_, '_>,
    ) {
        let remove_at_freeze = batch.remove_at_freeze.load(Ordering::Acquire) as usize;
        // One node per non-eliminated pop. (Erratum fix, DESIGN.md
        // §2.2: the paper's `while ++i < popCountAtFreeze` advances
        // k−1 times.)
        let wanted = remove_at_freeze - my_seq;

        let mut backoff = Backoff::new();
        loop {
            let top = self.top.load(Ordering::Acquire);
            let mut bot = top;
            for _ in 0..wanted {
                if bot.is_null() {
                    break; // stack shallower than the batch: take it all
                }
                bot = unsafe { (*bot).next.load(Ordering::Acquire) };
            }
            if self
                .top
                .compare_exchange(top, bot, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Line 93: publish the unlinked chain; the Release
                // store of `applied` (by the engine) orders it for
                // waiters.
                batch.result_head.store(top, Ordering::Release);
                return;
            }
            eng.stats().record_cas_failure();
            backoff.spin();
        }
    }

    /// Lines 65–67: the pop's push partner publishes its node right
    /// after announcing; wait for the slot and take the value.
    fn eliminate(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        guard: &Guard<'_, '_>,
    ) -> T {
        let n = wait_ptr(&batch.slots[my_seq], eng.config().wait);
        // Safety: pushes and pops pair off by sequence number, so we
        // are this node's unique consumer; payload out, husk recycles.
        let value = unsafe { Node::take_value(n) };
        unsafe { guard.retire_recycle(n) };
        value
    }

    /// `GetValue` (lines 95–103): the pop at `offset` consumes the
    /// `offset`-th unlinked node, or reports EMPTY if the stack ran
    /// out. The chain is *not* null-terminated (its deepest link runs
    /// into the remaining stack) — the walk is bounded by `offset`,
    /// which the combiner's unlink count covers.
    fn take_result(
        &self,
        _eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        offset: usize,
        guard: &Guard<'_, '_>,
    ) -> Option<T> {
        let mut cur = batch.result_head.load(Ordering::Acquire);
        for _ in 0..offset {
            if cur.is_null() {
                return None;
            }
            cur = unsafe { (*cur).next.load(Ordering::Acquire) };
        }
        if cur.is_null() {
            return None;
        }
        // Safety: the combiner unlinked exactly `wanted` nodes and each
        // offset is claimed by exactly one pop of this batch, so we are
        // the unique consumer; every reader of this chain is pinned.
        // The payload is out, so the husk recycles.
        let value = unsafe { Node::take_value(cur) };
        unsafe { guard.retire_recycle(cur) };
        Some(value)
    }
}

impl<T: Send + 'static> Drop for StackOp<T> {
    fn drop(&mut self) {
        // Runs during engine teardown, after the engine freed the
        // current batches and before the collector frees retired
        // husks: free the remaining shared-stack nodes together with
        // their payloads.
        let mut cur = self.top.load(Ordering::Relaxed);
        while !cur.is_null() {
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            unsafe { Node::drop_in_place_with_value(cur) };
            cur = next;
        }
    }
}

/// The Sharded Elimination and Combining stack (blocking, linearizable).
///
/// Construct with [`SecStack::new`] (paper defaults: two aggregators)
/// or [`SecStack::with_config`]; each thread obtains a [`SecHandle`]
/// via [`ConcurrentStack::register`] (or the inherent
/// [`SecStack::register`]) and performs its operations through it.
///
/// # Examples
///
/// ```
/// use sec_core::{SecStack, ConcurrentStack, StackHandle};
///
/// let stack: SecStack<i32> = SecStack::new(4); // up to 4 threads
/// let mut h = stack.register();
/// h.push(1);
/// h.push(2);
/// assert_eq!(h.peek(), Some(2));
/// assert_eq!(h.pop(), Some(2));
/// assert_eq!(h.pop(), Some(1));
/// assert_eq!(h.pop(), None);
/// ```
pub struct SecStack<T: Send + 'static> {
    engine: CombineEngine<StackOp<T>>,
}

// Safety: all shared state is atomics; node/batch ownership transfer
// follows the algorithm's exactly-once consumption discipline, so `T`
// values cross threads only as `Send` payloads.
unsafe impl<T: Send> Send for SecStack<T> {}
unsafe impl<T: Send> Sync for SecStack<T> {}

impl<T: Send + 'static> SecStack<T> {
    /// Creates a stack with the paper's default configuration (two
    /// aggregators) for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(SecConfig::new(2, max_threads))
    }

    /// Creates a stack from an explicit [`SecConfig`].
    pub fn with_config(config: SecConfig) -> Self {
        Self {
            engine: CombineEngine::new(
                "SecStack",
                StackOp {
                    top: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
                },
                config,
                AggLayout::Mapped { with_slots: true },
            ),
        }
    }

    /// Registers the calling thread. Prefer the trait method
    /// [`ConcurrentStack::register`]; this inherent version exists so
    /// callers don't need the trait in scope.
    pub fn register(&self) -> SecHandle<'_, T> {
        let (reclaim, state) = self.engine.register();
        SecHandle {
            stack: self,
            state,
            reclaim,
        }
    }

    /// The configuration this stack was built with.
    pub fn config(&self) -> &SecConfig {
        self.engine.config()
    }

    /// The batching/elimination/combining instrumentation (Tables 1–3).
    pub fn stats(&self) -> &SecStats {
        self.engine.stats()
    }

    /// Reclamation statistics (diagnostic). The recycle hit/miss/
    /// overflow counters are exact once every handle has dropped.
    pub fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.engine.reclaim_stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances) and returns the resulting stats. With every handle
    /// dropped, a successful quiesce leaves `retired == freed +
    /// cached` — the leak identity the test battery asserts.
    pub fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.engine.quiesce_reclamation(rounds)
    }

    /// Number of currently active aggregators.
    pub fn active_aggregators(&self) -> usize {
        self.engine.active_aggregators()
    }

    /// Forces the active aggregator count to `k` (clamped into the
    /// policy's `[min_k, max_k]`; a no-op for
    /// [`AggregatorPolicy::Fixed`](crate::AggregatorPolicy::Fixed),
    /// whose bounds coincide). Returns the count now in force.
    ///
    /// This is the manual override behind the stress and
    /// linearizability suites, which drive grow/shrink transitions at
    /// chosen points instead of waiting for the contention monitor; it
    /// serializes with monitor decisions through the same election and
    /// arms the same epoch fence. Each step of the change is recorded
    /// in the [`SecStats`] resize counters.
    pub fn set_active_aggregators(&self, k: usize) -> usize {
        self.engine.set_active_aggregators(k)
    }

    /// A point-in-time poll of the protocol counters; two snapshots
    /// differentiate into time-windowed rates via
    /// [`TraceSnapshot::rates_since`]. Always available — it reads the
    /// same counters as [`SecStack::stats`].
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.engine.trace_snapshot()
    }

    /// The sec-trace recorder (event rings + phase histograms,
    /// DESIGN.md §14): `Some` only when the stack was configured with
    /// [`TraceConfig::enabled`](crate::TraceConfig) *and* the crate was
    /// built with the `trace` cargo feature.
    pub fn tracer(&self) -> Option<&TraceRecorder> {
        self.engine.tracer()
    }
}

impl<T: Send + 'static> fmt::Debug for SecStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecStack")
            .field("config", self.config())
            .field("active_aggregators", &self.active_aggregators())
            .field("stats", &self.stats().report())
            .finish()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for SecStack<T> {
    type Handle<'a>
        = SecHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> SecHandle<'_, T> {
        SecStack::register(self)
    }

    fn name(&self) -> &'static str {
        "SEC"
    }
}

/// A thread's handle to a [`SecStack`].
pub struct SecHandle<'a, T: Send + 'static> {
    stack: &'a SecStack<T>,
    /// Announcement-mapping state (dense tid, `seen_k`, aggregator
    /// index) — the engine re-maps it lazily on elastic resizes.
    state: OpState,
    reclaim: ReclaimHandle<'a>,
}

impl<'a, T: Send + 'static> SecHandle<'a, T> {
    /// This thread's id (dense, `0..max_threads`).
    pub fn tid(&self) -> usize {
        self.state.tid()
    }

    /// The aggregator this thread last announced to (under an adaptive
    /// policy the assignment moves with the active count).
    pub fn aggregator(&self) -> usize {
        self.state.aggregator()
    }

    /// A point-in-time poll of the stack's protocol counters (see
    /// [`SecStack::trace_snapshot`]) — handle-level so monitoring code
    /// holding only a handle can poll live rates.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.stack.trace_snapshot()
    }

    /// Algorithm 1. Returns when the push is linearized.
    pub fn push(&mut self, value: T) {
        // Line 3: one node per push, reused across batch retries —
        // popped off this thread's recycle cache before touching the
        // heap (DESIGN.md §10). Lines 4–26 are the engine's driver.
        let node = Node::alloc_with(&self.reclaim, value);
        self.stack.engine.run(
            Lane::Mapped(&mut self.state),
            Role::Add,
            node,
            &self.reclaim,
        );
    }

    /// Algorithm 2. Returns the popped value, or `None` for EMPTY.
    pub fn pop(&mut self) -> Option<T> {
        // Lines 54–78 are the engine's driver; elimination, the
        // combiner's unlink and `GetValue` come back through the
        // stack's `CombineOp` hooks.
        self.stack.engine.run(
            Lane::Mapped(&mut self.state),
            Role::Remove,
            ptr::null_mut(),
            &self.reclaim,
        )
    }

    /// Peek (§3.2: "simply a read of stackTop, similar to the Treiber
    /// stack").
    pub fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let _guard = self.reclaim.pin();
        let top = self.stack.engine.op().top.load(Ordering::Acquire);
        if top.is_null() {
            None
        } else {
            // Safety: pinned, so the node cannot be freed; its value
            // bytes stay intact even if a concurrent pop consumes it
            // (consumption is a non-destructive read; see node.rs).
            Some(core::mem::ManuallyDrop::into_inner(unsafe {
                (*top).value.clone()
            }))
        }
    }
}

impl<T: Send + 'static> StackHandle<T> for SecHandle<'_, T> {
    fn push(&mut self, value: T) {
        SecHandle::push(self, value);
    }

    fn pop(&mut self) -> Option<T> {
        SecHandle::pop(self)
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        SecHandle::peek(self)
    }
}

impl<T: Send + 'static> fmt::Debug for SecHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecHandle")
            .field("tid", &self.tid())
            .field("aggregator", &self.aggregator())
            .finish()
    }
}

#[cfg(test)]
mod tests;
