//! The SEC stack: Algorithms 1 and 2 of the paper, instantiated from
//! the generic combining engine.
//!
//! Module layout:
//!
//! * `node` — shared-stack nodes (paper Figure 1, `Node`),
//! * [`elastic`] — the contention monitor behind
//!   [`AggregatorPolicy::Adaptive`](crate::AggregatorPolicy::Adaptive)
//!   (DESIGN.md §8),
//! * [`stats`] — the Table 1–3 instrumentation,
//! * [`model`] — the closed-form binomial prediction of the
//!   elimination/combining degrees the instrumentation measures,
//! * this file — [`SecStack`], [`SecHandle`], and the stack's
//!   `CombineOp` instantiation: the single-CAS substack splice
//!   (push combining), the single-CAS chain unlink (pop combining)
//!   and elimination through the slot array.
//!
//! The protocol itself — announcement, freezing, freezer election,
//! elimination pairing, combiner election, waiter parking, elastic
//! re-mapping — lives in `crate::combine` (DESIGN.md §12); this file
//! contains only what is specific to a *stack*. Comments reference the
//! paper's pseudocode line numbers (Algorithm 1 = push, lines 1–51;
//! Algorithm 2 = pop, lines 52–103). Two pseudocode errata are
//! corrected here, both documented in DESIGN.md §2: the push
//! combiner's substack chain starts at its own node (`top = bot`, not
//! `⊥`), and the pop combiner advances its cursor once per
//! non-eliminated pop (the paper's loop advances one time too few,
//! which would pop `k−1` nodes for `k` pops while handing out `k`
//! values).

pub mod elastic;
pub mod model;
pub(crate) mod node;
pub mod stats;

use crate::combine::durable::{
    self, fault, fault::FaultPoint, opcode, DurableCore, DurableError, DurablePolicy, DurableReq,
    DurableStats, Family, OpResult, RecoveryReport,
};
use crate::combine::{
    wait_ptr, AggLayout, CombineBatch, CombineEngine, CombineOp, Lane, OpState, Role,
};
use crate::config::SecConfig;
use crate::trace::{TraceRecorder, TraceSnapshot};
use crate::traits::{ConcurrentStack, StackHandle};
use core::fmt;
use core::ptr;
use core::sync::atomic::{AtomicPtr, Ordering};
use node::Node;
use sec_reclaim::{Guard, Handle as ReclaimHandle};
use sec_sync::{Backoff, CachePadded};
use stats::SecStats;

/// The stack's apply logic: a Treiber-style top pointer plus the
/// paper's two single-CAS combiners. Everything else — batching,
/// freezing, elimination pairing, parking, elastic sharding — is the
/// engine's.
struct StackOp<T: Send + 'static> {
    /// `stackTop` (paper line 2): the *only* cross-aggregator
    /// contention point, touched once per batch by each combiner.
    top: CachePadded<AtomicPtr<Node<T>>>,
    /// Redo log + intent cells when built durable (DESIGN.md §16);
    /// when set, every mutating op routes through the dedicated
    /// durable aggregators at `bulk_agg(DUR_BASE..)`.
    durable: Option<DurableCore>,
}

/// Bulk-aggregator index of the first durable shard (`bulk_agg(0)` is
/// `push_many`, `bulk_agg(1)` is `pop_many`).
const DUR_BASE: usize = 2;

/// A bulk-pop announcement: `pop_many` announces one of these (cast to
/// the node type — the engine never dereferences announcement
/// pointers, only the family hooks do, and they branch on the
/// aggregator index first) instead of `want` separate pops.
///
/// The pointers reference the announcing thread's frame, which blocks
/// until the batch is `applied` — so they are live for the combiner's
/// whole walk. The combiner's plain writes to `out`/`taken` are
/// published to the announcer by the engine's Release store of
/// `applied` (paired with the waiter's Acquire).
struct PopManyReq<T> {
    /// How many values this request asks for.
    want: usize,
    /// Spare capacity in the caller's buffer; the combiner writes
    /// `taken` initialized values starting here.
    out: *mut T,
    /// How many values the combiner actually delivered (≤ `want`;
    /// short when the stack ran dry).
    taken: usize,
}

/// Walks a published push chain from its announced top to its
/// null-terminated bottom. A single push is a one-node chain (nodes
/// allocate with a null `next`), so the mapped and bulk aggregators
/// share one combiner.
///
/// # Safety
///
/// `top` must be a published announcement node; the chain's links were
/// written by the announcing thread before the Release publication the
/// caller's Acquire slot load paired with.
unsafe fn chain_bottom<T: Send>(top: *mut Node<T>) -> *mut Node<T> {
    let mut cur = top;
    loop {
        // Safety: per the function contract, every link reached from
        // `top` is a live published node.
        let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
        if next.is_null() {
            return cur;
        }
        cur = next;
    }
}

impl<T: Send + 'static> StackOp<T> {
    /// The bulk-pop combiner: tally the batch's total demand, unlink
    /// that many nodes with one CAS (exactly the shape of the mapped
    /// lanes' `combine_remove`), then deal the chain out to the
    /// requests in announcement order — the earliest announcement
    /// takes the shallowest nodes, so a `pop_many(n)` observes `n`
    /// consecutive stack tops (LIFO, as if by `n` sequential pops).
    fn combine_pop_many(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        guard: &Guard<'_, '_>,
    ) {
        let cut = batch.frozen_cut(Role::Remove);
        let mut total = 0usize;
        for slot in &batch.slots[my_seq..cut] {
            let req = wait_ptr(slot, eng.config().wait) as *mut PopManyReq<T>;
            // Safety: the request outlives the batch (announcer blocks
            // on `applied`); the combiner is its unique accessor.
            total += unsafe { (*req).want };
        }

        // Unlink up to `total` nodes with a single CAS. Successive
        // batches' combiners (and the mapped aggregators') race here,
        // hence the retry loop.
        let mut backoff = Backoff::new();
        let chain = loop {
            let top = self.top.load(Ordering::Acquire);
            let mut bot = top;
            let mut avail = 0usize;
            while avail < total && !bot.is_null() {
                bot = unsafe { (*bot).next.load(Ordering::Acquire) };
                avail += 1;
            }
            if self
                .top
                .compare_exchange(top, bot, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break top;
            }
            eng.stats().record_cas_failure();
            backoff.spin();
        };

        // Deal the unlinked chain out in slot order. A drained stack
        // leaves `cur` null early; the remaining requests report
        // `taken == 0` (EMPTY), exactly like a sequence of pops that
        // arrived after the stack emptied.
        let mut cur = chain;
        for slot in &batch.slots[my_seq..cut] {
            let req = slot.load(Ordering::Acquire) as *mut PopManyReq<T>;
            let want = unsafe { (*req).want };
            let out = unsafe { (*req).out };
            let mut taken = 0usize;
            while taken < want && !cur.is_null() {
                let next = unsafe { (*cur).next.load(Ordering::Acquire) };
                // Safety: the combiner is each unlinked node's unique
                // consumer; payload moves into the caller's spare
                // capacity (uninitialized — `write`, not assignment),
                // husk recycles.
                unsafe { out.add(taken).write(Node::take_value(cur)) };
                unsafe { guard.retire_recycle(cur) };
                taken += 1;
                cur = next;
            }
            unsafe { (*req).taken = taken };
        }
    }

    /// The durable combiner: applies each frozen push/pop to the
    /// shared stack and redo-logs the batch under the core's apply
    /// lock. On a durable stack *every* mutating op routes here, so
    /// the apply lock is the only `top` writer and log order equals
    /// application order — the property replay relies on.
    fn combine_durable(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        shard: usize,
        d: &DurableCore,
        guard: &Guard<'_, '_>,
    ) {
        let cut = batch.frozen_cut(Role::Remove);
        let reqs = durable::frozen_reqs(batch, my_seq, cut, eng.config().wait);
        // Safety: every pointer was announced into this frozen batch
        // and its owner blocks until `applied`; pops are each node's
        // unique consumer under the apply lock.
        unsafe {
            d.combine_batch(shard, &reqs, |req| match req.opcode {
                opcode::PUSH => {
                    let value: T = durable::from_word(req.operand);
                    let cur = self.top.load(Ordering::Relaxed);
                    let n = Box::into_raw(Box::new(Node {
                        value: core::mem::ManuallyDrop::new(value),
                        next: AtomicPtr::new(cur),
                    }));
                    self.top.store(n, Ordering::Release);
                    req.set_result(OpResult::Unit);
                }
                opcode::POP => {
                    let t = self.top.load(Ordering::Relaxed);
                    if t.is_null() {
                        req.set_result(OpResult::Empty);
                    } else {
                        let next = (*t).next.load(Ordering::Relaxed);
                        self.top.store(next, Ordering::Release);
                        let value = Node::take_value(t);
                        guard.retire_recycle(t);
                        req.set_result(OpResult::Value(durable::to_word(value)));
                    }
                }
                other => unreachable!("stack durable opcode {other}"),
            });
        }
    }
}

impl<T: Send + 'static> CombineOp for StackOp<T> {
    type Node = Node<T>;
    type Value = T;

    // ------------------------------------------------------------------
    // Push combining (paper lines 33–51)
    // ------------------------------------------------------------------

    /// `PushToStack`: build the substack of all non-eliminated pushes
    /// and splice it onto the shared stack with one CAS.
    fn combine_add(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        _agg_idx: usize,
        _guard: &Guard<'_, '_>,
    ) {
        let add_at_freeze = batch.frozen_cut(Role::Add);

        // Line 36: our own node is the bottom of the substack (we are
        // the surviving push with the smallest sequence number, hence
        // LIFO-first, hence deepest). A `push_many` publishes a whole
        // downward chain under one announcement, so every slot holds a
        // chain — length one for plain pushes — and splicing links each
        // chain's *bottom* under the running top.
        let first = batch.slots[my_seq].load(Ordering::Acquire);
        debug_assert!(
            !first.is_null(),
            "combiner published its node before freezing"
        );
        // Safety: published chain, links written before publication.
        let bot = unsafe { chain_bottom(first) };

        // Erratum fix (DESIGN.md §2.1): the chain grows from our own
        // node, not from null — otherwise single-push batches would
        // install null and multi-push batches would orphan `bot`.
        let mut top = first;
        for i in my_seq + 1..add_at_freeze {
            // Line 38: the push with sequence number `i` belongs to the
            // batch (i < pushCountAtFreeze), so it *will* publish its
            // node; it may just not have gotten to line 7 yet.
            let n = wait_ptr(&batch.slots[i], eng.config().wait);
            // Lines 41–42: link this announcement's chain below the
            // running top. Relaxed is enough: the successful CAS below
            // releases the whole chain.
            let b = unsafe { chain_bottom(n) };
            unsafe { (*b).next.store(top, Ordering::Relaxed) };
            top = n;
        }

        // Lines 44–50: splice the substack in with a single CAS.
        let mut backoff = Backoff::new();
        loop {
            let cur = self.top.load(Ordering::Acquire);
            unsafe { (*bot).next.store(cur, Ordering::Relaxed) };
            if self
                .top
                .compare_exchange(cur, top, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // Contention is only with other combiners (≤ one per live
            // batch), so plain spinning suffices. The failure count is
            // the contention monitor's cross-aggregator signal.
            eng.stats().record_cas_failure();
            backoff.spin();
        }
    }

    // ------------------------------------------------------------------
    // Pop combining (paper lines 80–94)
    // ------------------------------------------------------------------

    /// `PopFromStack`: unlink one node per non-eliminated pop (up to
    /// the stack's depth) with a single CAS, and publish the removed
    /// chain.
    fn combine_remove(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) {
        // The bulk aggregator's slots hold `PopManyReq`s, not nodes —
        // its batches are combined request-by-request.
        if agg_idx == eng.bulk_agg(1) {
            return self.combine_pop_many(eng, batch, my_seq, guard);
        }
        if let Some(d) = &self.durable {
            if agg_idx >= eng.bulk_agg(DUR_BASE) {
                let shard = agg_idx - eng.bulk_agg(DUR_BASE);
                return self.combine_durable(eng, batch, my_seq, shard, d, guard);
            }
        }
        let remove_at_freeze = batch.frozen_cut(Role::Remove);
        // One node per non-eliminated pop. (Erratum fix, DESIGN.md
        // §2.2: the paper's `while ++i < popCountAtFreeze` advances
        // k−1 times.)
        let wanted = remove_at_freeze - my_seq;

        let mut backoff = Backoff::new();
        loop {
            let top = self.top.load(Ordering::Acquire);
            let mut bot = top;
            for _ in 0..wanted {
                if bot.is_null() {
                    break; // stack shallower than the batch: take it all
                }
                bot = unsafe { (*bot).next.load(Ordering::Acquire) };
            }
            if self
                .top
                .compare_exchange(top, bot, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Line 93: publish the unlinked chain; the Release
                // store of `applied` (by the engine) orders it for
                // waiters.
                batch.result_head.store(top, Ordering::Release);
                return;
            }
            eng.stats().record_cas_failure();
            backoff.spin();
        }
    }

    /// Lines 65–67: the pop's push partner publishes its node right
    /// after announcing; wait for the slot and take the value.
    fn eliminate(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        my_seq: usize,
        guard: &Guard<'_, '_>,
    ) -> T {
        let n = wait_ptr(&batch.slots[my_seq], eng.config().wait);
        // Safety: pushes and pops pair off by sequence number, so we
        // are this node's unique consumer; payload out, husk recycles.
        let value = unsafe { Node::take_value(n) };
        unsafe { guard.retire_recycle(n) };
        value
    }

    /// `GetValue` (lines 95–103): the pop at `offset` consumes the
    /// `offset`-th unlinked node, or reports EMPTY if the stack ran
    /// out. The chain is *not* null-terminated (its deepest link runs
    /// into the remaining stack) — the walk is bounded by `offset`,
    /// which the combiner's unlink count covers.
    fn take_result(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<T>>,
        offset: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) -> Option<T> {
        if agg_idx == eng.bulk_agg(1) {
            // Bulk pops received their values through their request's
            // buffer; there is no result chain to consume.
            return None;
        }
        if self.durable.is_some() && agg_idx >= eng.bulk_agg(DUR_BASE) {
            // Durable requests carry their results in the request
            // struct. The hook is the harness's mid-publish crash
            // point (results committed, not all consumed yet).
            fault::hit(FaultPoint::MidPublish);
            return None;
        }
        let mut cur = batch.result_head.load(Ordering::Acquire);
        for _ in 0..offset {
            if cur.is_null() {
                return None;
            }
            cur = unsafe { (*cur).next.load(Ordering::Acquire) };
        }
        if cur.is_null() {
            return None;
        }
        // Safety: the combiner unlinked exactly `wanted` nodes and each
        // offset is claimed by exactly one pop of this batch, so we are
        // the unique consumer; every reader of this chain is pinned.
        // The payload is out, so the husk recycles.
        let value = unsafe { Node::take_value(cur) };
        unsafe { guard.retire_recycle(cur) };
        Some(value)
    }
}

impl<T: Send + 'static> Drop for StackOp<T> {
    fn drop(&mut self) {
        // Runs during engine teardown, after the engine freed the
        // current batches and before the collector frees retired
        // husks: free the remaining shared-stack nodes together with
        // their payloads.
        let mut cur = self.top.load(Ordering::Relaxed);
        while !cur.is_null() {
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            unsafe { Node::drop_in_place_with_value(cur) };
            cur = next;
        }
    }
}

/// The Sharded Elimination and Combining stack (blocking, linearizable).
///
/// Construct with [`SecStack::new`] (paper defaults: two aggregators)
/// or [`SecStack::with_config`]; each thread obtains a [`SecHandle`]
/// via [`ConcurrentStack::register`] (or the inherent
/// [`SecStack::register`]) and performs its operations through it.
///
/// # Examples
///
/// ```
/// use sec_core::{SecStack, ConcurrentStack, StackHandle};
///
/// let stack: SecStack<i32> = SecStack::new(4); // up to 4 threads
/// let mut h = stack.register();
/// h.push(1);
/// h.push(2);
/// assert_eq!(h.peek(), Some(2));
/// assert_eq!(h.pop(), Some(2));
/// assert_eq!(h.pop(), Some(1));
/// assert_eq!(h.pop(), None);
/// ```
pub struct SecStack<T: Send + 'static> {
    engine: CombineEngine<StackOp<T>>,
}

// Safety: all shared state is atomics; node/batch ownership transfer
// follows the algorithm's exactly-once consumption discipline, so `T`
// values cross threads only as `Send` payloads.
unsafe impl<T: Send> Send for SecStack<T> {}
unsafe impl<T: Send> Sync for SecStack<T> {}

impl<T: Send + 'static> SecStack<T> {
    /// Creates a stack with the paper's default configuration (two
    /// aggregators) for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(SecConfig::new(2, max_threads))
    }

    /// Creates a stack from an explicit [`SecConfig`].
    pub fn with_config(config: SecConfig) -> Self {
        Self::build(config, None)
    }

    fn build(config: SecConfig, durable: Option<DurableCore>) -> Self {
        let shards = durable.as_ref().map_or(0, |d| d.shards());
        Self {
            engine: CombineEngine::new(
                "SecStack",
                StackOp {
                    top: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
                    durable,
                },
                config,
                // Two bulk aggregators past the mapped prefix:
                // `bulk_agg(0)` carries `push_many` chains (add lane),
                // `bulk_agg(1)` carries `pop_many` requests (remove
                // lane). Each is single-lane, so its batches degenerate
                // to pure combining — elimination never applies to a
                // bulk announcement. Durable shards (if any) follow.
                AggLayout::Mapped {
                    with_slots: true,
                    bulk: 2 + shards,
                },
            ),
        }
    }

    /// Registers the calling thread. Prefer the trait method
    /// [`ConcurrentStack::register`]; this inherent version exists so
    /// callers don't need the trait in scope.
    pub fn register(&self) -> SecHandle<'_, T> {
        let (reclaim, state) = self.engine.register();
        let dur_seq = self
            .engine
            .op()
            .durable
            .as_ref()
            .map_or(1, |d| d.start_seq(state.tid()));
        SecHandle {
            stack: self,
            state,
            reclaim,
            dur_seq,
        }
    }

    /// The configuration this stack was built with.
    pub fn config(&self) -> &SecConfig {
        self.engine.config()
    }

    /// The batching/elimination/combining instrumentation (Tables 1–3).
    pub fn stats(&self) -> &SecStats {
        self.engine.stats()
    }

    /// Reclamation statistics (diagnostic). The recycle hit/miss/
    /// overflow counters are exact once every handle has dropped.
    pub fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.engine.reclaim_stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances) and returns the resulting stats. With every handle
    /// dropped, a successful quiesce leaves `retired == freed +
    /// cached` — the leak identity the test battery asserts.
    pub fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.engine.quiesce_reclamation(rounds)
    }

    /// Number of currently active aggregators.
    pub fn active_aggregators(&self) -> usize {
        self.engine.active_aggregators()
    }

    /// Forces the active aggregator count to `k` (clamped into the
    /// policy's `[min_k, max_k]`; a no-op for
    /// [`AggregatorPolicy::Fixed`](crate::AggregatorPolicy::Fixed),
    /// whose bounds coincide). Returns the count now in force.
    ///
    /// This is the manual override behind the stress and
    /// linearizability suites, which drive grow/shrink transitions at
    /// chosen points instead of waiting for the contention monitor; it
    /// serializes with monitor decisions through the same election and
    /// arms the same epoch fence. Each step of the change is recorded
    /// in the [`SecStats`] resize counters.
    pub fn set_active_aggregators(&self, k: usize) -> usize {
        self.engine.set_active_aggregators(k)
    }

    /// A point-in-time poll of the protocol counters; two snapshots
    /// differentiate into time-windowed rates via
    /// [`TraceSnapshot::rates_since`]. Always available — it reads the
    /// same counters as [`SecStack::stats`].
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.engine.trace_snapshot()
    }

    /// The sec-trace recorder (event rings + phase histograms,
    /// DESIGN.md §14): `Some` only when the stack was configured with
    /// [`TraceConfig::enabled`](crate::TraceConfig) *and* the crate was
    /// built with the `trace` cargo feature.
    pub fn tracer(&self) -> Option<&TraceRecorder> {
        self.engine.tracer()
    }
}

impl SecStack<u64> {
    /// Creates a crash-durable stack over `policy`'s persistent heap:
    /// every push/pop writes an intent cell before announcing and is
    /// redo-logged (with its result) by its batch's combiner before
    /// the result is published (DESIGN.md §16). Durable structures
    /// carry `u64` payloads.
    pub fn durable(max_threads: usize, policy: DurablePolicy) -> Result<Self, DurableError> {
        let core = DurableCore::create(&policy, Family::Stack, 0, max_threads)?;
        Ok(Self::build(SecConfig::new(2, max_threads), Some(core)))
    }

    /// Recovers a durable stack from `policy.mode`'s existing heap:
    /// replays the committed redo log in global order (verifying each
    /// logged result against the replay) and reports, per handle,
    /// whether its last announced op executed and with what result.
    pub fn recover(policy: DurablePolicy) -> Result<(Self, RecoveryReport), DurableError> {
        let (core, report) = DurableCore::open(&policy, Family::Stack)?;
        let config = SecConfig::new(2, core.max_handles());
        let stack = Self::build(config, Some(core));
        let top = &stack.engine.op().top;
        for op in &report.ops {
            match op.opcode {
                opcode::PUSH => {
                    if op.result != OpResult::Unit {
                        return Err(DurableError::Corrupt(format!(
                            "push logged a non-unit result {:?}",
                            op.result
                        )));
                    }
                    let n = Box::into_raw(Box::new(Node {
                        value: core::mem::ManuallyDrop::new(op.operand),
                        next: AtomicPtr::new(top.load(Ordering::Relaxed)),
                    }));
                    top.store(n, Ordering::Relaxed);
                }
                opcode::POP => {
                    let t = top.load(Ordering::Relaxed);
                    let replayed = if t.is_null() {
                        OpResult::Empty
                    } else {
                        // Safety: replay is single-threaded and the
                        // chain was built above; the husk is a plain
                        // Box allocation.
                        let next = unsafe { (*t).next.load(Ordering::Relaxed) };
                        top.store(next, Ordering::Relaxed);
                        let v = unsafe { Node::take_value(t) };
                        drop(unsafe { Box::from_raw(t) });
                        OpResult::Value(v)
                    };
                    if replayed != op.result {
                        return Err(DurableError::Corrupt(format!(
                            "replay diverged: logged {:?}, replayed {:?}",
                            op.result, replayed
                        )));
                    }
                }
                other => {
                    return Err(DurableError::Corrupt(format!(
                        "stack log holds foreign opcode {other}"
                    )))
                }
            }
        }
        Ok((stack, report))
    }

    /// The persistent heap backing this stack (durable stacks only) —
    /// hold it across a drop to recover a Volatile-mode heap.
    pub fn durable_heap(&self) -> Option<std::sync::Arc<sec_reclaim::PersistentHeap>> {
        self.engine.op().durable.as_ref().map(|d| d.heap())
    }

    /// Redo-log counters (durable stacks only).
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.engine.op().durable.as_ref().map(|d| d.stats())
    }
}

impl<T: Send + 'static> fmt::Debug for SecStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecStack")
            .field("config", self.config())
            .field("active_aggregators", &self.active_aggregators())
            .field("stats", &self.stats().report())
            .finish()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for SecStack<T> {
    type Handle<'a>
        = SecHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> SecHandle<'_, T> {
        SecStack::register(self)
    }

    fn name(&self) -> &'static str {
        "SEC"
    }
}

/// A thread's handle to a [`SecStack`].
pub struct SecHandle<'a, T: Send + 'static> {
    stack: &'a SecStack<T>,
    /// Announcement-mapping state (dense tid, `seen_k`, aggregator
    /// index) — the engine re-maps it lazily on elastic resizes.
    state: OpState,
    reclaim: ReclaimHandle<'a>,
    /// Next per-handle durable op sequence number (1-based; resumes
    /// from the recovered log on durable stacks, unused otherwise).
    dur_seq: u64,
}

impl<'a, T: Send + 'static> SecHandle<'a, T> {
    /// This thread's id (dense, `0..max_threads`).
    pub fn tid(&self) -> usize {
        self.state.tid()
    }

    /// The aggregator this thread last announced to (under an adaptive
    /// policy the assignment moves with the active count).
    pub fn aggregator(&self) -> usize {
        self.state.aggregator()
    }

    /// A point-in-time poll of the stack's protocol counters (see
    /// [`SecStack::trace_snapshot`]) — handle-level so monitoring code
    /// holding only a handle can poll live rates.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.stack.trace_snapshot()
    }

    /// Algorithm 1. Returns when the push is linearized.
    pub fn push(&mut self, value: T) {
        if self.stack.engine.op().durable.is_some() {
            let w = durable::to_word(value);
            self.durable_op(opcode::PUSH, w);
            return;
        }
        // Line 3: one node per push, reused across batch retries —
        // popped off this thread's recycle cache before touching the
        // heap (DESIGN.md §10). Lines 4–26 are the engine's driver.
        let node = Node::alloc_with(&self.reclaim, value);
        self.stack.engine.run(
            Lane::Mapped(&mut self.state),
            Role::Add,
            node,
            &self.reclaim,
        );
    }

    /// Algorithm 2. Returns the popped value, or `None` for EMPTY.
    pub fn pop(&mut self) -> Option<T> {
        if self.stack.engine.op().durable.is_some() {
            return match self.durable_op(opcode::POP, 0) {
                OpResult::Empty => None,
                OpResult::Value(w) => Some(durable::from_word(w)),
                OpResult::Unit => unreachable!("pop produced a unit result"),
            };
        }
        // Lines 54–78 are the engine's driver; elimination, the
        // combiner's unlink and `GetValue` come back through the
        // stack's `CombineOp` hooks.
        self.stack.engine.run(
            Lane::Mapped(&mut self.state),
            Role::Remove,
            ptr::null_mut(),
            &self.reclaim,
        )
    }

    /// The durable op path: persist the intent, announce a request on
    /// this thread's durable shard, read the logged result back out of
    /// the request after publish.
    fn durable_op(&mut self, op: u8, operand: u64) -> OpResult {
        let eng = &self.stack.engine;
        let d = eng.op().durable.as_ref().expect("durable route");
        let tid = self.state.tid();
        let seq = self.dur_seq;
        d.write_intent(tid, seq, op, operand, 0);
        let mut req = DurableReq::new(tid, seq, op, operand, 0);
        let node = (&mut req as *mut DurableReq).cast::<Node<T>>();
        let shard = d.shard_of(tid);
        eng.run_weighted(
            Lane::At(eng.bulk_agg(DUR_BASE + shard)),
            Role::Remove,
            node,
            1,
            &self.reclaim,
        );
        self.dur_seq = seq + 1;
        req.take_result()
    }

    /// Bulk push: pushes every value of `values`, in slice order, as
    /// one announcement (per `MAX_BULK_OPS`-sized chunk) on the
    /// stack's dedicated bulk aggregator — the protocol cost
    /// (announce, freeze, combiner election, one splice CAS share)
    /// amortizes over the whole slice. The pushes linearize
    /// consecutively at the combiner's splice, so afterwards the last
    /// element of `values` is nearest the top, exactly as if pushed
    /// one at a time with no interleaving.
    ///
    pub fn push_many(&mut self, values: &[T])
    where
        T: Clone,
    {
        if self.stack.engine.op().durable.is_some() {
            // Durable stacks make every push an individually
            // detectable logged op.
            for v in values {
                self.push(v.clone());
            }
            return;
        }
        for chunk in values.chunks(crate::combine::MAX_BULK_OPS) {
            // Build the downward chain the combiner expects: the
            // announced node is the chain's top (the chunk's *last*
            // value — LIFO), the first value's node its null-next
            // bottom.
            let mut top = ptr::null_mut();
            for v in chunk {
                let n = Node::alloc_with(&self.reclaim, v.clone());
                unsafe { (*n).next.store(top, Ordering::Relaxed) };
                top = n;
            }
            self.stack.engine.run_weighted(
                Lane::At(self.stack.engine.bulk_agg(0)),
                Role::Add,
                top,
                chunk.len() as u32,
                &self.reclaim,
            );
        }
    }

    /// Bulk pop: pops up to `max` values into `out` (appended in pop
    /// order — shallowest first), returning how many were taken. One
    /// announcement per `MAX_BULK_OPS`-sized chunk covers the whole
    /// request; the pops linearize consecutively at the combiner's
    /// unlink CAS, so a `pop_many(n)` observes `n` consecutive stack
    /// tops. Returns short (possibly 0) when the stack runs dry —
    /// EMPTY for the remainder, exactly like sequential pops.
    ///
    pub fn pop_many(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if self.stack.engine.op().durable.is_some() {
            let mut taken = 0usize;
            while taken < max {
                match self.pop() {
                    Some(v) => {
                        out.push(v);
                        taken += 1;
                    }
                    None => break,
                }
            }
            return taken;
        }
        let mut total = 0usize;
        while total < max {
            let want = (max - total).min(crate::combine::MAX_BULK_OPS);
            out.reserve(want);
            let mut req = PopManyReq {
                want,
                // Safety: `reserve` guaranteed `want` spare slots past
                // the initialized prefix.
                out: unsafe { out.as_mut_ptr().add(out.len()) },
                taken: 0,
            };
            // The cast is the type-erasure trick the counter's bulk
            // path uses: the engine treats announcement pointers as
            // opaque; only `combine_pop_many` looks inside, and it
            // knows the bulk aggregator's slots hold requests.
            let node = (&mut req as *mut PopManyReq<T>).cast::<Node<T>>();
            self.stack.engine.run_weighted(
                Lane::At(self.stack.engine.bulk_agg(1)),
                Role::Remove,
                node,
                want as u32,
                &self.reclaim,
            );
            // Safety: the combiner initialized exactly `taken` values
            // at the spare-capacity cursor before `applied` was
            // published (Acquire-paired in `wait_applied`).
            unsafe { out.set_len(out.len() + req.taken) };
            total += req.taken;
            if req.taken < want {
                break; // drained
            }
        }
        total
    }

    /// Peek (§3.2: "simply a read of stackTop, similar to the Treiber
    /// stack").
    pub fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let _guard = self.reclaim.pin();
        let top = self.stack.engine.op().top.load(Ordering::Acquire);
        if top.is_null() {
            None
        } else {
            // Safety: pinned, so the node cannot be freed; its value
            // bytes stay intact even if a concurrent pop consumes it
            // (consumption is a non-destructive read; see node.rs).
            Some(core::mem::ManuallyDrop::into_inner(unsafe {
                (*top).value.clone()
            }))
        }
    }
}

impl<T: Send + 'static> StackHandle<T> for SecHandle<'_, T> {
    fn push(&mut self, value: T) {
        SecHandle::push(self, value);
    }

    fn pop(&mut self) -> Option<T> {
        SecHandle::pop(self)
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        SecHandle::peek(self)
    }
}

impl<T: Send + 'static> fmt::Debug for SecHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecHandle")
            .field("tid", &self.tid())
            .field("aggregator", &self.aggregator())
            .finish()
    }
}

#[cfg(test)]
mod tests;
