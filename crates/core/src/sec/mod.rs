//! The SEC stack: Algorithms 1 and 2 of the paper.
//!
//! Module layout:
//!
//! * `node` — shared-stack nodes (paper Figure 1, `Node`),
//! * `batch` — batches and aggregators (Figure 1, `Batch`,
//!   `Aggregator`),
//! * [`elastic`] — the contention monitor behind
//!   [`AggregatorPolicy::Adaptive`] (DESIGN.md §8),
//! * [`stats`] — the Table 1–3 instrumentation,
//! * [`model`] — the closed-form binomial prediction of the
//!   elimination/combining degrees the instrumentation measures,
//! * this file — [`SecStack`], [`SecHandle`], and the push/pop/peek
//!   algorithms with the freezing, elimination and combining phases.
//!
//! Comments reference the paper's pseudocode line numbers
//! (Algorithm 1 = push, lines 1–51; Algorithm 2 = pop, lines 52–103).
//! Two pseudocode errata are corrected here, both documented in
//! DESIGN.md §2: the push combiner's substack chain starts at its own
//! node (`top = bot`, not `⊥`), and the pop combiner advances its
//! cursor once per non-eliminated pop (the paper's loop advances one
//! time too few, which would pop `k−1` nodes for `k` pops while handing
//! out `k` values).

pub(crate) mod batch;
pub mod elastic;
pub mod model;
pub(crate) mod node;
pub mod stats;

use crate::config::{AggregatorPolicy, SecConfig};
use crate::traits::{ConcurrentStack, StackHandle};
use batch::{mark_applied, wait_applied, wait_ptr, Aggregator, Batch};
use core::fmt;
use core::ptr;
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use elastic::{ContentionMonitor, Direction};
use node::Node;
use sec_reclaim::{Collector, Guard, Handle as ReclaimHandle};
use sec_sync::event::spin_wait;
use sec_sync::{Backoff, CachePadded};
use stats::SecStats;

/// The Sharded Elimination and Combining stack (blocking, linearizable).
///
/// Construct with [`SecStack::new`] (paper defaults: two aggregators)
/// or [`SecStack::with_config`]; each thread obtains a [`SecHandle`]
/// via [`ConcurrentStack::register`] (or the inherent
/// [`SecStack::register`]) and performs its operations through it.
///
/// # Examples
///
/// ```
/// use sec_core::{SecStack, ConcurrentStack, StackHandle};
///
/// let stack: SecStack<i32> = SecStack::new(4); // up to 4 threads
/// let mut h = stack.register();
/// h.push(1);
/// h.push(2);
/// assert_eq!(h.peek(), Some(2));
/// assert_eq!(h.pop(), Some(2));
/// assert_eq!(h.pop(), Some(1));
/// assert_eq!(h.pop(), None);
/// ```
pub struct SecStack<T: Send + 'static> {
    config: SecConfig,
    /// `stackTop` (paper line 2): the shared Treiber-style top pointer —
    /// the *only* cross-aggregator contention point, touched once per
    /// batch by each combiner.
    top: CachePadded<AtomicPtr<Node<T>>>,
    /// `agg[K]` (paper line 7) — all slots the policy can ever
    /// activate. Under [`AggregatorPolicy::Adaptive`] only the prefix
    /// `aggs[..active]` receives new announcements; retired slots keep
    /// their current batch (in-flight batches drain themselves, every
    /// batch is completed by its own announcers) and are reused when
    /// the active set grows back.
    aggs: Box<[CachePadded<Aggregator<T>>]>,
    /// Number of currently active aggregators, in
    /// `[policy.min_k(), policy.max_k()]`. Constant for
    /// [`AggregatorPolicy::Fixed`].
    active: CachePadded<AtomicUsize>,
    /// Elastic-sharding window accumulator + epoch fence (inert under a
    /// fixed policy).
    monitor: ContentionMonitor,
    /// Elimination-array size for every batch (cached off the config;
    /// `per_aggregator_capacity` iterates the thread map for some
    /// policies and freezers allocate one batch each).
    batch_capacity: usize,
    collector: Collector,
    stats: SecStats,
}

// Safety: all shared state is atomics; node/batch ownership transfer
// follows the algorithm's exactly-once consumption discipline, so `T`
// values cross threads only as `Send` payloads.
unsafe impl<T: Send> Send for SecStack<T> {}
unsafe impl<T: Send> Sync for SecStack<T> {}

impl<T: Send + 'static> SecStack<T> {
    /// Creates a stack with the paper's default configuration (two
    /// aggregators) for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(SecConfig::new(2, max_threads))
    }

    /// Creates a stack from an explicit [`SecConfig`].
    pub fn with_config(config: SecConfig) -> Self {
        // Normalize the two aggregator knobs: `aggregators` (allocated
        // slots) and `policy` are kept in sync by the builders, but the
        // fields are public — make the direct-assignment path behave
        // like the documented one.
        let mut config = config;
        match config.policy {
            AggregatorPolicy::Fixed(k) if k != config.aggregators => {
                config.policy = AggregatorPolicy::Fixed(config.aggregators);
            }
            AggregatorPolicy::Fixed(_) => {}
            AggregatorPolicy::Adaptive { .. } => config.aggregators = config.policy.slots(),
        }
        let cap = config.per_aggregator_capacity();
        Self {
            config,
            top: CachePadded::new(AtomicPtr::new(ptr::null_mut())),
            aggs: (0..config.aggregators)
                .map(|_| CachePadded::new(Aggregator::new(cap)))
                .collect(),
            active: CachePadded::new(AtomicUsize::new(config.policy.initial_active())),
            monitor: ContentionMonitor::new(),
            batch_capacity: cap,
            collector: Collector::with_recycle(config.max_threads, config.recycle),
            stats: SecStats::new(),
        }
    }

    /// Registers the calling thread. Prefer the trait method
    /// [`ConcurrentStack::register`]; this inherent version exists so
    /// callers don't need the trait in scope.
    pub fn register(&self) -> SecHandle<'_, T> {
        let reclaim = self
            .collector
            .register()
            .expect("SecStack: more threads registered than SecConfig::max_threads");
        let tid = reclaim.slot();
        let seen_k = self.active.load(Ordering::Acquire);
        let agg_idx = self.config.aggregator_for(tid, seen_k);
        SecHandle {
            stack: self,
            tid,
            agg_idx,
            seen_k,
            reclaim,
        }
    }

    /// The configuration this stack was built with.
    pub fn config(&self) -> &SecConfig {
        &self.config
    }

    /// The batching/elimination/combining instrumentation (Tables 1–3).
    pub fn stats(&self) -> &SecStats {
        &self.stats
    }

    /// Reclamation statistics (diagnostic). The recycle hit/miss/
    /// overflow counters are exact once every handle has dropped.
    pub fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.collector.stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances) and returns the resulting stats. With every handle
    /// dropped, a successful quiesce leaves `retired == freed +
    /// cached` — the leak identity the test battery asserts.
    pub fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.collector.quiesce(rounds)
    }

    /// Number of currently active aggregators.
    pub fn active_aggregators(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Forces the active aggregator count to `k` (clamped into the
    /// policy's `[min_k, max_k]`; a no-op for [`AggregatorPolicy::Fixed`],
    /// whose bounds coincide). Returns the count now in force.
    ///
    /// This is the manual override behind the stress and
    /// linearizability suites, which drive grow/shrink transitions at
    /// chosen points instead of waiting for the contention monitor; it
    /// serializes with monitor decisions through the same election and
    /// arms the same epoch fence. Each step of the change is recorded
    /// in the [`SecStats`] resize counters.
    pub fn set_active_aggregators(&self, k: usize) -> usize {
        let k = k.clamp(self.config.policy.min_k(), self.config.policy.max_k());
        // A blocking wait on the concurrent decider's `end_decision`:
        // policy-aware, but never parked (decisions are a few loads —
        // there is no waker registration on the monitor).
        spin_wait(self.config.wait, || self.monitor.begin_decision());
        let prev = self.active.swap(k, Ordering::AcqRel);
        for _ in k..prev {
            self.stats.record_shrink();
        }
        for _ in prev..k {
            self.stats.record_grow();
        }
        if k != prev {
            self.monitor.arm_fence(self.collector.global_epoch());
        }
        self.monitor.end_decision();
        k
    }

    /// One elastic-resize attempt: called by the freezer whose batch
    /// filled the decision window (DESIGN.md §8). Loses gracefully to a
    /// concurrent decider, and holds while the epoch fence of the
    /// previous transition is still up.
    fn try_elastic_resize(&self) {
        if !self.monitor.begin_decision() {
            return;
        }
        let epoch = self.collector.global_epoch();
        if self.monitor.fence_passed(epoch) {
            let sample = self.monitor.take_window(self.stats.cas_failures_now());
            let active = self.active.load(Ordering::Relaxed);
            let (min_k, max_k) = (self.config.policy.min_k(), self.config.policy.max_k());
            match elastic::decide(&sample, active, min_k, max_k, self.config.max_threads) {
                // Hysteresis: act only when two consecutive windows
                // vote the same way.
                Some(dir) if self.monitor.confirm(dir) => {
                    match dir {
                        Direction::Grow => {
                            self.active.store(active + 1, Ordering::Release);
                            self.stats.record_grow();
                        }
                        Direction::Shrink => {
                            self.active.store(active - 1, Ordering::Release);
                            self.stats.record_shrink();
                        }
                    }
                    self.monitor.clear_pending();
                    self.monitor.arm_fence(epoch);
                }
                Some(_) => {}
                None => self.monitor.clear_pending(),
            }
        }
        self.monitor.end_decision();
    }

    // ------------------------------------------------------------------
    // Freezing (paper lines 28–32)
    // ------------------------------------------------------------------

    /// `FreezeBatch`: snapshot both counters, install a fresh batch,
    /// retire the frozen one.
    fn freeze_batch(&self, agg: &Aggregator<T>, batch_ptr: *mut Batch<T>, guard: &Guard<'_, '_>) {
        let batch = unsafe { &*batch_ptr };

        // §3.1: the freezer backs off briefly so more operations join
        // the batch, raising the elimination and combining degrees. The
        // yields matter on oversubscribed hosts, where the joining
        // threads need CPU time before the cut (see SecConfig).
        for _ in 0..self.config.freezer_backoff {
            core::hint::spin_loop();
        }
        for _ in 0..self.config.freezer_yields {
            std::thread::yield_now();
        }

        // Lines 29–30: the snapshot order (pop first) matches the paper;
        // any interleaved announcements simply land on one side of the
        // cut or the other. The values are published to every waiter by
        // the Release store of the batch pointer below.
        let pops = batch.pop_count.load(Ordering::Acquire);
        let pushes = batch.push_count.load(Ordering::Acquire);
        batch.pop_at_freeze.store(pops, Ordering::Relaxed);
        batch.push_at_freeze.store(pushes, Ordering::Relaxed);

        self.stats.record_batch(pushes, pops);
        // Elastic sharding: the same frozen snapshot feeds the
        // contention monitor (§8 — measurement free-rides on the
        // freeze).
        let window_full = self.config.policy.is_adaptive()
            && self
                .monitor
                .on_batch(pushes, pops, self.config.policy.window());

        // Line 31: installing the new batch is the freeze's linearization
        // aid — it simultaneously (a) signals spinning announcers that
        // the `*_at_freeze` fields are valid (Release) and (b) directs
        // new announcers to the fresh batch. The fresh batch reuses
        // recycled batch/array blocks when the free lists have them.
        let fresh = Batch::alloc_with(guard.handle(), self.batch_capacity);
        agg.batch.store(fresh, Ordering::Release);
        // Wake the frozen batch's registered swap-waiters: the Release
        // store above published the cut, so the handshake's
        // condition-before-notify contract holds (DESIGN.md §11).
        agg.event.notify_key(batch_ptr as usize, self.stats.wait());

        // The frozen batch is now unreachable for *new* pins; threads
        // already inside it are pinned and keep it alive (§4 of the
        // paper: "a batch is retired … "; we centralize retirement in
        // the freezer, which is unique per batch — Observation B.1).
        // Retired for recycling: once quiesced, its blocks feed the
        // freezer's future `alloc_with` calls instead of the heap.
        unsafe { Batch::retire_with(guard, batch_ptr) };

        // The freezer that filled the decision window runs the resize
        // decision — *after* publishing the fresh batch, so the
        // announcers spinning on the batch pointer never wait through
        // the decision work.
        if window_full {
            self.try_elastic_resize();
        }
    }

    /// Announce-and-freeze prologue shared by push and pop
    /// (lines 8–13 / 57–62). Returns once the batch is frozen.
    #[inline]
    fn freeze_or_wait(
        &self,
        agg: &Aggregator<T>,
        batch_ptr: *mut Batch<T>,
        my_seq: u64,
        guard: &Guard<'_, '_>,
    ) {
        let batch = unsafe { &*batch_ptr };
        if my_seq == 0 && !batch.freezer_decided.swap(true, Ordering::AcqRel) {
            // We won the test&set among the (at most two) first
            // announcers: play the freezer 𝑓_B.
            self.freeze_batch(agg, batch_ptr, guard);
        } else {
            // Line 11/60: wait for the freezer to swap the batch
            // pointer — parked (per the configured policy) on the
            // aggregator's event queue; the freezer wakes us.
            agg.event.wait_until(
                batch_ptr as usize,
                self.config.wait,
                self.stats.wait(),
                || !ptr::eq(agg.batch.load(Ordering::Acquire), batch_ptr),
            );
        }
    }

    // ------------------------------------------------------------------
    // Push combining (paper lines 33–51)
    // ------------------------------------------------------------------

    /// `PushToStack`: build the substack of all non-eliminated pushes
    /// and splice it onto the shared stack with one CAS.
    fn push_to_stack(&self, batch: &Batch<T>, my_seq: usize) {
        let push_at_freeze = batch.push_at_freeze.load(Ordering::Acquire) as usize;

        // Line 36: our own node is the bottom of the substack (we are
        // the surviving push with the smallest sequence number, hence
        // LIFO-first, hence deepest).
        let bot = batch.elim[my_seq].load(Ordering::Acquire);
        debug_assert!(
            !bot.is_null(),
            "combiner published its node before freezing"
        );

        // Erratum fix (DESIGN.md §2.1): the chain grows from `bot`, not
        // from null — otherwise single-push batches would install null
        // and multi-push batches would orphan `bot`.
        let mut top = bot;
        for i in my_seq + 1..push_at_freeze {
            // Line 38: the push with sequence number `i` belongs to the
            // batch (i < pushCountAtFreeze), so it *will* publish its
            // node; it may just not have gotten to line 7 yet.
            let n = wait_ptr(&batch.elim[i], self.config.wait);
            // Lines 41–42: link below the running top. Relaxed is
            // enough: the successful CAS below releases the whole chain.
            unsafe { (*n).next.store(top, Ordering::Relaxed) };
            top = n;
        }

        // Lines 44–50: splice the substack in with a single CAS.
        let mut backoff = Backoff::new();
        loop {
            let cur = self.top.load(Ordering::Acquire);
            unsafe { (*bot).next.store(cur, Ordering::Relaxed) };
            if self
                .top
                .compare_exchange(cur, top, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
            // Contention is only with other combiners (≤ one per live
            // batch), so plain spinning suffices. The failure count is
            // the contention monitor's cross-aggregator signal.
            self.stats.record_cas_failure();
            backoff.spin();
        }
    }

    // ------------------------------------------------------------------
    // Pop combining (paper lines 80–94)
    // ------------------------------------------------------------------

    /// `PopFromStack`: unlink one node per non-eliminated pop (up to the
    /// stack's depth) with a single CAS, and publish the removed chain.
    fn pop_from_stack(&self, batch: &Batch<T>, my_seq: usize) {
        let pop_at_freeze = batch.pop_at_freeze.load(Ordering::Acquire) as usize;
        // One node per non-eliminated pop. (Erratum fix, DESIGN.md §2.2:
        // the paper's `while ++i < popCountAtFreeze` advances k−1 times.)
        let wanted = pop_at_freeze - my_seq;

        let mut backoff = Backoff::new();
        loop {
            let top = self.top.load(Ordering::Acquire);
            let mut bot = top;
            for _ in 0..wanted {
                if bot.is_null() {
                    break; // stack shallower than the batch: take it all
                }
                bot = unsafe { (*bot).next.load(Ordering::Acquire) };
            }
            if self
                .top
                .compare_exchange(top, bot, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Line 93: publish the unlinked chain; the Release store
                // of `applied` (by our caller) orders it for waiters.
                batch.substack_top.store(top, Ordering::Release);
                return;
            }
            self.stats.record_cas_failure();
            backoff.spin();
        }
    }

    /// `GetValue` (lines 95–103): the pop at `offset` consumes the
    /// `offset`-th unlinked node, or reports EMPTY if the stack ran out.
    fn get_value(&self, batch: &Batch<T>, offset: usize, guard: &Guard<'_, '_>) -> Option<T> {
        let mut cur = batch.substack_top.load(Ordering::Acquire);
        for _ in 0..offset {
            if cur.is_null() {
                return None;
            }
            cur = unsafe { (*cur).next.load(Ordering::Acquire) };
        }
        if cur.is_null() {
            return None;
        }
        // Safety: the combiner unlinked exactly `wanted` nodes and each
        // offset is claimed by exactly one pop of this batch, so we are
        // the unique consumer; every reader of this chain is pinned.
        // The payload is out, so the husk recycles.
        let value = unsafe { Node::take_value(cur) };
        unsafe { guard.retire_recycle(cur) };
        Some(value)
    }
}

impl<T: Send + 'static> Drop for SecStack<T> {
    fn drop(&mut self) {
        // No handles exist (they borrow `self`), so everything is
        // quiescent. Free (a) the remaining shared-stack nodes together
        // with their payloads and (b) each aggregator's current (virgin)
        // batch. Retired nodes/batches are freed by the collector's own
        // drop, with payload-less drops — their values were consumed.
        let mut cur = self.top.load(Ordering::Relaxed);
        while !cur.is_null() {
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            unsafe { Node::drop_in_place_with_value(cur) };
            cur = next;
        }
        for agg in self.aggs.iter() {
            let b = agg.batch.load(Ordering::Relaxed);
            if !b.is_null() {
                drop(unsafe { Box::from_raw(b) });
            }
        }
    }
}

impl<T: Send + 'static> fmt::Debug for SecStack<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecStack")
            .field("config", &self.config)
            .field("active_aggregators", &self.active_aggregators())
            .field("stats", &self.stats.report())
            .finish()
    }
}

impl<T: Send + 'static> ConcurrentStack<T> for SecStack<T> {
    type Handle<'a>
        = SecHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> SecHandle<'_, T> {
        SecStack::register(self)
    }

    fn name(&self) -> &'static str {
        "SEC"
    }
}

/// A thread's handle to a [`SecStack`].
pub struct SecHandle<'a, T: Send + 'static> {
    stack: &'a SecStack<T>,
    /// Dense thread id (== the reclamation slot, cached for the
    /// re-mapping check on every operation).
    tid: usize,
    agg_idx: usize,
    /// Active aggregator count `agg_idx` was computed against; a
    /// mismatch against the stack's current count triggers a re-map.
    seen_k: usize,
    reclaim: ReclaimHandle<'a>,
}

impl<'a, T: Send + 'static> SecHandle<'a, T> {
    /// This thread's id (dense, `0..max_threads`).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The aggregator this thread last announced to (under an adaptive
    /// policy the assignment moves with the active count).
    pub fn aggregator(&self) -> usize {
        self.agg_idx
    }

    /// The aggregator for this thread under the *current* active count,
    /// re-mapping lazily when the count changed since the last look.
    /// One shared (rarely-written, cache-padded) load per call; the
    /// re-map itself is a pure index computation.
    #[inline]
    fn current_agg(&mut self) -> &'a Aggregator<T> {
        let stack = self.stack;
        let k = stack.active.load(Ordering::Acquire);
        if k != self.seen_k {
            self.seen_k = k;
            self.agg_idx = stack.config.aggregator_for(self.tid, k);
        }
        &stack.aggs[self.agg_idx]
    }

    /// Algorithm 1. Returns when the push is linearized.
    pub fn push(&mut self, value: T) {
        // Line 3: one node per push, reused across batch retries —
        // popped off this thread's recycle cache before touching the
        // heap (DESIGN.md §10).
        let node = Node::alloc_with(&self.reclaim, value);

        // Lines 4–26.
        loop {
            // Re-read the mapping each attempt: an excluded retry after
            // an elastic re-mapping must land on the thread's *new*
            // aggregator, or a retired one would keep receiving work.
            let agg: &Aggregator<T> = self.current_agg();
            let guard = self.reclaim.pin();
            // Line 5.
            let batch_ptr = agg.batch.load(Ordering::Acquire);
            let batch = unsafe { &*batch_ptr };
            // Line 6: announce. AcqRel: the freezer's counter read and
            // our increment are ordered; the value is our sequence num.
            let my_seq = batch.push_count.fetch_add(1, Ordering::AcqRel) as usize;
            assert!(
                my_seq < batch.elim.len(),
                "SEC invariant violated: more announcements ({}) than the \
                 aggregator capacity ({}) — was the stack shared by more \
                 threads than SecConfig::max_threads?",
                my_seq + 1,
                batch.elim.len()
            );
            // Line 7: publish the node *before* anything else, so
            // neither an eliminating pop nor the combiner waits on us
            // longer than necessary (§3.1).
            batch.elim[my_seq].store(node, Ordering::Release);

            // Lines 8–13.
            self.stack
                .freeze_or_wait(agg, batch_ptr, my_seq as u64, &guard);

            // Line 14: inclusion test.
            let push_at_freeze = batch.push_at_freeze.load(Ordering::Acquire) as usize;
            if my_seq < push_at_freeze {
                let pop_at_freeze = batch.pop_at_freeze.load(Ordering::Acquire) as usize;
                // Line 15: elimination test — if a pop with our sequence
                // number belongs to the batch, it consumes our node and
                // we are done the moment the batch froze.
                if my_seq >= pop_at_freeze {
                    // Line 16: combiner test.
                    if my_seq == pop_at_freeze {
                        self.stack.push_to_stack(batch, my_seq);
                        // Line 18 — and wake the batch's waiters.
                        mark_applied(agg, batch, batch_ptr, self.stack.stats.wait());
                    } else {
                        // Line 20: parked wait for the combiner.
                        wait_applied(
                            agg,
                            batch,
                            batch_ptr,
                            self.stack.config.wait,
                            self.stack.stats.wait(),
                        );
                    }
                }
                // Line 24.
                return;
            }
            // Excluded (announced after the freeze): retry in a newer
            // batch; our node is still exclusively ours.
        }
    }

    /// Algorithm 2. Returns the popped value, or `None` for EMPTY.
    pub fn pop(&mut self) -> Option<T> {
        // Lines 54–78.
        loop {
            let agg: &Aggregator<T> = self.current_agg();
            let guard = self.reclaim.pin();
            // Line 55.
            let batch_ptr = agg.batch.load(Ordering::Acquire);
            let batch = unsafe { &*batch_ptr };
            // Line 56: announce.
            let my_seq = batch.pop_count.fetch_add(1, Ordering::AcqRel) as usize;
            assert!(
                my_seq < batch.elim.len(),
                "SEC invariant violated: more announcements than capacity"
            );

            // Lines 57–62.
            self.stack
                .freeze_or_wait(agg, batch_ptr, my_seq as u64, &guard);

            // Line 63: inclusion test.
            let pop_at_freeze = batch.pop_at_freeze.load(Ordering::Acquire) as usize;
            if my_seq < pop_at_freeze {
                let push_at_freeze = batch.push_at_freeze.load(Ordering::Acquire) as usize;
                // Line 64: elimination test — the push with our sequence
                // number belongs to the batch; take its value.
                if my_seq < push_at_freeze {
                    // Lines 65–67: the partner publishes its node right
                    // after announcing; wait for the slot.
                    let n = wait_ptr(&batch.elim[my_seq], self.stack.config.wait);
                    // Safety: pushes and pops pair off by sequence
                    // number, so we are this node's unique consumer;
                    // payload out, husk recycles.
                    let value = unsafe { Node::take_value(n) };
                    unsafe { guard.retire_recycle(n) };
                    return Some(value);
                }
                // Line 69: combiner test.
                if my_seq == push_at_freeze {
                    self.stack.pop_from_stack(batch, my_seq);
                    // Line 71 — and wake the batch's waiters.
                    mark_applied(agg, batch, batch_ptr, self.stack.stats.wait());
                } else {
                    // Line 73: parked wait for the combiner.
                    wait_applied(
                        agg,
                        batch,
                        batch_ptr,
                        self.stack.config.wait,
                        self.stack.stats.wait(),
                    );
                }
                // Line 76.
                return self.stack.get_value(batch, my_seq - push_at_freeze, &guard);
            }
            // Excluded: retry in a newer batch.
        }
    }

    /// Peek (§3.2: "simply a read of stackTop, similar to the Treiber
    /// stack").
    pub fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        let _guard = self.reclaim.pin();
        let top = self.stack.top.load(Ordering::Acquire);
        if top.is_null() {
            None
        } else {
            // Safety: pinned, so the node cannot be freed; its value
            // bytes stay intact even if a concurrent pop consumes it
            // (consumption is a non-destructive read; see node.rs).
            Some(core::mem::ManuallyDrop::into_inner(unsafe {
                (*top).value.clone()
            }))
        }
    }
}

impl<T: Send + 'static> StackHandle<T> for SecHandle<'_, T> {
    fn push(&mut self, value: T) {
        SecHandle::push(self, value);
    }

    fn pop(&mut self) -> Option<T> {
        SecHandle::pop(self)
    }

    fn peek(&mut self) -> Option<T>
    where
        T: Clone,
    {
        SecHandle::peek(self)
    }
}

impl<T: Send + 'static> fmt::Debug for SecHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecHandle")
            .field("tid", &self.tid())
            .field("aggregator", &self.agg_idx)
            .finish()
    }
}

#[cfg(test)]
mod tests;
