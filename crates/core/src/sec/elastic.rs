//! Elastic sharding: the contention monitor behind
//! [`AggregatorPolicy::Adaptive`] (DESIGN.md §8).
//!
//! The paper fixes the aggregator count `K` at construction and finds
//! `K = 2` the best static all-round setting (Figure 4) — but the best
//! `K` moves with the thread count and the operation mix (push-only
//! favours more aggregators, read-heavy mixes fewer). This module makes
//! the *active* aggregator count a runtime quantity:
//!
//! * **Measurement** is free-riding: every freezer already snapshots
//!   its batch's push/pop counters for [`SecStats`]; the same numbers
//!   feed a window accumulator here. Combiners additionally count
//!   central-stack CAS failures — the only cross-aggregator contention
//!   there is.
//! * **Decision** is the pure function [`decide`]: once a window's
//!   worth of operations has been frozen, the average batch size,
//!   elimination share and CAS-failure rate vote to grow, shrink or
//!   hold. Pure so the property suite can exercise it exhaustively.
//! * **Re-mapping** is epoch-fenced: a resize publishes a new active
//!   count and records the reclamation epoch at which it did so; the
//!   next resize is deferred until the global epoch has advanced by 2,
//!   by which point every operation that was in flight at the previous
//!   transition has unpinned — its batch froze and drained under the
//!   old mapping. Retired aggregators need no draining protocol beyond
//!   that: a SEC batch is completed entirely by its own announcers, so
//!   an aggregator that stops receiving announcements quiesces by
//!   itself (Observation B.1 of the paper carries over unchanged).
//!
//! [`AggregatorPolicy::Adaptive`]: crate::AggregatorPolicy::Adaptive
//! [`SecStats`]: crate::SecStats

use core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use sec_sync::CachePadded;

/// Average batch size at or below which a shard counts as *underused*:
/// batches of ≤ 2 operations mean announcements rarely overlap, so
/// folding shards together concentrates the remaining concurrency and
/// restores elimination opportunities.
pub const SHRINK_DEGREE: f64 = 2.0;

/// Fraction of a shard's thread share the average batch must reach
/// before the shard counts as *crowded*. With `N` registered threads on
/// `k` active aggregators a saturated shard freezes batches near
/// `N / k`; at half that, splitting the shard still leaves both halves
/// enough overlap to batch.
pub const GROW_FILL: f64 = 0.5;

/// Central-stack CAS failures per batch above which growing is vetoed
/// (and shrinking encouraged): each active aggregator contributes one
/// combiner CAS per batch to `stackTop`, so a high failure rate means
/// the *cross*-aggregator contention already dominates and more shards
/// would only add to it.
pub const CAS_VETO: f64 = 1.0;

/// Elimination share above which growing is vetoed: when this fraction
/// of a window's operations eliminate inside their batches, the shard
/// is pairing pushes with pops exactly as the algorithm wants —
/// splitting it would halve every thread's pool of elimination
/// partners (the paper's Figure 4 logic for why elimination-heavy
/// mixes favour *fewer* aggregators).
pub const ELIM_KEEP: f64 = 0.75;

/// One decision window's worth of frozen-batch measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowSample {
    /// Operations that belonged to batches frozen in the window.
    pub ops: u64,
    /// Batches frozen in the window.
    pub batches: u64,
    /// Operations eliminated inside those batches.
    pub eliminated: u64,
    /// Central-stack CAS failures observed during the window.
    pub cas_failures: u64,
}

/// A resize decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Activate one more aggregator.
    Grow,
    /// Retire the highest-indexed active aggregator.
    Shrink,
}

/// The contention-monitor decision function: given one window of
/// measurements and the current active count, vote to grow, shrink or
/// (None) hold.
///
/// Invariants, for any input: `Some(Grow)` only when
/// `active < max_k`, `Some(Shrink)` only when `active > min_k` — so an
/// active count that starts inside `[min_k, max_k]` can never leave it.
/// An empty window (no batches) always holds.
pub fn decide(
    sample: &WindowSample,
    active: usize,
    min_k: usize,
    max_k: usize,
    max_threads: usize,
) -> Option<Direction> {
    let min_k = min_k.max(1);
    let max_k = max_k.max(min_k);
    if sample.batches == 0 || sample.ops == 0 {
        return None;
    }
    let b = sample.ops as f64 / sample.batches as f64;
    let cas_per_batch = sample.cas_failures as f64 / sample.batches as f64;
    let elim_share = sample.eliminated as f64 / sample.ops as f64;
    // Threads a shard serves under the current mapping, at least 1.
    let share = (max_threads.max(1) as f64 / active.max(1) as f64).max(1.0);

    if active > min_k && (b <= SHRINK_DEGREE || cas_per_batch >= CAS_VETO) {
        // Underused shards or a thrashing central stack: concentrate.
        return Some(Direction::Shrink);
    }
    if active < max_k
        && b >= GROW_FILL * share
        && share >= 2.0
        && cas_per_batch < CAS_VETO
        && elim_share < ELIM_KEEP
    {
        // Crowded shards, a calm central stack, and elimination not
        // already carrying the load: disperse. The `share >= 2` guard
        // keeps a fully dispersed configuration (one thread per shard,
        // b ≈ 1) from oscillating; the elimination veto keeps
        // well-paired shards together (their size is productive, not
        // contention).
        return Some(Direction::Grow);
    }
    None
}

/// Window accumulator + epoch fence shared by all freezers of one
/// stack. All fields are relaxed counters; the only synchronization is
/// the `deciding` test&set that elects one freezer per window to run
/// [`decide`].
#[derive(Debug, Default)]
pub struct ContentionMonitor {
    window_ops: CachePadded<AtomicU64>,
    window_batches: AtomicU64,
    window_eliminated: AtomicU64,
    /// Cumulative CAS-failure snapshot at the previous decision.
    cas_mark: AtomicU64,
    /// Reclamation epoch recorded by the last resize (the fence).
    fence_epoch: AtomicU64,
    /// Hysteresis: the direction the previous window voted for
    /// (0 = none, 1 = grow, 2 = shrink). A vote is only acted on when
    /// two consecutive windows agree, so one bursty window can't flap
    /// the active set.
    pending: AtomicU64,
    /// Decision election: only one freezer evaluates a window.
    deciding: AtomicBool,
}

impl ContentionMonitor {
    /// Creates a zeroed monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one frozen batch into the current window; returns `true`
    /// once the window holds at least `window` operations (the caller
    /// should then attempt [`ContentionMonitor::begin_decision`]).
    pub fn on_batch(&self, pushes: u64, pops: u64, window: u64) -> bool {
        let size = pushes + pops;
        if size == 0 {
            return false;
        }
        let total = self.window_ops.fetch_add(size, Ordering::Relaxed) + size;
        self.window_batches.fetch_add(1, Ordering::Relaxed);
        self.window_eliminated
            .fetch_add(2 * pushes.min(pops), Ordering::Relaxed);
        window > 0 && total >= window
    }

    /// Running totals of the current (unfinished) window:
    /// `(ops, batches, eliminated)`. Monotone between decisions.
    pub fn window_totals(&self) -> (u64, u64, u64) {
        (
            self.window_ops.load(Ordering::Relaxed),
            self.window_batches.load(Ordering::Relaxed),
            self.window_eliminated.load(Ordering::Relaxed),
        )
    }

    /// Tries to become the deciding freezer. At most one caller holds
    /// the decision at a time; the winner must call
    /// [`ContentionMonitor::end_decision`].
    pub fn begin_decision(&self) -> bool {
        !self.deciding.swap(true, Ordering::Acquire)
    }

    /// Releases the decision election.
    pub fn end_decision(&self) {
        self.deciding.store(false, Ordering::Release);
    }

    /// `true` when `epoch_now` has moved at least 2 past the epoch of
    /// the last resize — every thread pinned across that resize has
    /// since unpinned, so its batch froze and drained under the old
    /// mapping (the epoch fence of DESIGN.md §8).
    pub fn fence_passed(&self, epoch_now: u64) -> bool {
        epoch_now >= self.fence_epoch.load(Ordering::Relaxed) + 2
    }

    /// Drains the window accumulator into a [`WindowSample`], diffing
    /// the cumulative CAS-failure counter against the previous mark.
    pub fn take_window(&self, cas_failures_cumulative: u64) -> WindowSample {
        let cas_prev = self
            .cas_mark
            .swap(cas_failures_cumulative, Ordering::Relaxed);
        WindowSample {
            ops: self.window_ops.swap(0, Ordering::Relaxed),
            batches: self.window_batches.swap(0, Ordering::Relaxed),
            eliminated: self.window_eliminated.swap(0, Ordering::Relaxed),
            cas_failures: cas_failures_cumulative.saturating_sub(cas_prev),
        }
    }

    /// Arms the epoch fence after a resize performed at `epoch_now`.
    pub fn arm_fence(&self, epoch_now: u64) {
        self.fence_epoch.store(epoch_now, Ordering::Relaxed);
    }

    /// Records this window's vote; `true` once the same direction has
    /// won two consecutive windows (the hysteresis gate).
    pub fn confirm(&self, dir: Direction) -> bool {
        let code = match dir {
            Direction::Grow => 1,
            Direction::Shrink => 2,
        };
        self.pending.swap(code, Ordering::Relaxed) == code
    }

    /// Clears the pending vote (a window that voted to hold, or a
    /// resize that was just applied, breaks any streak).
    pub fn clear_pending(&self) {
        self.pending.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ops: u64, batches: u64, eliminated: u64, cas: u64) -> WindowSample {
        WindowSample {
            ops,
            batches,
            eliminated,
            cas_failures: cas,
        }
    }

    #[test]
    fn empty_window_holds() {
        assert_eq!(decide(&sample(0, 0, 0, 0), 2, 1, 4, 8), None);
    }

    #[test]
    fn solo_batches_shrink_until_min() {
        // b = 1: every batch is a lone op — fold shards together.
        let s = sample(100, 100, 0, 0);
        assert_eq!(decide(&s, 3, 1, 4, 8), Some(Direction::Shrink));
        assert_eq!(decide(&s, 1, 1, 4, 8), None, "min_k floor");
    }

    #[test]
    fn crowded_batches_grow_until_max() {
        // 8 threads on 2 shards: share 4, b = 8 ≥ 0.5·4 — split.
        let s = sample(800, 100, 400, 0);
        assert_eq!(decide(&s, 2, 1, 4, 8), Some(Direction::Grow));
        assert_eq!(decide(&s, 4, 1, 4, 8), None, "max_k ceiling");
    }

    #[test]
    fn high_elimination_share_vetoes_grow() {
        // 8 threads on 2 shards, crowded (b = 8) — but 87% of ops
        // eliminate: the batch size is productive pairing, not
        // contention, so the shard stays whole.
        let s = sample(800, 100, 700, 0);
        assert_eq!(decide(&s, 2, 1, 4, 8), None);
        // Same crowding with elimination below the veto grows.
        let s = sample(800, 100, 400, 0);
        assert_eq!(decide(&s, 2, 1, 4, 8), Some(Direction::Grow));
    }

    #[test]
    fn central_cas_thrash_vetoes_grow_and_forces_shrink() {
        // Crowded *and* thrashing: the central stack is the bottleneck.
        let s = sample(800, 100, 0, 500);
        assert_eq!(decide(&s, 3, 1, 4, 8), Some(Direction::Shrink));
        assert_eq!(decide(&s, 1, 1, 4, 8), None);
    }

    #[test]
    fn fully_dispersed_configuration_does_not_oscillate() {
        // share = 1 (one thread per shard): b ≥ 0.5·share trivially,
        // but growing further is pointless — the share≥2 guard holds.
        let s = sample(300, 100, 0, 0);
        assert_eq!(decide(&s, 8, 1, 16, 8), None);
    }

    #[test]
    fn monitor_window_accounting_is_monotone_and_drains() {
        let m = ContentionMonitor::new();
        assert!(!m.on_batch(3, 1, 100));
        assert!(!m.on_batch(0, 0, 100), "empty batches don't count");
        let (ops, batches, elim) = m.window_totals();
        assert_eq!((ops, batches, elim), (4, 1, 2));
        assert!(m.on_batch(60, 40, 100), "window boundary crossed");
        let s = m.take_window(7);
        assert_eq!(s.ops, 104);
        assert_eq!(s.batches, 2);
        assert_eq!(s.eliminated, 2 + 2 * 40);
        assert_eq!(s.cas_failures, 7);
        assert_eq!(m.window_totals(), (0, 0, 0), "drained");
        // Next window diffs against the new mark.
        let s2 = m.take_window(10);
        assert_eq!(s2.cas_failures, 3);
    }

    #[test]
    fn decision_election_is_exclusive() {
        let m = ContentionMonitor::new();
        assert!(m.begin_decision());
        assert!(!m.begin_decision());
        m.end_decision();
        assert!(m.begin_decision());
        m.end_decision();
    }

    #[test]
    fn confirmation_needs_two_consecutive_votes() {
        let m = ContentionMonitor::new();
        assert!(!m.confirm(Direction::Grow), "first vote only arms");
        assert!(m.confirm(Direction::Grow), "second consecutive vote acts");
        assert!(!m.confirm(Direction::Shrink), "direction change re-arms");
        m.clear_pending();
        assert!(!m.confirm(Direction::Shrink), "cleared streak re-arms");
        assert!(m.confirm(Direction::Shrink));
    }

    #[test]
    fn fence_requires_two_epoch_advances() {
        let m = ContentionMonitor::new();
        assert!(m.fence_passed(2), "virgin fence (epoch 0) passes at 2");
        m.arm_fence(5);
        assert!(!m.fence_passed(5));
        assert!(!m.fence_passed(6));
        assert!(m.fence_passed(7));
    }
}
