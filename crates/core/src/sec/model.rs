//! Analytical model of SEC's elimination and combining degrees.
//!
//! The paper measures (Tables 1–3) how many operations each batch
//! eliminates versus combines, and argues the elimination degree is
//! "optimal within each batch". That optimum has a closed form: if a
//! frozen batch holds `n` update operations, each independently a
//! `push` with probability `p` (the workload mix), then the number of
//! pushes is `X ~ Binomial(n, p)` and
//!
//! * eliminated ops  = `2 · min(X, n − X)`,
//! * combined ops    = `|2X − n|`  (the surviving majority),
//!
//! so the expected elimination *fraction* is `E[2·min(X, n−X)] / n`.
//! This module evaluates those expectations exactly (iterative binomial
//! pmf — no special functions), letting the Table 1 binary print a
//! *model* column next to the measured one. Agreement there is strong
//! evidence the freezing/elimination machinery loses no pairs; the
//! residual gap comes from batch-size variance (the model is evaluated
//! at the mean batch size, and `E[f(N)] ≠ f(E[N])` for the concave
//! elimination curve).

/// Binomial probability mass function as an iterator-friendly vector:
/// `pmf[k] = P(X = k)` for `X ~ Binomial(n, p)`.
///
/// Computed by the stable multiplicative recurrence
/// `pmf[k+1] = pmf[k] · ((n−k)/(k+1)) · (p/(1−p))`, seeded at the mode
/// to avoid underflow for large `n`.
fn binomial_pmf(n: u64, p: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let n_us = usize::try_from(n).expect("batch size fits usize");
    if p == 0.0 {
        let mut v = vec![0.0; n_us + 1];
        v[0] = 1.0;
        return v;
    }
    if p == 1.0 {
        let mut v = vec![0.0; n_us + 1];
        v[n_us] = 1.0;
        return v;
    }
    // Work in log space up to the mode, then renormalize: immune to
    // under/overflow for any realistic batch size.
    let (lp, lq) = (p.ln(), (1.0 - p).ln());
    // log C(n, k) built incrementally.
    let mut log_binom = 0.0f64;
    let log_pmf: Vec<f64> = (0..=n_us)
        .map(|k| {
            if k > 0 {
                log_binom += ((n_us - k + 1) as f64).ln() - (k as f64).ln();
            }
            log_binom + (k as f64) * lp + ((n_us - k) as f64) * lq
        })
        .collect();
    let max = log_pmf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut pmf: Vec<f64> = log_pmf.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = pmf.iter().sum();
    for x in &mut pmf {
        *x /= sum;
    }
    pmf
}

/// Expected fraction (0–100%) of a size-`n` batch that is eliminated,
/// when each update is a push with probability `push_prob`.
///
/// `n = 0` returns 0 (an empty batch eliminates nothing).
///
/// # Examples
///
/// ```
/// use sec_core::sec::model::expected_pct_eliminated;
///
/// // The paper's Table 1 regime: balanced mix, batch degree ~18.
/// let pct = expected_pct_eliminated(18, 0.5);
/// assert!((75.0..=85.0).contains(&pct)); // paper measures 79%
///
/// // One-sided batches cannot eliminate.
/// assert_eq!(expected_pct_eliminated(18, 1.0), 0.0);
/// ```
pub fn expected_pct_eliminated(n: u64, push_prob: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let pmf = binomial_pmf(n, push_prob);
    let mut expect = 0.0;
    for (k, &prob) in pmf.iter().enumerate() {
        let pushes = k as u64;
        let pops = n - pushes;
        expect += prob * (2 * pushes.min(pops)) as f64;
    }
    100.0 * expect / n as f64
}

/// Expected fraction (0–100%) of a size-`n` batch applied by the
/// combiner. Complement of [`expected_pct_eliminated`].
pub fn expected_pct_combined(n: u64, push_prob: f64) -> f64 {
    100.0 - expected_pct_eliminated(n, push_prob)
}

/// Model prediction for a measured run: evaluates the expectations at
/// the *rounded mean* batch size of `report`, under `push_prob`.
///
/// A first-order approximation (see module docs); adequate for the
/// "does measurement track theory" check the Table 1 binary prints.
pub fn predict_for_report(report: &super::stats::BatchReport, push_prob: f64) -> ModelPrediction {
    let n = report.batching_degree().round().max(0.0) as u64;
    ModelPrediction {
        batch_size: n,
        pct_eliminated: expected_pct_eliminated(n, push_prob),
        pct_combined: expected_pct_combined(n, push_prob),
    }
}

/// Output of [`predict_for_report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPrediction {
    /// Batch size the model was evaluated at (rounded mean).
    pub batch_size: u64,
    /// Predicted %elimination.
    pub pct_eliminated: f64,
    /// Predicted %combining.
    pub pct_combined: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force expectation by enumerating all 2^n push/pop strings.
    fn brute_force_pct(n: u64, p: f64) -> f64 {
        let n_us = n as usize;
        let mut expect = 0.0;
        for word in 0u64..(1u64 << n_us) {
            let pushes = word.count_ones() as u64;
            let pops = n - pushes;
            let prob = p.powi(pushes as i32) * (1.0 - p).powi(pops as i32);
            expect += prob * (2 * pushes.min(pops)) as f64;
        }
        100.0 * expect / n as f64
    }

    #[test]
    fn matches_brute_force_enumeration() {
        for n in 1..=12u64 {
            for &p in &[0.1, 0.25, 0.5, 0.75, 0.9] {
                let exact = brute_force_pct(n, p);
                let model = expected_pct_eliminated(n, p);
                assert!(
                    (exact - model).abs() < 1e-9,
                    "n={n} p={p}: brute {exact} vs model {model}"
                );
            }
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(1u64, 0.5f64), (10, 0.3), (100, 0.5), (1000, 0.9)] {
            let sum: f64 = binomial_pmf(n, p).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "n={n} p={p}: sum {sum}");
        }
    }

    #[test]
    fn degenerate_mixes_never_eliminate() {
        assert_eq!(expected_pct_eliminated(50, 0.0), 0.0);
        assert_eq!(expected_pct_eliminated(50, 1.0), 0.0);
    }

    #[test]
    fn empty_batch_is_zero() {
        assert_eq!(expected_pct_eliminated(0, 0.5), 0.0);
        assert_eq!(expected_pct_combined(0, 0.5), 100.0);
    }

    #[test]
    fn balanced_mix_maximizes_elimination() {
        let n = 40;
        let at_half = expected_pct_eliminated(n, 0.5);
        for &p in &[0.05, 0.2, 0.35, 0.65, 0.8, 0.95] {
            assert!(
                expected_pct_eliminated(n, p) < at_half,
                "p={p} should eliminate less than p=0.5"
            );
        }
    }

    #[test]
    fn elimination_grows_with_batch_size_at_half() {
        // At p = 0.5 the imbalance |2X−n| grows like √n, so the
        // eliminated *fraction* 1 − Θ(1/√n) increases with n.
        let mut last = 0.0;
        for n in [2u64, 8, 32, 128, 512] {
            let e = expected_pct_eliminated(n, 0.5);
            assert!(e > last, "n={n}: {e} ≤ {last}");
            last = e;
        }
        // Asymptote: E|2X−n| ≈ √(2n/π)  ⇒  %elim ≈ 100·(1 − √(2/(πn))).
        let n = 512u64;
        let approx = 100.0 * (1.0 - (2.0 / (core::f64::consts::PI * n as f64)).sqrt());
        assert!(
            (expected_pct_eliminated(n, 0.5) - approx).abs() < 0.5,
            "normal approximation should hold at n=512"
        );
    }

    #[test]
    fn symmetric_in_push_probability() {
        for n in [5u64, 17, 64] {
            for &p in &[0.1, 0.3, 0.45] {
                let a = expected_pct_eliminated(n, p);
                let b = expected_pct_eliminated(n, 1.0 - p);
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn prediction_complements_sum_to_100() {
        for n in [1u64, 7, 100] {
            for &p in &[0.2, 0.5, 0.8] {
                let e = expected_pct_eliminated(n, p);
                let c = expected_pct_combined(n, p);
                assert!((e + c - 100.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn predict_for_report_uses_mean_batch_size() {
        let stats = super::super::stats::SecStats::new();
        stats.record_batch(10, 10); // batch of 20
        stats.record_batch(5, 5); // batch of 10 → mean 15
        let pred = predict_for_report(&stats.report(), 0.5);
        assert_eq!(pred.batch_size, 15);
        assert!(pred.pct_eliminated > 50.0);
    }

    #[test]
    fn paper_table1_regime_is_plausible() {
        // Table 1 (Emerald): batching degree ≈ 18, %elim ≈ 79% at
        // 100% updates (p = 0.5). The model at n = 18 predicts ~81%:
        // within a couple points of the measurement — exactly the check
        // the table1 binary performs.
        let e = expected_pct_eliminated(18, 0.5);
        assert!((75.0..=85.0).contains(&e), "model says {e}%");
    }
}
