//! Batching/elimination/combining instrumentation (Tables 1–3 of the
//! paper).
//!
//! The freezer knows, at the moment it freezes a batch, exactly how the
//! batch will decompose: `pushes + pops` operations belong to it,
//! `2 · min(pushes, pops)` of them eliminate each other, and the
//! remaining `|pushes − pops|` are applied by the combiner. Recording
//! these three numbers with relaxed counters costs three uncontended
//! atomic adds per *batch* (not per operation) and lets the harness
//! print the paper's Table 1 rows: batching degree, %elimination,
//! %combining.

use core::sync::atomic::{AtomicU64, Ordering};

/// Relaxed counters aggregated over the lifetime of one [`SecStack`].
///
/// [`SecStack`]: crate::SecStack
#[derive(Debug, Default)]
pub struct SecStats {
    batches: AtomicU64,
    ops: AtomicU64,
    eliminated: AtomicU64,
    combined: AtomicU64,
}

impl SecStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called by the freezer with the frozen counter snapshot.
    #[inline]
    pub(crate) fn record_batch(&self, pushes: u64, pops: u64) {
        let size = pushes + pops;
        if size == 0 {
            return; // cannot happen (the freezer itself announced), but harmless
        }
        let elim = 2 * pushes.min(pops);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.ops.fetch_add(size, Ordering::Relaxed);
        self.eliminated.fetch_add(elim, Ordering::Relaxed);
        self.combined.fetch_add(size - elim, Ordering::Relaxed);
    }

    /// Snapshot of the aggregate measures.
    pub fn report(&self) -> BatchReport {
        BatchReport {
            batches: self.batches.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            eliminated: self.eliminated.load(Ordering::Relaxed),
            combined: self.combined.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters (between measurement phases).
    pub fn reset(&self) {
        self.batches.store(0, Ordering::Relaxed);
        self.ops.store(0, Ordering::Relaxed);
        self.eliminated.store(0, Ordering::Relaxed);
        self.combined.store(0, Ordering::Relaxed);
    }
}

/// A snapshot of [`SecStats`], with the paper's derived measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchReport {
    /// Batches frozen.
    pub batches: u64,
    /// Operations that belonged to frozen batches.
    pub ops: u64,
    /// Operations eliminated inside their batch.
    pub eliminated: u64,
    /// Operations applied to the shared stack by a combiner.
    pub combined: u64,
}

impl BatchReport {
    /// Average batch size ("batching degree", Table 1).
    pub fn batching_degree(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }

    /// Percentage of operations eliminated ("%elimination", Table 1).
    pub fn pct_eliminated(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            100.0 * self.eliminated as f64 / self.ops as f64
        }
    }

    /// Percentage of operations applied by combiners ("%combining").
    pub fn pct_combined(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            100.0 * self.combined as f64 / self.ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identity_holds() {
        let s = SecStats::new();
        s.record_batch(3, 5); // 8 ops, 6 eliminated, 2 combined
        s.record_batch(4, 4); // 8 ops, 8 eliminated, 0 combined
        s.record_batch(2, 0); // 2 ops, 0 eliminated, 2 combined
        let r = s.report();
        assert_eq!(r.batches, 3);
        assert_eq!(r.ops, 18);
        assert_eq!(r.eliminated, 14);
        assert_eq!(r.combined, 4);
        assert_eq!(r.eliminated + r.combined, r.ops);
    }

    #[test]
    fn derived_measures() {
        let s = SecStats::new();
        s.record_batch(5, 5);
        let r = s.report();
        assert!((r.batching_degree() - 10.0).abs() < 1e-9);
        assert!((r.pct_eliminated() - 100.0).abs() < 1e-9);
        assert!((r.pct_combined() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = SecStats::new().report();
        assert_eq!(r.batching_degree(), 0.0);
        assert_eq!(r.pct_eliminated(), 0.0);
        assert_eq!(r.pct_combined(), 0.0);
    }

    #[test]
    fn zero_size_batch_is_ignored() {
        let s = SecStats::new();
        s.record_batch(0, 0);
        assert_eq!(s.report().batches, 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = SecStats::new();
        s.record_batch(1, 1);
        s.reset();
        assert_eq!(s.report().ops, 0);
    }
}
