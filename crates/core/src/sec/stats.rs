//! Batching/elimination/combining instrumentation (Tables 1–3 of the
//! paper).
//!
//! The freezer knows, at the moment it freezes a batch, exactly how the
//! batch will decompose: `pushes + pops` operations belong to it,
//! `2 · min(pushes, pops)` of them eliminate each other, and the
//! remaining `|pushes − pops|` are applied by the combiner. Recording
//! these three numbers with relaxed counters costs three uncontended
//! atomic adds per *batch* (not per operation) and lets the harness
//! print the paper's Table 1 rows: batching degree, %elimination,
//! %combining.

use crate::trace::{DegreeDist, Histogram};
use core::sync::atomic::{AtomicU64, Ordering};
use sec_sync::event::WaitStats;

/// Relaxed counters aggregated over the lifetime of one [`SecStack`].
///
/// Besides the paper's Table 1 measures, elastic sharding (DESIGN.md
/// §8) adds three counters: central-stack CAS failures (combiner
/// contention on `stackTop`, one of the monitor's inputs) and the
/// grow/shrink resize transitions the monitor or a manual
/// [`SecStack::set_active_aggregators`] performed.
///
/// [`SecStack`]: crate::SecStack
/// [`SecStack::set_active_aggregators`]: crate::SecStack::set_active_aggregators
#[derive(Debug, Default)]
pub struct SecStats {
    batches: AtomicU64,
    ops: AtomicU64,
    eliminated: AtomicU64,
    combined: AtomicU64,
    cas_failures: AtomicU64,
    grows: AtomicU64,
    shrinks: AtomicU64,
    /// Park/wake/spurious-wake counters fed by the wait subsystem
    /// (DESIGN.md §11): every `WaitQueue::wait_until`/`notify_key`
    /// call site passes this block through.
    wait: WaitStats,
    /// Distribution of frozen batch degrees (DESIGN.md §14): one
    /// wait-free histogram record per *batch*, so the CSVs can report
    /// min/p50/p99/max instead of only the run-wide mean.
    degree: Histogram,
}

impl SecStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Called by the freezer with the frozen counter snapshot.
    #[inline]
    pub(crate) fn record_batch(&self, pushes: u64, pops: u64) {
        let size = pushes + pops;
        if size == 0 {
            return; // cannot happen (the freezer itself announced), but harmless
        }
        let elim = 2 * pushes.min(pops);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.ops.fetch_add(size, Ordering::Relaxed);
        self.eliminated.fetch_add(elim, Ordering::Relaxed);
        self.combined.fetch_add(size - elim, Ordering::Relaxed);
        self.degree.record(size);
    }

    /// Called by a combiner whose splice/unlink CAS on `stackTop` lost
    /// to another combiner (the cross-aggregator contention signal).
    #[inline]
    pub(crate) fn record_cas_failure(&self) {
        self.cas_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative central-stack CAS failures (monitor input).
    pub(crate) fn cas_failures_now(&self) -> u64 {
        self.cas_failures.load(Ordering::Relaxed)
    }

    /// Records an active-set grow transition.
    #[inline]
    pub(crate) fn record_grow(&self) {
        self.grows.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an active-set shrink transition.
    #[inline]
    pub(crate) fn record_shrink(&self) {
        self.shrinks.fetch_add(1, Ordering::Relaxed);
    }

    /// The park/wake counter block the wait subsystem records into.
    #[inline]
    pub(crate) fn wait(&self) -> &WaitStats {
        &self.wait
    }

    /// Snapshot of the aggregate measures.
    pub fn report(&self) -> BatchReport {
        BatchReport {
            batches: self.batches.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            eliminated: self.eliminated.load(Ordering::Relaxed),
            combined: self.combined.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            grows: self.grows.load(Ordering::Relaxed),
            shrinks: self.shrinks.load(Ordering::Relaxed),
            parks: self.wait.parks(),
            wakes: self.wait.unparks(),
            spurious_wakes: self.wait.spurious(),
            degree: DegreeDist::from_histogram(&self.degree),
        }
    }

    /// The full batch-degree distribution (the report's
    /// [`BatchReport::degree`] is its four-number summary).
    pub fn degree_histogram(&self) -> &Histogram {
        &self.degree
    }

    /// Resets all counters (between measurement phases).
    pub fn reset(&self) {
        self.batches.store(0, Ordering::Relaxed);
        self.ops.store(0, Ordering::Relaxed);
        self.eliminated.store(0, Ordering::Relaxed);
        self.combined.store(0, Ordering::Relaxed);
        self.cas_failures.store(0, Ordering::Relaxed);
        self.grows.store(0, Ordering::Relaxed);
        self.shrinks.store(0, Ordering::Relaxed);
        self.wait.reset();
        self.degree.reset();
    }
}

/// A snapshot of [`SecStats`], with the paper's derived measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchReport {
    /// Batches frozen.
    pub batches: u64,
    /// Operations that belonged to frozen batches.
    pub ops: u64,
    /// Operations eliminated inside their batch.
    pub eliminated: u64,
    /// Operations applied to the shared stack by a combiner.
    pub combined: u64,
    /// Combiner CAS attempts on the shared `stackTop` that lost to
    /// another combiner.
    pub cas_failures: u64,
    /// Elastic-sharding grow transitions (active aggregator count +1).
    pub grows: u64,
    /// Elastic-sharding shrink transitions (active aggregator count −1).
    pub shrinks: u64,
    /// Times a waiter parked (`WaitPolicy::SpinThenPark` only).
    pub parks: u64,
    /// Unparks freezers/combiners issued to registered waiters.
    pub wakes: u64,
    /// Wakeups whose awaited condition was still false (the waiter
    /// re-parked): stray park tokens and cross-generation wakes.
    pub spurious_wakes: u64,
    /// Batch-degree distribution summary (min/p50/p99/max), from the
    /// per-batch histogram.
    pub degree: DegreeDist,
}

impl BatchReport {
    /// Total elastic resize transitions (grows + shrinks).
    pub fn resizes(&self) -> u64 {
        self.grows + self.shrinks
    }

    /// Average batch size ("batching degree", Table 1).
    pub fn batching_degree(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }

    /// Percentage of operations eliminated ("%elimination", Table 1).
    pub fn pct_eliminated(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            100.0 * self.eliminated as f64 / self.ops as f64
        }
    }

    /// Percentage of operations applied by combiners ("%combining").
    pub fn pct_combined(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            100.0 * self.combined as f64 / self.ops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identity_holds() {
        let s = SecStats::new();
        s.record_batch(3, 5); // 8 ops, 6 eliminated, 2 combined
        s.record_batch(4, 4); // 8 ops, 8 eliminated, 0 combined
        s.record_batch(2, 0); // 2 ops, 0 eliminated, 2 combined
        let r = s.report();
        assert_eq!(r.batches, 3);
        assert_eq!(r.ops, 18);
        assert_eq!(r.eliminated, 14);
        assert_eq!(r.combined, 4);
        assert_eq!(r.eliminated + r.combined, r.ops);
    }

    #[test]
    fn derived_measures() {
        let s = SecStats::new();
        s.record_batch(5, 5);
        let r = s.report();
        assert!((r.batching_degree() - 10.0).abs() < 1e-9);
        assert!((r.pct_eliminated() - 100.0).abs() < 1e-9);
        assert!((r.pct_combined() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = SecStats::new().report();
        assert_eq!(r.batching_degree(), 0.0);
        assert_eq!(r.pct_eliminated(), 0.0);
        assert_eq!(r.pct_combined(), 0.0);
    }

    #[test]
    fn zero_size_batch_is_ignored() {
        let s = SecStats::new();
        s.record_batch(0, 0);
        assert_eq!(s.report().batches, 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = SecStats::new();
        s.record_batch(1, 1);
        s.record_cas_failure();
        s.record_grow();
        s.record_shrink();
        s.reset();
        let r = s.report();
        assert_eq!(r.ops, 0);
        assert_eq!(r.cas_failures, 0);
        assert_eq!(r.resizes(), 0);
    }

    #[test]
    fn degree_distribution_tracks_batches() {
        let s = SecStats::new();
        s.record_batch(1, 0); // degree 1
        s.record_batch(2, 2); // degree 4
        s.record_batch(10, 6); // degree 16
        let r = s.report();
        assert_eq!(r.degree.min, 1);
        assert_eq!(r.degree.max, 16);
        assert!(r.degree.p50 >= 4 && r.degree.p50 <= 16);
        assert!(r.degree.p99 >= r.degree.p50);
        assert_eq!(s.degree_histogram().count(), 3);
        s.reset();
        assert_eq!(s.report().degree, DegreeDist::default());
    }

    #[test]
    fn resize_and_cas_counters_accumulate() {
        let s = SecStats::new();
        s.record_grow();
        s.record_grow();
        s.record_shrink();
        s.record_cas_failure();
        let r = s.report();
        assert_eq!(r.grows, 2);
        assert_eq!(r.shrinks, 1);
        assert_eq!(r.resizes(), 3);
        assert_eq!(r.cas_failures, 1);
        assert_eq!(s.cas_failures_now(), 1);
    }
}
