//! Stack nodes (Figure 1 of the paper, `struct Node`).

use core::mem::ManuallyDrop;
use core::ptr;
use core::sync::atomic::AtomicPtr;

/// A node of the shared stack / a value in flight through elimination.
///
/// `value` is `ManuallyDrop` because ownership of the payload leaves the
/// node *before* the node's memory is reclaimed: exactly one pop reads
/// the value out (by `ptr::read`) and then retires the node; freeing the
/// node must not drop the payload a second time. Nodes that still own
/// their payload when the stack is torn down are handled by
/// [`Node::drop_in_place_with_value`].
pub(crate) struct Node<T> {
    pub(crate) value: ManuallyDrop<T>,
    pub(crate) next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    /// Heap-allocates a detached node carrying `value` (unit-test
    /// path; the data structures allocate through [`Node::alloc_with`]
    /// so recycled blocks are reused).
    #[cfg(test)]
    pub(crate) fn alloc(value: T) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value: ManuallyDrop::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }

    /// Allocates a detached node carrying `value`, reusing a recycled
    /// node block from `reclaim`'s free lists when one is available
    /// (DESIGN.md §10) — the hot-path replacement for [`Node::alloc`].
    pub(crate) fn alloc_with(reclaim: &sec_reclaim::Handle<'_>, value: T) -> *mut Node<T>
    where
        T: Send,
    {
        reclaim.alloc_boxed(Node {
            value: ManuallyDrop::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }

    /// Moves the payload out of `node` without freeing the node.
    ///
    /// # Safety
    ///
    /// The caller must be the unique consumer of this node's value (the
    /// algorithm guarantees exactly one pop reads each node), and the
    /// node must stay allocated for the duration of the call (readers
    /// are pinned).
    pub(crate) unsafe fn take_value(node: *mut Node<T>) -> T {
        // Safety: unique consumption per the caller contract; the node
        // memory itself is untouched (freed later via retire).
        ManuallyDrop::into_inner(unsafe { ptr::read(&(*node).value) })
    }

    /// Frees a node that still owns its payload (teardown path only).
    ///
    /// # Safety
    ///
    /// `node` must be a unique, live `Box`-allocated node whose value
    /// has *not* been taken, with no concurrent accessors.
    pub(crate) unsafe fn drop_in_place_with_value(node: *mut Node<T>) {
        // Safety: per contract, we own the node and its payload.
        let mut boxed = unsafe { Box::from_raw(node) };
        unsafe { ManuallyDrop::drop(&mut boxed.value) };
        // `boxed` drops here, freeing the allocation; the ManuallyDrop
        // field does nothing further.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn take_value_moves_payload_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let n = Node::alloc(DropCounter(Arc::clone(&drops)));
        let v = unsafe { Node::take_value(n) };
        drop(v);
        assert_eq!(drops.load(Ordering::Relaxed), 1);
        // Free the node husk: must not drop the payload again.
        drop(unsafe { Box::from_raw(n) });
        assert_eq!(drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_in_place_with_value_drops_payload() {
        let drops = Arc::new(AtomicUsize::new(0));
        let n = Node::alloc(DropCounter(Arc::clone(&drops)));
        unsafe { Node::drop_in_place_with_value(n) };
        assert_eq!(drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fresh_node_has_null_next() {
        let n = Node::alloc(5u8);
        assert!(unsafe { (*n).next.load(Ordering::Relaxed) }.is_null());
        unsafe { Node::drop_in_place_with_value(n) };
    }
}
