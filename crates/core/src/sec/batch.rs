//! Batches and aggregators (Figure 1 of the paper, `struct Batch` and
//! `struct Aggregator`).

use super::node::Node;
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64};
use sec_sync::CachePadded;

/// A batch: the unit of freezing, elimination and combining.
///
/// Field-by-field correspondence with the paper's Figure 1:
///
/// | paper                 | here             |
/// |-----------------------|------------------|
/// | `pushCount`           | `push_count`     |
/// | `popCount`            | `pop_count`      |
/// | `pushCountAtFreeze`   | `push_at_freeze` |
/// | `popCountAtFreeze`    | `pop_at_freeze`  |
/// | `eliminationArray[P]` | `elim`           |
/// | `subStackTop`         | `substack_top`   |
/// | `isFreezerDecided`    | `freezer_decided`|
/// | `isBatchApplied`      | `applied`        |
///
/// The two announcement counters are cache-padded: they are the only
/// fields hammered by fetch&increment from every thread of the
/// aggregator, and pushes and pops must not false-share.
pub(crate) struct Batch<T> {
    /// Announcement counter for `push` (sequence-number source).
    pub(crate) push_count: CachePadded<AtomicU64>,
    /// Announcement counter for `pop`.
    pub(crate) pop_count: CachePadded<AtomicU64>,
    /// `pushCount` as snapshotted by the freezer; published by the
    /// aggregator's batch-pointer swap.
    pub(crate) push_at_freeze: AtomicU64,
    /// `popCount` as snapshotted by the freezer.
    pub(crate) pop_at_freeze: AtomicU64,
    /// Test&set word electing the freezer among the two sequence-number-0
    /// announcers.
    pub(crate) freezer_decided: AtomicBool,
    /// Set by the combiner once every surviving operation of the batch
    /// has been applied to the shared stack.
    pub(crate) applied: AtomicBool,
    /// For pop batches: the head of the chain the combiner unlinked from
    /// the shared stack (waiters index into it in `GetValue`).
    pub(crate) substack_top: AtomicPtr<Node<T>>,
    /// The elimination array: slot `i` carries the node of the push with
    /// sequence number `i`; read by the pop with sequence number `i`
    /// (elimination) or by the push combiner (substack construction).
    pub(crate) elim: Box<[AtomicPtr<Node<T>>]>,
}

impl<T> Batch<T> {
    /// Heap-allocates a fresh batch with `capacity` elimination slots
    /// (the per-aggregator thread bound `P`).
    pub(crate) fn alloc(capacity: usize) -> *mut Batch<T> {
        let elim = (0..capacity)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        Box::into_raw(Box::new(Batch {
            push_count: CachePadded::new(AtomicU64::new(0)),
            pop_count: CachePadded::new(AtomicU64::new(0)),
            push_at_freeze: AtomicU64::new(0),
            pop_at_freeze: AtomicU64::new(0),
            freezer_decided: AtomicBool::new(false),
            applied: AtomicBool::new(false),
            substack_top: AtomicPtr::new(ptr::null_mut()),
            elim,
        }))
    }
}

// Safety: a batch contains only atomics (plus the boxed slot array);
// raw `Node<T>` pointers are managed by the algorithm, which transfers
// node ownership only between threads that may own `T`.
unsafe impl<T: Send> Send for Batch<T> {}
unsafe impl<T: Send> Sync for Batch<T> {}

/// An aggregator: one pointer to its currently active batch.
pub(crate) struct Aggregator<T> {
    pub(crate) batch: AtomicPtr<Batch<T>>,
}

impl<T> Aggregator<T> {
    /// Creates an aggregator with a fresh initial batch.
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            batch: AtomicPtr::new(Batch::alloc(capacity)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;

    #[test]
    fn fresh_batch_is_virgin() {
        let b = Batch::<u32>::alloc(4);
        let r = unsafe { &*b };
        assert_eq!(r.push_count.load(Ordering::Relaxed), 0);
        assert_eq!(r.pop_count.load(Ordering::Relaxed), 0);
        assert!(!r.freezer_decided.load(Ordering::Relaxed));
        assert!(!r.applied.load(Ordering::Relaxed));
        assert_eq!(r.elim.len(), 4);
        assert!(r.elim.iter().all(|p| p.load(Ordering::Relaxed).is_null()));
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn aggregator_starts_with_live_batch() {
        let a = Aggregator::<u32>::new(2);
        let b = a.batch.load(Ordering::Acquire);
        assert!(!b.is_null());
        drop(unsafe { Box::from_raw(b) });
    }
}
