//! Batches and aggregators (Figure 1 of the paper, `struct Batch` and
//! `struct Aggregator`).

use super::node::Node;
use core::alloc::Layout;
use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use sec_reclaim::{Guard, Handle as ReclaimHandle};
use sec_sync::event::{spin_wait, WaitPolicy, WaitQueue, WaitStats};
use sec_sync::CachePadded;

/// A batch: the unit of freezing, elimination and combining.
///
/// Field-by-field correspondence with the paper's Figure 1:
///
/// | paper                 | here             |
/// |-----------------------|------------------|
/// | `pushCount`           | `push_count`     |
/// | `popCount`            | `pop_count`      |
/// | `pushCountAtFreeze`   | `push_at_freeze` |
/// | `popCountAtFreeze`    | `pop_at_freeze`  |
/// | `eliminationArray[P]` | `elim`           |
/// | `subStackTop`         | `substack_top`   |
/// | `isFreezerDecided`    | `freezer_decided`|
/// | `isBatchApplied`      | `applied`        |
///
/// The two announcement counters are cache-padded: they are the only
/// fields hammered by fetch&increment from every thread of the
/// aggregator, and pushes and pops must not false-share.
pub(crate) struct Batch<T> {
    /// Announcement counter for `push` (sequence-number source).
    pub(crate) push_count: CachePadded<AtomicU64>,
    /// Announcement counter for `pop`.
    pub(crate) pop_count: CachePadded<AtomicU64>,
    /// `pushCount` as snapshotted by the freezer; published by the
    /// aggregator's batch-pointer swap.
    pub(crate) push_at_freeze: AtomicU64,
    /// `popCount` as snapshotted by the freezer.
    pub(crate) pop_at_freeze: AtomicU64,
    /// Test&set word electing the freezer among the two sequence-number-0
    /// announcers.
    pub(crate) freezer_decided: AtomicBool,
    /// Set by the combiner once every surviving operation of the batch
    /// has been applied to the shared stack.
    pub(crate) applied: AtomicBool,
    /// For pop batches: the head of the chain the combiner unlinked from
    /// the shared stack (waiters index into it in `GetValue`).
    pub(crate) substack_top: AtomicPtr<Node<T>>,
    /// The elimination array: slot `i` carries the node of the push with
    /// sequence number `i`; read by the pop with sequence number `i`
    /// (elimination) or by the push combiner (substack construction).
    pub(crate) elim: Box<[AtomicPtr<Node<T>>]>,
}

/// The exact layout of a `capacity`-slot `AtomicPtr<N>` array's buffer
/// — its recycle size class.
fn slots_layout<N>(capacity: usize) -> Layout {
    Layout::array::<AtomicPtr<N>>(capacity).expect("slot-array layout overflow")
}

/// Builds a `capacity`-length boxed slice of null `AtomicPtr`s, reusing
/// a recycled buffer from `reclaim` when one is available (`None` —
/// construction time — always heap-allocates). Shared by the stack/
/// deque batches and the queue's per-end batches.
pub(crate) fn alloc_slots_with<N>(
    reclaim: Option<&ReclaimHandle<'_>>,
    capacity: usize,
) -> Box<[AtomicPtr<N>]> {
    if capacity == 0 {
        return Vec::new().into_boxed_slice();
    }
    if let Some(block) = reclaim.and_then(|r| r.alloc_raw(slots_layout::<N>(capacity))) {
        let p = block.as_ptr().cast::<AtomicPtr<N>>();
        // Safety: the block has exactly the array's layout
        // (exact-layout size classes) and is unaliased; it originated
        // from a `Box<[AtomicPtr<_>]>` of the same length, so
        // rebuilding the box is sound.
        unsafe {
            for i in 0..capacity {
                p.add(i).write(AtomicPtr::new(ptr::null_mut()));
            }
            return Box::from_raw(ptr::slice_from_raw_parts_mut(p, capacity));
        }
    }
    (0..capacity)
        .map(|_| AtomicPtr::new(ptr::null_mut()))
        .collect()
}

/// Retires a batch's slot-array buffer for recycling (a no-op for the
/// empty slice, which owns no allocation).
///
/// # Safety
///
/// `slots` must be a batch's own boxed-slice array; the owning batch
/// must be retired via raw recycling in the same epoch so its
/// destructor never runs (the free list owns the buffer from here);
/// and every node pointer still in the array must be owned elsewhere.
pub(crate) unsafe fn retire_slots<N>(guard: &Guard<'_, '_>, slots: &[AtomicPtr<N>]) {
    if slots.is_empty() {
        return;
    }
    let buf = slots.as_ptr() as *mut u8;
    // Safety: unique live buffer of exactly `slots_layout(len)` per
    // the caller contract, consumed exactly once.
    unsafe { guard.retire_recycle_raw(buf, slots_layout::<N>(slots.len())) };
}

impl<T> Batch<T> {
    /// Heap-allocates a fresh batch with `capacity` elimination slots
    /// (the per-aggregator thread bound `P`). Construction-time path;
    /// freezers go through [`Batch::alloc_with`].
    pub(crate) fn alloc(capacity: usize) -> *mut Batch<T> {
        Box::into_raw(Box::new(Self::fresh(alloc_slots_with(None, capacity))))
    }

    fn fresh(elim: Box<[AtomicPtr<Node<T>>]>) -> Batch<T> {
        Batch {
            push_count: CachePadded::new(AtomicU64::new(0)),
            pop_count: CachePadded::new(AtomicU64::new(0)),
            push_at_freeze: AtomicU64::new(0),
            pop_at_freeze: AtomicU64::new(0),
            freezer_decided: AtomicBool::new(false),
            applied: AtomicBool::new(false),
            substack_top: AtomicPtr::new(ptr::null_mut()),
            elim,
        }
    }

    /// Allocates a fresh batch, reusing recycled batch-struct and
    /// slot-array blocks from `reclaim`'s free lists when available
    /// (DESIGN.md §10) — the freezer's hot-path replacement for
    /// [`Batch::alloc`].
    pub(crate) fn alloc_with(reclaim: &ReclaimHandle<'_>, capacity: usize) -> *mut Batch<T> {
        reclaim.alloc_boxed(Self::fresh(alloc_slots_with(Some(reclaim), capacity)))
    }

    /// Retires a frozen batch for recycling: the struct block and the
    /// elimination array's buffer return to the retiring thread's free
    /// lists once quiesced. Replaces `guard.retire(batch)` — the
    /// batch's destructor must *not* run (it would free the array the
    /// free list now owns), so the two blocks are retired separately.
    ///
    /// # Safety
    ///
    /// Same contract as [`Guard::retire`] for `batch` (unique,
    /// unreachable for new pins, currently-pinned readers may still
    /// use it); additionally every node pointer still in the array
    /// must be owned elsewhere (elimination/combining consumed them).
    pub(crate) unsafe fn retire_with(guard: &Guard<'_, '_>, batch: *mut Batch<T>)
    where
        T: Send,
    {
        // Reading the field is safe: we are pinned and the batch is
        // live until quiescence; `elim` is immutable after construction.
        unsafe { retire_slots(guard, &(*batch).elim) };
        // Safety: forwarded caller contract; the `elim` buffer's
        // ownership moved to the collector above, and the struct block
        // is recycled raw, so the destructor never runs.
        unsafe { guard.retire_recycle(batch) };
    }
}

// Safety: a batch contains only atomics (plus the boxed slot array);
// raw `Node<T>` pointers are managed by the algorithm, which transfers
// node ownership only between threads that may own `T`.
unsafe impl<T: Send> Send for Batch<T> {}
unsafe impl<T: Send> Sync for Batch<T> {}

/// An aggregator: one pointer to its currently active batch, plus the
/// park queue its batches' waiters register on.
pub(crate) struct Aggregator<T> {
    pub(crate) batch: AtomicPtr<Batch<T>>,
    /// Parked-waiter registry for every batch generation that passes
    /// through this aggregator, keyed by batch address (DESIGN.md §11).
    /// Living here — not in the batch — keeps it out of the
    /// destructor-less recycled batch blocks.
    pub(crate) event: WaitQueue,
}

impl<T> Aggregator<T> {
    /// Creates an aggregator with a fresh initial batch.
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            batch: AtomicPtr::new(Batch::alloc(capacity)),
            event: WaitQueue::new(),
        }
    }
}

/// The shared `applied`-flag wait: parks (per `policy`) on the
/// aggregator's event queue, keyed by the batch's address, until the
/// batch's combiner flips `applied`. This is the single seam the four
/// families' former copy-pasted `while !batch.applied { snooze }`
/// loops collapsed into; the waking half is [`mark_applied`].
#[inline]
pub(crate) fn wait_applied<T>(
    agg: &Aggregator<T>,
    batch: &Batch<T>,
    key: *mut Batch<T>,
    policy: WaitPolicy,
    stats: &WaitStats,
) {
    agg.event.wait_until(key as usize, policy, stats, || {
        batch.applied.load(Ordering::Acquire)
    });
}

/// The waking half of [`wait_applied`]: publishes `applied` (Release —
/// the handshake requires the condition to be visible before the
/// notify) and wakes exactly the batch's registered waiters.
#[inline]
pub(crate) fn mark_applied<T>(
    agg: &Aggregator<T>,
    batch: &Batch<T>,
    key: *mut Batch<T>,
    stats: &WaitStats,
) {
    batch.applied.store(true, Ordering::Release);
    agg.event.notify_key(key as usize, stats);
}

/// Waits (policy-aware, never parking) for a slot another announcer is
/// about to publish — the "line 38" wait shared by the push combiner,
/// the eliminating pop, the deque combiners and the queue's enqueue
/// combiner. The publisher is between its `fetch&increment` and its
/// slot store — a few instructions — so there is no waker to register
/// with and nothing worth parking for; see [`spin_wait`].
#[inline]
pub(crate) fn wait_ptr<N>(slot: &AtomicPtr<N>, policy: WaitPolicy) -> *mut N {
    let mut p = slot.load(Ordering::Acquire);
    if !p.is_null() {
        return p;
    }
    spin_wait(policy, || {
        p = slot.load(Ordering::Acquire);
        !p.is_null()
    });
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::Ordering;

    #[test]
    fn fresh_batch_is_virgin() {
        let b = Batch::<u32>::alloc(4);
        let r = unsafe { &*b };
        assert_eq!(r.push_count.load(Ordering::Relaxed), 0);
        assert_eq!(r.pop_count.load(Ordering::Relaxed), 0);
        assert!(!r.freezer_decided.load(Ordering::Relaxed));
        assert!(!r.applied.load(Ordering::Relaxed));
        assert_eq!(r.elim.len(), 4);
        assert!(r.elim.iter().all(|p| p.load(Ordering::Relaxed).is_null()));
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn aggregator_starts_with_live_batch() {
        let a = Aggregator::<u32>::new(2);
        let b = a.batch.load(Ordering::Acquire);
        assert!(!b.is_null());
        drop(unsafe { Box::from_raw(b) });
    }
}
