//! Unit tests for the SEC stack: sequential semantics, concurrent
//! conservation, elimination accounting, memory hygiene.

use crate::{ConcurrentStack, RecyclePolicy, SecConfig, SecStack, ShardPolicy, StackHandle};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

#[test]
fn sequential_lifo_order() {
    let s: SecStack<u32> = SecStack::new(1);
    let mut h = s.register();
    for i in 0..100 {
        h.push(i);
    }
    for i in (0..100).rev() {
        assert_eq!(h.pop(), Some(i));
    }
    assert_eq!(h.pop(), None);
}

#[test]
fn pop_on_empty_returns_none_repeatedly() {
    let s: SecStack<u8> = SecStack::new(1);
    let mut h = s.register();
    for _ in 0..10 {
        assert_eq!(h.pop(), None);
    }
    h.push(1);
    assert_eq!(h.pop(), Some(1));
    assert_eq!(h.pop(), None);
}

#[test]
fn peek_does_not_remove() {
    let s: SecStack<String> = SecStack::new(1);
    let mut h = s.register();
    assert_eq!(h.peek(), None);
    h.push("a".to_string());
    h.push("b".to_string());
    assert_eq!(h.peek(), Some("b".to_string()));
    assert_eq!(h.peek(), Some("b".to_string()));
    assert_eq!(h.pop(), Some("b".to_string()));
    assert_eq!(h.peek(), Some("a".to_string()));
}

#[test]
fn interleaved_push_pop_single_thread() {
    let s: SecStack<u64> = SecStack::new(1);
    let mut h = s.register();
    let mut model = Vec::new();
    // Deterministic mixed pattern, checked against a Vec model.
    for i in 0..500u64 {
        match i % 5 {
            0..=2 => {
                h.push(i);
                model.push(i);
            }
            _ => assert_eq!(h.pop(), model.pop()),
        }
    }
    while let Some(expect) = model.pop() {
        assert_eq!(h.pop(), Some(expect));
    }
    assert_eq!(h.pop(), None);
}

#[test]
fn works_with_every_aggregator_count() {
    for k in 1..=5 {
        let s: SecStack<usize> = SecStack::with_config(SecConfig::new(k, 4));
        thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    let mut h = s.register();
                    for i in 0..200 {
                        h.push(t * 1_000 + i);
                        assert!(h.pop().is_some());
                    }
                });
            }
        });
    }
}

#[test]
fn works_with_round_robin_sharding() {
    let s: SecStack<usize> =
        SecStack::with_config(SecConfig::new(3, 6).shard_policy(ShardPolicy::RoundRobin));
    thread::scope(|scope| {
        for t in 0..6 {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                for i in 0..100 {
                    h.push(t + i);
                    h.pop();
                }
            });
        }
    });
}

#[test]
fn concurrent_conservation_no_lost_no_duplicated() {
    // Every pushed value is popped exactly once (across the run plus a
    // final drain). Values are globally unique to detect duplication.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 2_000;
    let s: SecStack<usize> = SecStack::new(THREADS);
    let popped: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = &s;
                scope.spawn(move || {
                    let mut h = s.register();
                    let mut got = Vec::new();
                    for i in 0..PER_THREAD {
                        h.push(t * PER_THREAD + i);
                        if i % 2 == 0 {
                            if let Some(v) = h.pop() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut seen: HashSet<usize> = HashSet::new();
    for v in popped.into_iter().flatten() {
        assert!(seen.insert(v), "value {v} popped twice");
    }
    // Drain the remainder single-threaded.
    let mut h = s.register();
    while let Some(v) = h.pop() {
        assert!(seen.insert(v), "value {v} popped twice (drain)");
    }
    assert_eq!(seen.len(), THREADS * PER_THREAD, "values lost");
}

#[test]
fn balanced_workload_conserves_count() {
    // Equal pushes and pops from every thread: at the end the stack
    // holds exactly (pushes - successful pops) elements.
    const THREADS: usize = 6;
    const OPS: usize = 3_000;
    let s: SecStack<usize> = SecStack::new(THREADS);
    let total_popped = AtomicUsize::new(0);
    thread::scope(|scope| {
        for t in 0..THREADS {
            let s = &s;
            let total_popped = &total_popped;
            scope.spawn(move || {
                let mut h = s.register();
                let mut pops = 0;
                for i in 0..OPS {
                    if (t + i) % 2 == 0 {
                        h.push(i);
                    } else if h.pop().is_some() {
                        pops += 1;
                    }
                }
                total_popped.fetch_add(pops, Ordering::Relaxed);
            });
        }
    });
    let mut h = s.register();
    let mut remaining = 0;
    while h.pop().is_some() {
        remaining += 1;
    }
    let pushed = THREADS * OPS / 2;
    assert_eq!(total_popped.load(Ordering::Relaxed) + remaining, pushed);
}

#[test]
fn elimination_dominates_balanced_workloads() {
    // A balanced push/pop mix must show real elimination (the paper
    // reports 70–85% on big machines). Ops are drawn pseudo-randomly:
    // a *deterministic* alternation can phase-lock whole batches into
    // the same operation type (all ops of a batch complete together, so
    // relative phases never change), which would starve elimination by
    // construction rather than by algorithmic behaviour.
    const THREADS: usize = 8;
    let s: SecStack<usize> = SecStack::with_config(SecConfig::new(1, THREADS));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                let mut x = (t as u64).wrapping_mul(0x9E37_79B9) | 1;
                for i in 0..2_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x.is_multiple_of(2) {
                        h.push(i);
                    } else {
                        h.pop();
                    }
                }
            });
        }
    });
    let r = s.stats().report();
    assert_eq!(r.eliminated + r.combined, r.ops, "accounting identity");
    assert!(r.batches > 0);
    assert!(
        r.eliminated > 0,
        "a balanced concurrent mix must eliminate some pairs: {r:?}"
    );
}

#[test]
fn measured_elimination_respects_the_model_bound() {
    // Jensen: the per-batch elimination fraction is concave in the
    // batch size, so the measured aggregate can never meaningfully
    // exceed the model's prediction at the *mean* batch size —
    // E[f(N)] ≤ f(E[N]). (The reverse gap can be large; the bound is
    // one-sided.) A violation would mean the accounting counts pairs
    // that cannot exist.
    const THREADS: usize = 8;
    let s: SecStack<usize> = SecStack::with_config(SecConfig::new(1, THREADS));
    thread::scope(|scope| {
        for t in 0..THREADS {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                let mut x = (t as u64).wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
                for i in 0..3_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x.is_multiple_of(2) {
                        h.push(i);
                    } else {
                        h.pop();
                    }
                }
            });
        }
    });
    let r = s.stats().report();
    let predicted = crate::sec::model::predict_for_report(&r, 0.5);
    // +6 points of slack: the mean is rounded to an integer batch size
    // and finite samples wobble; the invariant being probed is "no
    // impossible pairs", not a tight fit.
    assert!(
        r.pct_eliminated() <= predicted.pct_eliminated + 6.0,
        "measured {:.1}% exceeds model optimum {:.1}% at n={} — impossible pairs counted? {r:?}",
        r.pct_eliminated(),
        predicted.pct_eliminated,
        predicted.batch_size,
    );
}

#[test]
fn push_only_workload_never_eliminates() {
    const THREADS: usize = 4;
    let s: SecStack<usize> = SecStack::new(THREADS);
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                for i in 0..1_000 {
                    h.push(i);
                }
            });
        }
    });
    let r = s.stats().report();
    assert_eq!(r.eliminated, 0);
    assert_eq!(r.combined, r.ops);
    assert_eq!(r.ops, (THREADS * 1_000) as u64);
}

#[test]
fn values_are_dropped_exactly_once() {
    struct Payload(Arc<AtomicUsize>);
    impl Drop for Payload {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    const THREADS: usize = 4;
    const PER_THREAD: usize = 1_000;
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let s: SecStack<Payload> = SecStack::new(THREADS);
        thread::scope(|scope| {
            for _ in 0..THREADS {
                let s = &s;
                let drops = &drops;
                scope.spawn(move || {
                    let mut h = s.register();
                    for i in 0..PER_THREAD {
                        h.push(Payload(Arc::clone(drops)));
                        if i % 3 == 0 {
                            drop(h.pop());
                        }
                    }
                });
            }
        });
        // Stack drops here with elements still inside.
    }
    assert_eq!(
        drops.load(Ordering::Relaxed),
        THREADS * PER_THREAD,
        "every pushed payload must be dropped exactly once"
    );
}

#[test]
fn handles_can_be_dropped_and_reregistered() {
    let s: SecStack<u32> = SecStack::new(2);
    for round in 0..5 {
        let mut h = s.register();
        h.push(round);
        assert_eq!(h.pop(), Some(round));
        drop(h);
    }
    // Capacity is 2: two live handles at once are fine.
    let _h1 = s.register();
    let _h2 = s.register();
}

#[test]
#[should_panic(expected = "more threads registered")]
fn over_registration_panics() {
    let s: SecStack<u32> = SecStack::new(1);
    let _h1 = s.register();
    let _h2 = s.register();
}

#[test]
fn trait_object_independence() {
    // The harness uses the traits generically; make sure the impls line
    // up (name, GAT handle).
    fn run<S: ConcurrentStack<u64>>(s: &S, expect_name: &str) {
        assert_eq!(s.name(), expect_name);
        let mut h = s.register();
        h.push(9);
        assert_eq!(h.pop(), Some(9));
    }
    let s: SecStack<u64> = SecStack::new(2);
    run(&s, "SEC");
}

#[test]
fn oversubscribed_stress_many_threads_few_cores() {
    // 16 threads on however few cores the host has: exercises the
    // yield-based waits (freezer, combiner, elimination partner).
    const THREADS: usize = 16;
    const OPS: usize = 500;
    let s: SecStack<usize> = SecStack::new(THREADS);
    thread::scope(|scope| {
        for t in 0..THREADS {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                for i in 0..OPS {
                    if (t ^ i) % 2 == 0 {
                        h.push(i);
                    } else {
                        h.pop();
                    }
                }
            });
        }
    });
}

#[test]
fn peek_under_concurrency_returns_plausible_values() {
    const THREADS: usize = 4;
    let s: SecStack<usize> = SecStack::new(THREADS + 1);
    {
        let mut h = s.register();
        for i in 0..64 {
            h.push(i);
        }
    }
    thread::scope(|scope| {
        for _ in 0..THREADS {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                for i in 0..1_000 {
                    match i % 3 {
                        0 => h.push(i),
                        1 => {
                            h.pop();
                        }
                        _ => {
                            let _ = h.peek(); // must not crash / UB
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn adaptive_stack_works_and_stays_in_bounds() {
    const THREADS: usize = 8;
    // Small window: many decisions in a short test.
    let s: SecStack<usize> = SecStack::with_config(SecConfig::adaptive_windowed(1, 4, 64, THREADS));
    assert_eq!(s.active_aggregators(), 2, "starts at the paper default");
    thread::scope(|scope| {
        for t in 0..THREADS {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                let mut x = (t as u64).wrapping_mul(0x9E37_79B9) | 1;
                for i in 0..3_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x.is_multiple_of(2) {
                        h.push(i);
                    } else {
                        h.pop();
                    }
                    let k = s.active_aggregators();
                    assert!((1..=4).contains(&k), "active {k} out of [1, 4]");
                }
            });
        }
    });
    let r = s.stats().report();
    assert_eq!(r.eliminated + r.combined, r.ops, "accounting identity");
}

#[test]
fn forced_resize_clamps_and_counts() {
    let s: SecStack<u64> = SecStack::with_config(SecConfig::adaptive(2, 4, 8));
    assert_eq!(s.active_aggregators(), 2);
    assert_eq!(s.set_active_aggregators(4), 4);
    assert_eq!(s.set_active_aggregators(100), 4, "clamped to max_k");
    assert_eq!(s.set_active_aggregators(0), 2, "clamped to min_k");
    let r = s.stats().report();
    assert_eq!(r.grows, 2, "2 -> 4 records one grow per step");
    assert_eq!(r.shrinks, 2, "4 -> 2 records one shrink per step");
    assert_eq!(r.resizes(), 4);

    // Fixed policies have min_k == max_k: forcing is a no-op.
    let f: SecStack<u64> = SecStack::with_config(SecConfig::new(3, 6));
    assert_eq!(f.set_active_aggregators(1), 3);
    assert_eq!(f.stats().report().resizes(), 0);
}

#[test]
fn handles_remap_after_forced_resizes() {
    // Operations interleaved with resizes keep completing and conserve
    // values; handles lazily re-map to the new active set.
    const THREADS: usize = 4;
    const PER: usize = 500;
    let s: SecStack<usize> = SecStack::with_config(SecConfig::adaptive(1, 4, THREADS));
    let popped: Vec<_> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = &s;
                scope.spawn(move || {
                    let mut h = s.register();
                    let mut got = Vec::new();
                    for i in 0..PER {
                        if i % 100 == t {
                            s.set_active_aggregators(1 + (t + i) % 4);
                        }
                        h.push(t * PER + i);
                        if i % 2 == 0 {
                            if let Some(v) = h.pop() {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut seen = HashSet::new();
    for v in popped.into_iter().flatten() {
        assert!(seen.insert(v), "value {v} popped twice");
    }
    let mut h = s.register();
    while let Some(v) = h.pop() {
        assert!(seen.insert(v), "value {v} popped twice (drain)");
    }
    assert_eq!(seen.len(), THREADS * PER, "values lost across resizes");
    assert!(
        s.stats().report().resizes() > 0,
        "forced transitions must be recorded"
    );
}

#[test]
fn works_with_topology_sharding() {
    let s: SecStack<usize> =
        SecStack::with_config(SecConfig::new(2, 6).shard_policy(ShardPolicy::Topology));
    thread::scope(|scope| {
        for t in 0..6 {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                for i in 0..200 {
                    h.push(t + i);
                    h.pop();
                }
            });
        }
    });
}

#[test]
fn reclaim_stats_show_reclamation_progress() {
    let s: SecStack<u64> = SecStack::new(2);
    thread::scope(|scope| {
        for _ in 0..2 {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                for i in 0..5_000 {
                    h.push(i);
                    h.pop();
                }
            });
        }
    });
    let st = s.reclaim_stats();
    assert!(st.retired > 0, "nodes and batches must have been retired");
    // The amortized advances should have reclaimed the bulk of it —
    // with recycling on (the default), quiesced blocks are *cached*
    // for reuse rather than freed.
    assert!(
        st.freed + st.cached > 0,
        "reclamation should make progress during the run: {st:?}"
    );
    assert!(
        st.recycle_hits > 0,
        "steady push/pop traffic must reuse recycled blocks: {st:?}"
    );
}

#[test]
fn recycling_off_reverts_to_freeing() {
    let s: SecStack<u64> = SecStack::with_config(SecConfig::new(2, 2).recycle(RecyclePolicy::Off));
    let mut h = s.register();
    for i in 0..5_000 {
        h.push(i);
        h.pop();
    }
    drop(h);
    let st = s.quiesce_reclamation(64);
    assert_eq!(st.cached, 0, "Off must never cache: {st:?}");
    assert_eq!(st.recycle_hits, 0, "Off must never hit: {st:?}");
    assert_eq!(st.recycle_misses, 0, "Off must not count misses: {st:?}");
    assert_eq!(st.pending(), 0, "quiesce drains everything: {st:?}");
    assert_eq!(st.retired, st.freed, "Off: every retiree is freed");
}

#[test]
fn push_many_pop_many_sequential_lifo() {
    let s: SecStack<u64> = SecStack::new(1);
    let mut h = s.register();
    h.push_many(&[1, 2, 3, 4, 5]);
    // The slice's last element is nearest the top, as if pushed one at
    // a time.
    assert_eq!(h.peek(), Some(5));
    let mut out = Vec::new();
    assert_eq!(h.pop_many(&mut out, 3), 3);
    assert_eq!(out, vec![5, 4, 3]);
    // Short return on a drained stack.
    assert_eq!(h.pop_many(&mut out, 10), 2);
    assert_eq!(out, vec![5, 4, 3, 2, 1]);
    assert_eq!(h.pop_many(&mut out, 4), 0);
    assert_eq!(h.pop(), None);
    // Empty slices are no-ops.
    h.push_many(&[]);
    assert_eq!(h.pop(), None);
}

#[test]
fn bulk_ops_are_counted_in_ops_not_announcements() {
    const CALLS: u64 = 50;
    const LEN: usize = 8;
    let s: SecStack<u64> = SecStack::new(1);
    let mut h = s.register();
    let mut out = Vec::new();
    for _ in 0..CALLS {
        h.push_many(&[7; LEN]);
        assert_eq!(h.pop_many(&mut out, LEN), LEN);
        out.clear();
    }
    let r = s.stats().report();
    assert_eq!(r.ops, 2 * CALLS * LEN as u64, "the freezer counts ops");
    assert_eq!(r.batches, 2 * CALLS, "one announcement (batch) per call");
}

#[test]
fn concurrent_bulk_and_single_ops_conserve_values() {
    const THREADS: usize = 6;
    const ROUNDS: usize = 120;
    const LEN: usize = 9;
    let s: SecStack<u64> = SecStack::new(THREADS);
    let popped: Vec<u64> = thread::scope(|scope| {
        (0..THREADS as u64)
            .map(|t| {
                let s = &s;
                scope.spawn(move || {
                    let mut h = s.register();
                    let mut got = Vec::new();
                    for r in 0..ROUNDS as u64 {
                        let base = (t << 32) | (r * LEN as u64);
                        let vals: Vec<u64> = (0..LEN as u64).map(|i| base + i).collect();
                        match (t + r) % 4 {
                            0 => h.push_many(&vals),
                            1 => {
                                for v in vals {
                                    h.push(v);
                                }
                            }
                            2 => {
                                h.pop_many(&mut got, LEN);
                            }
                            _ => {
                                for _ in 0..LEN {
                                    got.extend(h.pop());
                                }
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|j| j.join().unwrap())
            .collect()
    });
    // Drain the remainder; every pushed value must surface exactly once.
    let mut h = s.register();
    let mut rest = Vec::new();
    while h.pop_many(&mut rest, 64) > 0 {}
    let mut seen: HashSet<u64> = HashSet::new();
    for v in popped.into_iter().chain(rest) {
        assert!(seen.insert(v), "duplicate {v}");
    }
    let pushed: usize = (0..THREADS)
        .map(|t| (0..ROUNDS).filter(|r| (t + r) % 4 < 2).count() * LEN)
        .sum();
    assert_eq!(seen.len(), pushed, "values lost");
}

#[test]
fn pop_many_sees_consecutive_tops_under_concurrency() {
    // Each bulk pop must receive a *descending run* of one producer's
    // consecutive values whenever it pops from a stack built of bulk
    // pushes: blocks are spliced contiguously, so a pop_many block that
    // lands inside one push_many block observes strictly consecutive
    // descending values.
    const BLOCKS: usize = 60;
    const LEN: usize = 8;
    let s: SecStack<u64> = SecStack::new(2);
    thread::scope(|scope| {
        let s1 = &s;
        scope.spawn(move || {
            let mut h = s1.register();
            for b in 0..BLOCKS as u64 {
                let vals: Vec<u64> = (0..LEN as u64).map(|i| b * LEN as u64 + i).collect();
                h.push_many(&vals);
            }
        });
        let s2 = &s;
        scope.spawn(move || {
            let mut h = s2.register();
            let mut taken = 0usize;
            let mut tries = 0usize;
            while taken < BLOCKS * LEN && tries < 1_000_000 {
                let mut out = Vec::new();
                let n = h.pop_many(&mut out, LEN);
                taken += n;
                tries += 1;
                // Every popped run is strictly descending by 1 within a
                // producer block (aligned blocks of one producer).
                for w in out.windows(2) {
                    if w[0] % (LEN as u64) != 0 {
                        assert_eq!(w[1], w[0] - 1, "non-consecutive run: {out:?}");
                    }
                }
            }
            assert_eq!(taken, BLOCKS * LEN, "consumer drained everything");
        });
    });
}

#[test]
fn durable_stack_recovers_contents_and_order() {
    use crate::{DurablePolicy, PendingOutcome};
    const THREADS: usize = 4;
    const PER: usize = 120;
    let s = SecStack::<u64>::durable(THREADS, DurablePolicy::volatile().shards(2)).unwrap();
    thread::scope(|scope| {
        for t in 0..THREADS {
            let s = &s;
            scope.spawn(move || {
                let mut h = s.register();
                for i in 0..PER {
                    let v = (t * PER + i) as u64;
                    if i % 3 == 2 {
                        h.pop();
                    } else {
                        h.push(v);
                    }
                }
            });
        }
    });
    // Drain the live structure into a sorted multiset.
    let mut live: Vec<u64> = Vec::new();
    {
        let mut h = s.register();
        while let Some(v) = h.pop() {
            live.push(v);
        }
        // Put them back so the recovered heap still holds them (the
        // drain itself was logged).
        for &v in live.iter().rev() {
            h.push(v);
        }
    }
    live.sort_unstable();
    let heap = s.durable_heap().unwrap();
    drop(s);
    let (r, report) = SecStack::<u64>::recover(DurablePolicy::heap(heap)).unwrap();
    for h in &report.handles[..THREADS] {
        assert!(matches!(
            h.pending,
            PendingOutcome::Executed { .. } | PendingOutcome::None
        ));
    }
    // The recovered stack drains to the same multiset, in LIFO order
    // of the replayed log.
    let mut rec: Vec<u64> = Vec::new();
    let mut h = r.register();
    while let Some(v) = h.pop() {
        rec.push(v);
    }
    rec.sort_unstable();
    assert_eq!(rec, live);
}

#[test]
fn durable_stack_recovery_preserves_lifo_sequence() {
    use crate::DurablePolicy;
    let s = SecStack::<u64>::durable(1, DurablePolicy::volatile()).unwrap();
    {
        let mut h = s.register();
        for v in [10u64, 20, 30, 40] {
            h.push(v);
        }
        assert_eq!(h.pop(), Some(40));
    }
    let heap = s.durable_heap().unwrap();
    drop(s);
    let (r, report) = SecStack::<u64>::recover(DurablePolicy::heap(heap)).unwrap();
    assert_eq!(report.replayed_ops(), 5);
    let mut h = r.register();
    assert_eq!(h.pop(), Some(30));
    assert_eq!(h.pop(), Some(20));
    assert_eq!(h.pop(), Some(10));
    assert_eq!(h.pop(), None);
}

#[test]
fn durable_stack_bulk_ops_route_through_the_log() {
    use crate::DurablePolicy;
    let s = SecStack::<u64>::durable(2, DurablePolicy::volatile()).unwrap();
    {
        let mut h = s.register();
        h.push_many(&[1, 2, 3, 4, 5]);
        let mut out = Vec::new();
        assert_eq!(h.pop_many(&mut out, 2), 2);
        assert_eq!(out, vec![5, 4]);
    }
    assert_eq!(s.durable_stats().unwrap().entries, 7);
    let heap = s.durable_heap().unwrap();
    drop(s);
    let (r, _) = SecStack::<u64>::recover(DurablePolicy::heap(heap)).unwrap();
    let mut h = r.register();
    assert_eq!(h.pop(), Some(3));
}
