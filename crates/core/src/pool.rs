//! A concurrent pool built from sharded SEC stacks.
//!
//! The paper's introduction lists concurrent pools as a primary client
//! of concurrent stacks (Herlihy & Shavit §10–11: a pool is a
//! bag — `put`/`get` with no ordering guarantee — and LIFO stacks make
//! the best pool backends because recently freed items are cache-hot).
//! This module composes the SEC stack into exactly that: one
//! single-aggregator SEC stack per *shard*, producer/consumer affinity
//! by thread id, and work-stealing scans on empty shards.
//!
//! Because each shard is an independently linearizable stack and `get`
//! may take from any shard, the pool is not itself LIFO — the contract
//! is conservation (every put is got at most/exactly once), emptiness
//! only when all shards are empty, and the usual pool liveness.

use crate::config::{AggregatorPolicy, RecyclePolicy, SecConfig, WaitPolicy};
use crate::sec::{SecHandle, SecStack};
use core::fmt;
use sec_reclaim::CollectorStats;

/// A relaxed-semantics concurrent pool over sharded SEC stacks.
///
/// # Examples
///
/// ```
/// use sec_core::pool::SecPool;
///
/// let pool: SecPool<u32> = SecPool::new(2, 4); // 2 shards, ≤4 threads
/// let mut h = pool.register();
/// h.put(7);
/// assert_eq!(h.get(), Some(7));
/// assert_eq!(h.get(), None);
/// ```
pub struct SecPool<T: Send + 'static> {
    shards: Box<[SecStack<T>]>,
}

impl<T: Send + 'static> SecPool<T> {
    /// Creates a pool with `shards` shards supporting up to
    /// `max_threads` registered threads.
    ///
    /// Every shard must admit every thread (a `get` scan can touch all
    /// shards), so each shard is built for `max_threads` handles; a
    /// shard is one single-aggregator SEC stack — the sharding *is* the
    /// aggregator layer, lifted to pool level.
    pub fn new(shards: usize, max_threads: usize) -> Self {
        Self::with_recycle(shards, max_threads, RecyclePolicy::default())
    }

    /// [`SecPool::new`] with an explicit node-recycling policy, applied
    /// to every shard stack (the default is
    /// [`RecyclePolicy::per_thread`]).
    pub fn with_recycle(shards: usize, max_threads: usize, recycle: RecyclePolicy) -> Self {
        Self::with_config(shards, SecConfig::new(1, max_threads).recycle(recycle))
    }

    /// [`SecPool::new`] with an explicit blocking-wait policy, applied
    /// to every shard stack (the default is
    /// [`WaitPolicy::spin_then_park`] — DESIGN.md §11).
    pub fn with_wait(shards: usize, max_threads: usize, wait: WaitPolicy) -> Self {
        Self::with_config(shards, SecConfig::new(1, max_threads).wait_policy(wait))
    }

    /// The general constructor: every shard is built from `config`
    /// with the aggregator layer forced to a single fixed aggregator —
    /// pool-level sharding *is* the aggregator layer, lifted. All
    /// other knobs (recycling, wait policy, freezer backoff) pass
    /// through to the shard stacks.
    pub fn with_config(shards: usize, config: SecConfig) -> Self {
        let shards = shards.max(1);
        let shard_config = SecConfig {
            aggregators: 1,
            policy: AggregatorPolicy::Fixed(1),
            max_threads: config.max_threads.max(1),
            ..config
        };
        Self {
            shards: (0..shards)
                .map(|_| SecStack::with_config(shard_config))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Registers the calling thread with every shard.
    ///
    /// # Panics
    ///
    /// If more threads register than the pool was constructed for.
    pub fn register(&self) -> PoolHandle<'_, T> {
        let handles: Vec<SecHandle<'_, T>> = self.shards.iter().map(|s| s.register()).collect();
        // Home shard: spread threads by their (dense) tid.
        let home = handles[0].tid() % self.shards.len();
        PoolHandle { handles, home }
    }

    /// Reclamation statistics summed over every shard's collector
    /// (`epoch` reports the maximum across shards — the shards advance
    /// independently).
    pub fn reclaim_stats(&self) -> CollectorStats {
        self.shards
            .iter()
            .map(|s| s.reclaim_stats())
            .fold(CollectorStats::default(), sum_stats)
    }

    /// Drives every shard's reclamation to completion (up to `rounds`
    /// advances each) and returns the summed stats; see
    /// [`SecStack::quiesce_reclamation`].
    pub fn quiesce_reclamation(&self, rounds: usize) -> CollectorStats {
        self.shards
            .iter()
            .map(|s| s.quiesce_reclamation(rounds))
            .fold(CollectorStats::default(), sum_stats)
    }

    /// Aggregate park/wake/spurious-wake counters summed over every
    /// shard stack (DESIGN.md §11): `(parks, wakes, spurious_wakes)`.
    pub fn wait_counters(&self) -> (u64, u64, u64) {
        let (mut parks, mut wakes, mut spurious) = (0u64, 0u64, 0u64);
        for s in self.shards.iter() {
            let r = s.stats().report();
            parks += r.parks;
            wakes += r.wakes;
            spurious += r.spurious_wakes;
        }
        (parks, wakes, spurious)
    }

    /// A point-in-time poll of the pool's protocol counters, folded
    /// over every shard (counters sum; `at_ns` and
    /// `active_aggregators` take the shard maxima). See
    /// [`SecStack::trace_snapshot`].
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.shards.iter().map(|s| s.trace_snapshot()).fold(
            crate::TraceSnapshot::default(),
            |acc, s| crate::TraceSnapshot {
                at_ns: acc.at_ns.max(s.at_ns),
                ops: acc.ops + s.ops,
                batches: acc.batches + s.batches,
                eliminated: acc.eliminated + s.eliminated,
                combined: acc.combined + s.combined,
                parks: acc.parks + s.parks,
                wakes: acc.wakes + s.wakes,
                grows: acc.grows + s.grows,
                shrinks: acc.shrinks + s.shrinks,
                active_aggregators: acc.active_aggregators.max(s.active_aggregators),
            },
        )
    }

    /// Shard `idx`'s sec-trace recorder, when configured under the
    /// `trace` cargo feature (see
    /// [`SecStack::tracer`](crate::SecStack::tracer)); the pool has one
    /// recorder per shard stack.
    pub fn tracer(&self, idx: usize) -> Option<&crate::TraceRecorder> {
        self.shards.get(idx).and_then(|s| s.tracer())
    }

    /// Aggregate elimination share across shards (diagnostic).
    pub fn pct_eliminated(&self) -> f64 {
        let (mut elim, mut ops) = (0u64, 0u64);
        for s in self.shards.iter() {
            let r = s.stats().report();
            elim += r.eliminated;
            ops += r.ops;
        }
        if ops == 0 {
            0.0
        } else {
            100.0 * elim as f64 / ops as f64
        }
    }
}

/// Per-shard collector stats folded into a pool-wide aggregate.
fn sum_stats(acc: CollectorStats, s: CollectorStats) -> CollectorStats {
    CollectorStats {
        epoch: acc.epoch.max(s.epoch),
        retired: acc.retired + s.retired,
        freed: acc.freed + s.freed,
        cached: acc.cached + s.cached,
        recycle_hits: acc.recycle_hits + s.recycle_hits,
        recycle_misses: acc.recycle_misses + s.recycle_misses,
        recycle_overflows: acc.recycle_overflows + s.recycle_overflows,
    }
}

impl<T: Send + 'static> fmt::Debug for SecPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecPool")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Per-thread handle to a [`SecPool`].
pub struct PoolHandle<'a, T: Send + 'static> {
    handles: Vec<SecHandle<'a, T>>,
    home: usize,
}

impl<T: Send + 'static> PoolHandle<'_, T> {
    /// This thread's home shard index.
    pub fn home(&self) -> usize {
        self.home
    }

    /// A pool-wide protocol-counter poll through this handle (see
    /// [`SecPool::trace_snapshot`]).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.handles.iter().map(|h| h.trace_snapshot()).fold(
            crate::TraceSnapshot::default(),
            |acc, s| crate::TraceSnapshot {
                at_ns: acc.at_ns.max(s.at_ns),
                ops: acc.ops + s.ops,
                batches: acc.batches + s.batches,
                eliminated: acc.eliminated + s.eliminated,
                combined: acc.combined + s.combined,
                parks: acc.parks + s.parks,
                wakes: acc.wakes + s.wakes,
                grows: acc.grows + s.grows,
                shrinks: acc.shrinks + s.shrinks,
                active_aggregators: acc.active_aggregators.max(s.active_aggregators),
            },
        )
    }

    /// Adds `value` to the pool (home shard: keeps producer/consumer
    /// pairs on the same shard, where SEC's elimination pairs them off
    /// without touching the shard stack).
    pub fn put(&mut self, value: T) {
        self.handles[self.home].push(value);
    }

    /// Takes some element, preferring the home shard, stealing from the
    /// others if it is empty. `None` only if every shard reported
    /// empty during the scan.
    pub fn get(&mut self) -> Option<T> {
        let n = self.handles.len();
        for off in 0..n {
            let idx = (self.home + off) % n;
            if let Some(v) = self.handles[idx].pop() {
                return Some(v);
            }
        }
        None
    }
}

impl<T: Send + 'static> fmt::Debug for PoolHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolHandle")
            .field("home", &self.home)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn put_get_roundtrip_single_thread() {
        let pool: SecPool<u32> = SecPool::new(3, 1);
        let mut h = pool.register();
        for i in 0..20 {
            h.put(i);
        }
        let mut got = HashSet::new();
        for _ in 0..20 {
            assert!(got.insert(h.get().expect("pool has elements")));
        }
        assert_eq!(h.get(), None);
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn zero_shards_clamped() {
        let pool: SecPool<u8> = SecPool::new(0, 1);
        assert_eq!(pool.shards(), 1);
    }

    #[test]
    fn stealing_finds_other_shards_elements() {
        let pool: SecPool<u32> = SecPool::new(4, 2);
        thread::scope(|s| {
            let p = &pool;
            s.spawn(move || {
                let mut h = p.register();
                for i in 0..10 {
                    h.put(i);
                }
            })
            .join()
            .unwrap();
            let p2 = &pool;
            s.spawn(move || {
                let mut h = p2.register();
                // Different home shard, must steal everything.
                for _ in 0..10 {
                    assert!(h.get().is_some());
                }
                assert_eq!(h.get(), None);
            })
            .join()
            .unwrap();
        });
    }

    #[test]
    fn concurrent_conservation_across_shards() {
        const THREADS: usize = 8;
        const PER: usize = 1_000;
        let pool: SecPool<u64> = SecPool::new(2, THREADS + 1);
        let got: Vec<Vec<u64>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let pool = &pool;
                    scope.spawn(move || {
                        let mut h = pool.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.put((t * PER + i) as u64);
                            if i % 2 == 0 {
                                if let Some(v) = h.get() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v), "duplicate {v}");
        }
        let mut h = pool.register();
        while let Some(v) = h.get() {
            assert!(seen.insert(v), "duplicate {v} in drain");
        }
        assert_eq!(seen.len(), THREADS * PER, "lost values");
    }

    #[test]
    fn home_shards_are_spread() {
        let pool: SecPool<u8> = SecPool::new(2, 4);
        let h0 = pool.register();
        let h1 = pool.register();
        // Dense tids 0 and 1 land on different shards.
        assert_ne!(h0.home(), h1.home());
    }

    #[test]
    fn elimination_statistic_is_wired() {
        let pool: SecPool<u64> = SecPool::new(1, 4);
        thread::scope(|scope| {
            for _ in 0..4 {
                let pool = &pool;
                scope.spawn(move || {
                    let mut h = pool.register();
                    for i in 0..500 {
                        h.put(i);
                        let _ = h.get();
                    }
                });
            }
        });
        // Just verify the statistic aggregates without panicking and is
        // a percentage.
        let pct = pool.pct_eliminated();
        assert!((0.0..=100.0).contains(&pct));
    }
}
