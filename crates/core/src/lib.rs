//! # `sec-core` — the SEC (Sharded Elimination and Combining) stack
//!
//! A from-scratch Rust implementation of the blocking linearizable
//! concurrent stack of *"Sharded Elimination and Combining for
//! Highly-Efficient Concurrent Stacks"* (Singh, Metaxakis, Fatourou —
//! PPoPP '26).
//!
//! ## The algorithm in one paragraph
//!
//! Threads are statically partitioned over `K` **aggregators** (sharding
//! level 1). The operations arriving at an aggregator are grouped into
//! **batches** (sharding level 2): a thread announces its `push`/`pop`
//! with a single `fetch&increment` on the batch's `pushCount`/`popCount`
//! counter, obtaining a *sequence number*. The first announcement wins a
//! test&set and becomes the **freezer**: after a short aggregation
//! backoff it snapshots both counters (`*AtFreeze`) and swaps the
//! aggregator's batch pointer to a fresh batch. Within the frozen batch,
//! the push with sequence number `i` and the pop with sequence number
//! `i` **eliminate** each other through slot `i` of the batch's
//! elimination array — so exactly `min(pushes, pops)` pairs cancel
//! without touching the shared stack. The survivors are all of one type;
//! the one with the lowest surviving sequence number becomes the batch's
//! **combiner** and applies all of them to the shared Treiber-style
//! stack with a *single CAS* (splicing a pre-linked substack in, or
//! unlinking a chain of nodes out). Everybody else spins locally.
//!
//! ## What lives where
//!
//! * [`SecStack`] / [`SecHandle`] — the stack and its per-thread handle,
//! * [`SecConfig`] — aggregator count, capacity, freezer backoff,
//!   sharding policy (paper §3.1 tunables), including the elastic
//!   [`AggregatorPolicy`] that resizes the active aggregator set at
//!   runtime (DESIGN.md §8),
//! * [`SecStats`] — batching/elimination/combining degree counters
//!   backing Tables 1–3 of the paper,
//! * [`ConcurrentStack`] / [`StackHandle`] — the object-independent
//!   interface the baselines and the benchmark harness share,
//! * [`SecQueue`] / [`ConcurrentQueue`] / [`QueueHandle`] — the FIFO
//!   queue built from the same mechanisms (per-end batches, single-CAS
//!   splice/unlink, empty-only elimination; DESIGN.md §9) and the
//!   queue-family interface its baselines share,
//! * [`SecCounter`] — a combining fetch-and-add counter, the smallest
//!   full instantiation of the engine (~120 lines of apply logic),
//! * [`SecMap`] / [`ConcurrentMap`] / [`MapHandle`] — a batched-combining
//!   keyed hash map (buckets block-partitioned into shards, one
//!   aggregator per shard, results through announcement slots;
//!   DESIGN.md §13) and the map-family interface its baseline shares,
//! * `combine` (crate-private) — the generic
//!   announce → freeze → combine → publish engine all of the above
//!   instantiate through its `CombineOp` trait (DESIGN.md §12).
//!
//! ## Quick start
//!
//! ```
//! use sec_core::{ConcurrentStack, SecConfig, SecStack, StackHandle};
//!
//! let stack: SecStack<u64> = SecStack::with_config(SecConfig::new(2, 8));
//! std::thread::scope(|s| {
//!     for t in 0..4 {
//!         let stack = &stack;
//!         s.spawn(move || {
//!             let mut h = stack.register();
//!             h.push(t);
//!             let _ = h.pop();
//!         });
//!     }
//! });
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub(crate) mod combine;
mod config;
pub mod counter;
pub mod deque;
pub mod map;
pub mod pool;
pub mod queue;
pub mod sec;
pub mod trace;
mod traits;

pub use combine::durable::{
    fault::FaultPoint, opcode, DurableError, DurableMode, DurablePolicy, DurableStats,
    HandleRecovery, LogGranularity, LoggedOp, OpResult, PendingOutcome, RecoveryReport, SyncMode,
};
pub use config::{
    topology_shard, AggregatorPolicy, RecyclePolicy, SecConfig, ShardPolicy, WaitPolicy,
};
pub use counter::{SecCounter, SecCounterHandle};
pub use map::{SecMap, SecMapHandle};
pub use queue::{SecQueue, SecQueueHandle};
pub use sec::stats::{BatchReport, SecStats};
pub use sec::{SecHandle, SecStack};
pub use sec_reclaim::CollectorStats;
pub use trace::{DegreeDist, TraceConfig, TraceRates, TraceRecorder, TraceSnapshot};
pub use traits::{
    ConcurrentMap, ConcurrentQueue, ConcurrentStack, MapHandle, QueueHandle, StackHandle,
};
