//! The stack, queue and map interfaces shared by SEC and every
//! baseline.
//!
//! All implementations in this repository (SEC, Treiber, EB, FC,
//! CC-Synch, TSI, the MS queue, the locked map) need per-thread state —
//! a reclamation handle at minimum, and for FC/CC/TSI also a
//! publication record / combining node / local pool. Each interface
//! therefore splits into an object ([`ConcurrentStack`] /
//! [`ConcurrentQueue`] / [`ConcurrentMap`], `Sync`, shared by
//! reference) and a per-thread handle ([`StackHandle`] /
//! [`QueueHandle`] / [`MapHandle`], `!Sync`, obtained via the object's
//! `register`). The benchmark harness and the test suite are generic
//! over these traits.

/// A concurrent stack object shared among threads.
///
/// Implementations are constructed for a fixed maximum number of
/// threads; [`register`](Self::register) panics when exceeded (the
/// harness sizes stacks to its thread count, so this is a programming
/// error, not a runtime condition).
pub trait ConcurrentStack<T: Send + 'static>: Send + Sync {
    /// The per-thread access handle.
    type Handle<'a>: StackHandle<T>
    where
        Self: 'a;

    /// Registers the calling thread and returns its handle.
    ///
    /// # Panics
    ///
    /// If more threads register than the stack was constructed for.
    fn register(&self) -> Self::Handle<'_>;

    /// Short algorithm name as used in the paper's figures
    /// (`"SEC"`, `"TRB"`, `"EB"`, `"FC"`, `"CC"`, `"TSI"`).
    fn name(&self) -> &'static str;
}

/// Per-thread view of a [`ConcurrentStack`].
///
/// Handles are `!Sync` by convention (they own thread-private state) and
/// methods take `&mut self`; move a handle to another thread rather than
/// sharing it.
pub trait StackHandle<T> {
    /// Pushes `value` onto the stack.
    fn push(&mut self, value: T);

    /// Pops the most recently pushed element, or `None` when the stack
    /// is (linearizably) empty.
    fn pop(&mut self) -> Option<T>;

    /// Reads the top element without removing it, or `None` when empty.
    fn peek(&mut self) -> Option<T>
    where
        T: Clone;
}

/// A concurrent FIFO queue object shared among threads.
///
/// The queue-family counterpart of [`ConcurrentStack`]: implementations
/// are constructed for a fixed maximum number of threads;
/// [`register`](Self::register) panics when exceeded (the harness sizes
/// queues to its thread count, so that is a programming error, not a
/// runtime condition).
pub trait ConcurrentQueue<T: Send + 'static>: Send + Sync {
    /// The per-thread access handle.
    type Handle<'a>: QueueHandle<T>
    where
        Self: 'a;

    /// Registers the calling thread and returns its handle.
    ///
    /// # Panics
    ///
    /// If more threads register than the queue was constructed for.
    fn register(&self) -> Self::Handle<'_>;

    /// Short algorithm name as used in the figures
    /// (`"SEC-Q"`, `"MS"`, `"LCK-Q"`).
    fn name(&self) -> &'static str;
}

/// Per-thread view of a [`ConcurrentQueue`].
///
/// Handles are `!Sync` by convention (they own thread-private state) and
/// methods take `&mut self`; move a handle to another thread rather than
/// sharing it.
pub trait QueueHandle<T> {
    /// Appends `value` at the queue's tail.
    fn enqueue(&mut self, value: T);

    /// Removes and returns the queue's oldest value, or `None` when the
    /// queue is (linearizably) empty.
    fn dequeue(&mut self) -> Option<T>;
}

/// A concurrent keyed map object shared among threads.
///
/// The map-family counterpart of [`ConcurrentStack`]: implementations
/// are constructed for a fixed maximum number of threads;
/// [`register`](Self::register) panics when exceeded (the harness sizes
/// maps to its thread count, so that is a programming error, not a
/// runtime condition).
///
/// `get` returns a *clone* of the mapped value (the snapshot at the
/// operation's linearization point), so `V: Clone` is a trait-level
/// bound: a batched map hands results back through announcement slots
/// and cannot lend references into the shared structure.
pub trait ConcurrentMap<K: Send + 'static, V: Clone + Send + 'static>: Send + Sync {
    /// The per-thread access handle.
    type Handle<'a>: MapHandle<K, V>
    where
        Self: 'a;

    /// Registers the calling thread and returns its handle.
    ///
    /// # Panics
    ///
    /// If more threads register than the map was constructed for.
    fn register(&self) -> Self::Handle<'_>;

    /// Short algorithm name as used in the figures
    /// (`"SEC-M"`, `"LCK-M"`).
    fn name(&self) -> &'static str;
}

/// Per-thread view of a [`ConcurrentMap`].
///
/// Handles are `!Sync` by convention (they own thread-private state) and
/// methods take `&mut self`; move a handle to another thread rather than
/// sharing it.
pub trait MapHandle<K, V: Clone> {
    /// Returns the value mapped to `key` at the linearization point, or
    /// `None` when the key is absent.
    fn get(&mut self, key: &K) -> Option<V>;

    /// Maps `key` to `value`, returning the previously mapped value (or
    /// `None` when the key was absent).
    fn insert(&mut self, key: K, value: V) -> Option<V>;

    /// Removes `key`'s mapping, returning the removed value (or `None`
    /// when the key was absent).
    fn remove(&mut self, key: &K) -> Option<V>;
}
