//! A combining fetch-and-add counter — the smallest full
//! instantiation of the SEC combining engine, and the classic software
//! combining demonstration (Goodman et al.'s combining tree, flat
//! combining's `fetch&add` example).
//!
//! Every `fetch_add` announces into the calling thread's aggregator
//! batch exactly like a stack pop does; the batch freezes, the seq-0
//! announcer combines: it sums the batch's operands, performs **one**
//! atomic `fetch_add` of the total on the central counter, then hands
//! each participant its private pre-sum (`base + Σ operands before
//! it`) back through its announcement slot. `n` concurrent increments
//! cost one shared-memory RMW instead of `n` — the combining degree
//! shows up in [`SecStats`] as `combined / batches`, identically to
//! the stack's Table 3 instrumentation.
//!
//! The whole family is this file: no freezing, parking, elastic
//! re-mapping or recycling code appears here — all of it is inherited
//! from `crate::combine` (DESIGN.md §12). Operations ride the
//! **remove** lane (the result-bearing lane); the add lane stays
//! permanently at zero, which makes the engine's elimination test
//! (`my_seq < add_at_freeze`) vacuously false and its combiner
//! election (`my_seq == add_at_freeze`) pick exactly sequence number
//! zero. A homogeneous family degenerates out of the mixed protocol
//! for free.

use crate::combine::durable::{
    self, fault, fault::FaultPoint, opcode, DurableCore, DurableError, DurablePolicy, DurableReq,
    DurableStats, Family, OpResult, RecoveryReport,
};
use crate::combine::{AggLayout, CombineBatch, CombineEngine, CombineOp, Lane, OpState, Role};
use crate::config::SecConfig;
use crate::sec::node::Node;
use crate::sec::stats::SecStats;
use core::fmt;
use core::mem::ManuallyDrop;
use core::sync::atomic::{AtomicU64, Ordering};
use sec_reclaim::{Guard, Handle as ReclaimHandle};
use sec_sync::CachePadded;

/// The counter's apply logic: one central word, one combiner.
struct CounterOp {
    /// The linearization point of every `fetch_add` and `load`: all
    /// operations of a frozen batch linearize consecutively, in slot
    /// order, at the combiner's single `fetch_add` on this word.
    total: CachePadded<AtomicU64>,
    /// Redo log + intent cells when built durable (DESIGN.md §16).
    /// When set, every `fetch_add` routes through the dedicated
    /// durable aggregators at `bulk_agg(DUR_BASE..)`.
    durable: Option<DurableCore>,
}

/// Bulk-aggregator index of the first durable shard (the `add_many`
/// aggregator sits at `bulk_agg(0)`).
const DUR_BASE: usize = 1;

/// A bulk `add_many` announcement: the node flowing through the
/// counter's dedicated bulk aggregator. Lives on the announcer's stack
/// frame (the announcer blocks until `applied`, so the frame outlives
/// every combiner access); the engine only stores and forwards the
/// pointer, type-erased as `*mut Node<u64>`.
struct AddManyReq {
    /// The caller's delta slice.
    deltas: *const u64,
    len: usize,
    /// Written by the combiner: the counter's value immediately before
    /// this request's first delta (the request's `fetch_add` base).
    base: u64,
}

impl CombineOp for CounterOp {
    type Node = Node<u64>;
    type Value = u64;

    // `combine_add` and `eliminate` keep their defaults: the add lane
    // of a counter batch is always empty, so the engine never calls
    // them.

    /// Sum the frozen batch's operands, add the total to the central
    /// counter with one RMW, and write each participant's pre-sum back
    /// into its announcement slot. Allocation-free: two passes over
    /// the slot array, no scratch buffer.
    fn combine_remove(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<u64>>,
        my_seq: usize,
        agg_idx: usize,
        _guard: &Guard<'_, '_>,
    ) {
        if agg_idx == eng.bulk_agg(0) {
            return self.combine_add_many(eng, batch, my_seq);
        }
        if let Some(d) = &self.durable {
            if agg_idx >= eng.bulk_agg(DUR_BASE) {
                return self.combine_durable(
                    eng,
                    batch,
                    my_seq,
                    agg_idx - eng.bulk_agg(DUR_BASE),
                    d,
                );
            }
        }
        let cut = batch.frozen_cut(Role::Remove);

        // Pass 1: every included operation published its operand node
        // (slot stores happen right after announcing; freezing only
        // bounds *which* slots, not *when* they land — so spin on the
        // ones still in flight).
        let mut sum = 0u64;
        for slot in &batch.slots[my_seq..cut] {
            let n = crate::combine::wait_ptr(slot, eng.config().wait);
            sum = sum.wrapping_add(unsafe { *(*n).value });
        }

        // The batch's single shared-memory RMW.
        let mut base = self.total.fetch_add(sum, Ordering::AcqRel);

        // Pass 2: hand each participant `base + Σ operands before it`
        // by overwriting its operand in place. Exclusive access: the
        // owners only read their slots back after observing `applied`
        // (Release-published by the engine right after this returns),
        // and slot `i` belongs to exactly one operation.
        for slot in &batch.slots[my_seq..cut] {
            let n = slot.load(Ordering::Acquire);
            let operand = unsafe { *(*n).value };
            unsafe { (*n).value = ManuallyDrop::new(base) };
            base = base.wrapping_add(operand);
        }
    }

    /// Each participant (combiner included) collects its pre-sum from
    /// its own slot. The add lane is empty, so the engine's `offset`
    /// is the operation's own sequence number. Bulk requests received
    /// their base in place (the request struct), so the bulk aggregator
    /// has nothing to take here.
    fn take_result(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<u64>>,
        offset: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) -> Option<u64> {
        if agg_idx == eng.bulk_agg(0) {
            return None;
        }
        if self.durable.is_some() && agg_idx >= eng.bulk_agg(DUR_BASE) {
            // Durable requests carry their results in the request
            // struct; nothing to take. The hook is the harness's
            // mid-publish crash point: results are committed but some
            // announcers may not have consumed them yet.
            fault::hit(FaultPoint::MidPublish);
            return None;
        }
        let n = batch.slots[offset].load(Ordering::Acquire);
        debug_assert!(
            !n.is_null(),
            "operand published before announcing completed"
        );
        // Safety: unique consumer of our own slot; payload out, husk
        // recycles into this thread's node cache.
        let value = unsafe { Node::take_value(n) };
        unsafe { guard.retire_recycle(n) };
        Some(value)
    }
}

impl CounterOp {
    /// The bulk-aggregator combiner: the slot walk of `combine_remove`
    /// with announcement nodes reinterpreted as [`AddManyReq`]s. Still
    /// two passes and still exactly one shared RMW — now covering
    /// `Σ lenᵢ` operations instead of one per slot — and each request's
    /// base lands in its own struct rather than a result chain.
    fn combine_add_many(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<u64>>,
        my_seq: usize,
    ) {
        let cut = batch.frozen_cut(Role::Remove);
        let mut sum = 0u64;
        for slot in &batch.slots[my_seq..cut] {
            let req = crate::combine::wait_ptr(slot, eng.config().wait) as *mut AddManyReq;
            // Safety: the announcer published the request before
            // announcing (wait_ptr's Acquire pairs with its Release
            // slot store) and blocks until `applied`, so the struct and
            // the delta slice behind it are live and unaliased-for-read.
            unsafe {
                for i in 0..(*req).len {
                    sum = sum.wrapping_add(*(*req).deltas.add(i));
                }
            }
        }
        let mut base = self.total.fetch_add(sum, Ordering::AcqRel);
        for slot in &batch.slots[my_seq..cut] {
            let req = slot.load(Ordering::Acquire) as *mut AddManyReq;
            // Safety: as above; `base` is ours to write — the owner
            // reads it only after observing `applied` (Release-
            // published right after this returns).
            unsafe {
                (*req).base = base;
                for i in 0..(*req).len {
                    base = base.wrapping_add(*(*req).deltas.add(i));
                }
            }
        }
    }

    /// The durable combiner: applies each frozen `fetch_add` and logs
    /// the batch under the core's apply lock; the record is committed
    /// before this returns, so the engine's publish never exposes an
    /// unlogged result.
    fn combine_durable(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<Node<u64>>,
        my_seq: usize,
        shard: usize,
        d: &DurableCore,
    ) {
        let cut = batch.frozen_cut(Role::Remove);
        let reqs = durable::frozen_reqs(batch, my_seq, cut, eng.config().wait);
        // Safety: every pointer was announced into this frozen batch
        // and its owner blocks until `applied`.
        unsafe {
            d.combine_batch(shard, &reqs, |req| {
                let prev = self.total.fetch_add(req.operand, Ordering::AcqRel);
                req.set_result(OpResult::Value(prev));
            });
        }
    }
}

/// A linearizable combining fetch-and-add counter.
///
/// `n` threads incrementing concurrently induce *one* atomic RMW per
/// frozen batch instead of one per increment; everything else is
/// cache-local slot traffic inside the thread's aggregator.
///
/// # Examples
///
/// ```
/// use sec_core::SecCounter;
///
/// let counter = SecCounter::new(4); // up to 4 threads
/// let mut h = counter.register();
/// assert_eq!(h.fetch_add(5), 0);
/// assert_eq!(h.fetch_add(1), 5);
/// assert_eq!(counter.load(), 6);
/// ```
pub struct SecCounter {
    engine: CombineEngine<CounterOp>,
}

impl SecCounter {
    /// Creates a counter with the paper's default configuration (two
    /// aggregators) for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::with_config(SecConfig::new(2, max_threads))
    }

    /// Creates a counter from an explicit [`SecConfig`] — aggregator
    /// count, elastic policy, freezer backoff, recycle and wait
    /// policies all apply exactly as they do to the stack.
    pub fn with_config(config: SecConfig) -> Self {
        Self::build(config, None, 0)
    }

    fn build(config: SecConfig, durable: Option<DurableCore>, initial: u64) -> Self {
        let shards = durable.as_ref().map_or(0, |d| d.shards());
        Self {
            engine: CombineEngine::new(
                "SecCounter",
                CounterOp {
                    total: CachePadded::new(AtomicU64::new(initial)),
                    durable,
                },
                config,
                // One dedicated bulk aggregator after the mapped
                // prefix, carrying `add_many` request batches; durable
                // shards (if any) follow it.
                AggLayout::Mapped {
                    with_slots: true,
                    bulk: 1 + shards,
                },
            ),
        }
    }

    /// Creates a crash-durable counter over `policy`'s persistent
    /// heap: every `fetch_add` writes an intent cell before announcing
    /// and is redo-logged (with its result) by its batch's combiner
    /// before the result is published. See DESIGN.md §16.
    pub fn durable(max_threads: usize, policy: DurablePolicy) -> Result<Self, DurableError> {
        let core = DurableCore::create(&policy, Family::Counter, 0, max_threads)?;
        Ok(Self::build(SecConfig::new(2, max_threads), Some(core), 0))
    }

    /// Recovers a durable counter from `policy.mode`'s existing heap:
    /// replays the committed redo log in global order (verifying each
    /// logged result against the replay) and reports, per handle,
    /// whether its last announced op executed and with what result.
    pub fn recover(policy: DurablePolicy) -> Result<(Self, RecoveryReport), DurableError> {
        let (core, report) = DurableCore::open(&policy, Family::Counter)?;
        let mut total = 0u64;
        for op in &report.ops {
            if op.opcode != opcode::ADD {
                return Err(DurableError::Corrupt(format!(
                    "counter log holds foreign opcode {}",
                    op.opcode
                )));
            }
            if op.result != OpResult::Value(total) {
                return Err(DurableError::Corrupt(format!(
                    "replay diverged: logged {:?}, replayed value {total}",
                    op.result
                )));
            }
            total = total.wrapping_add(op.operand);
        }
        let config = SecConfig::new(2, core.max_handles());
        Ok((Self::build(config, Some(core), total), report))
    }

    /// The persistent heap backing this counter (durable counters
    /// only) — hold it across a drop to recover a Volatile-mode heap.
    pub fn durable_heap(&self) -> Option<std::sync::Arc<sec_reclaim::PersistentHeap>> {
        self.engine.op().durable.as_ref().map(|d| d.heap())
    }

    /// Redo-log counters (durable counters only).
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.engine.op().durable.as_ref().map(|d| d.stats())
    }

    /// Registers the calling thread and returns its operation handle.
    pub fn register(&self) -> SecCounterHandle<'_> {
        let (reclaim, state) = self.engine.register();
        let dur_seq = self
            .engine
            .op()
            .durable
            .as_ref()
            .map_or(1, |d| d.start_seq(state.tid()));
        SecCounterHandle {
            counter: self,
            state,
            reclaim,
            dur_seq,
        }
    }

    /// Reads the counter. Linearizes at the load of the central word:
    /// increments whose batch has not combined yet are not visible,
    /// exactly as a `fetch_add(0)` arriving now would not see them.
    pub fn load(&self) -> u64 {
        self.engine.op().total.load(Ordering::Acquire)
    }

    /// The configuration this counter was built with.
    pub fn config(&self) -> &SecConfig {
        self.engine.config()
    }

    /// The batching/combining instrumentation. `eliminated` is always
    /// zero for a homogeneous family; `combined / batches` is the
    /// counter's combining degree.
    pub fn stats(&self) -> &SecStats {
        self.engine.stats()
    }

    /// Reclamation statistics (diagnostic).
    pub fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.engine.reclaim_stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances) and returns the resulting stats.
    pub fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.engine.quiesce_reclamation(rounds)
    }

    /// Number of currently active aggregators.
    pub fn active_aggregators(&self) -> usize {
        self.engine.active_aggregators()
    }

    /// Forces the active aggregator count (see
    /// [`SecStack::set_active_aggregators`](crate::SecStack::set_active_aggregators)).
    pub fn set_active_aggregators(&self, k: usize) -> usize {
        self.engine.set_active_aggregators(k)
    }

    /// A point-in-time poll of the counter's protocol counters (see
    /// [`SecStack::trace_snapshot`](crate::SecStack::trace_snapshot)).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.engine.trace_snapshot()
    }

    /// The sec-trace recorder, when configured under the `trace` cargo
    /// feature (see [`SecStack::tracer`](crate::SecStack::tracer)).
    pub fn tracer(&self) -> Option<&crate::TraceRecorder> {
        self.engine.tracer()
    }
}

impl fmt::Debug for SecCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecCounter")
            .field("value", &self.load())
            .field("config", self.config())
            .field("active_aggregators", &self.active_aggregators())
            .finish()
    }
}

/// A thread's handle to a [`SecCounter`].
pub struct SecCounterHandle<'a> {
    counter: &'a SecCounter,
    state: OpState,
    reclaim: ReclaimHandle<'a>,
    /// Next per-handle durable op sequence number (1-based; resumes
    /// from the recovered log on durable counters, unused otherwise).
    dur_seq: u64,
}

impl SecCounterHandle<'_> {
    /// This thread's id (dense, `0..max_threads`).
    pub fn tid(&self) -> usize {
        self.state.tid()
    }

    /// The aggregator this thread last announced to.
    pub fn aggregator(&self) -> usize {
        self.state.aggregator()
    }

    /// A point-in-time poll of the counter's protocol counters (see
    /// [`SecCounter::trace_snapshot`]).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.counter.trace_snapshot()
    }

    /// Atomically adds `n` and returns the counter's value immediately
    /// before this operation — the same contract as
    /// [`AtomicU64::fetch_add`], delivered through one combined RMW
    /// per batch.
    pub fn fetch_add(&mut self, n: u64) -> u64 {
        if self.counter.engine.op().durable.is_some() {
            return self.durable_add(n);
        }
        let node = Node::alloc_with(&self.reclaim, n);
        self.counter
            .engine
            .run(
                Lane::Mapped(&mut self.state),
                Role::Remove,
                node,
                &self.reclaim,
            )
            .expect("counter combiner always produces a result")
    }

    /// The durable `fetch_add` path: persist the intent, announce a
    /// request on this thread's durable shard, read the logged result
    /// back out of the request after publish.
    fn durable_add(&mut self, n: u64) -> u64 {
        let eng = &self.counter.engine;
        let d = eng.op().durable.as_ref().expect("durable route");
        let tid = self.state.tid();
        let seq = self.dur_seq;
        d.write_intent(tid, seq, opcode::ADD, n, 0);
        let mut req = DurableReq::new(tid, seq, opcode::ADD, n, 0);
        let node = (&mut req as *mut DurableReq).cast::<Node<u64>>();
        let shard = d.shard_of(tid);
        eng.run_weighted(
            Lane::At(eng.bulk_agg(DUR_BASE + shard)),
            Role::Remove,
            node,
            1,
            &self.reclaim,
        );
        self.dur_seq = seq + 1;
        match req.take_result() {
            OpResult::Value(v) => v,
            other => unreachable!("durable add produced {other:?}"),
        }
    }

    /// Convenience for `fetch_add(1)`.
    pub fn increment(&mut self) -> u64 {
        self.fetch_add(1)
    }

    /// Bulk `fetch_add`: applies every delta as consecutive atomic
    /// additions and returns the counter's value immediately before
    /// the first one. The whole slice rides **one** announcement (one
    /// sequence number, one slot) on the counter's dedicated bulk
    /// aggregator, so the protocol cost amortizes over `deltas.len()`
    /// operations; per-delta pre-values are the prefix sums off the
    /// returned base.
    ///
    /// Slices longer than the engine's per-announcement weight bound
    /// are chunked; the chunks are then individually atomic (other
    /// threads' batches may interleave between them), matching the
    /// guarantee of a plain `fetch_add` loop. An empty slice just
    /// reads the counter.
    pub fn add_many(&mut self, deltas: &[u64]) -> u64 {
        if deltas.is_empty() {
            return self.load();
        }
        if self.counter.engine.op().durable.is_some() {
            // Durable counters make every delta an individually
            // detectable logged op; the bulk is a fold of singles
            // (chunks of a non-durable bulk may interleave with other
            // threads too, so the contract is unchanged).
            let base = self.durable_add(deltas[0]);
            for &d in &deltas[1..] {
                self.durable_add(d);
            }
            return base;
        }
        let mut first_base = None;
        for chunk in deltas.chunks(crate::combine::MAX_BULK_OPS) {
            let mut req = AddManyReq {
                deltas: chunk.as_ptr(),
                len: chunk.len(),
                base: 0,
            };
            let node = (&mut req as *mut AddManyReq).cast::<Node<u64>>();
            self.counter.engine.run_weighted(
                Lane::At(self.counter.engine.bulk_agg(0)),
                Role::Remove,
                node,
                chunk.len() as u32,
                &self.reclaim,
            );
            // `run_weighted` returned, so `applied` was observed: the
            // combiner's `base` write happens-before this read.
            first_base.get_or_insert(req.base);
        }
        first_base.expect("non-empty slice produced at least one chunk")
    }

    /// Reads the counter (see [`SecCounter::load`]).
    pub fn load(&self) -> u64 {
        self.counter.load()
    }
}

impl fmt::Debug for SecCounterHandle<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecCounterHandle")
            .field("tid", &self.tid())
            .field("aggregator", &self.aggregator())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AggregatorPolicy, RecyclePolicy, WaitPolicy};
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn sequential_fetch_add_matches_atomic_contract() {
        let c = SecCounter::new(1);
        let mut h = c.register();
        assert_eq!(h.fetch_add(3), 0);
        assert_eq!(h.fetch_add(0), 3);
        assert_eq!(h.increment(), 3);
        assert_eq!(h.fetch_add(10), 4);
        assert_eq!(c.load(), 14);
    }

    #[test]
    fn concurrent_increments_return_a_permutation_of_previous_values() {
        const THREADS: usize = 6;
        const PER: usize = 500;
        let c = SecCounter::new(THREADS);
        let mut seen: Vec<u64> = thread::scope(|scope| {
            (0..THREADS)
                .map(|_| {
                    let c = &c;
                    scope.spawn(move || {
                        let mut h = c.register();
                        (0..PER).map(|_| h.increment()).collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|j| j.join().unwrap())
                .collect()
        });
        // Each increment observed a distinct previous value: the
        // returns are exactly {0, 1, …, N·M−1}. This is the full
        // fetch_add contract, not just conservation.
        seen.sort_unstable();
        let expect: Vec<u64> = (0..(THREADS * PER) as u64).collect();
        assert_eq!(seen, expect);
        assert_eq!(c.load(), (THREADS * PER) as u64);
        let r = c.stats().report();
        assert_eq!(r.ops, (THREADS * PER) as u64);
        assert_eq!(r.eliminated, 0, "homogeneous family never eliminates");
        assert_eq!(r.combined, r.ops);
    }

    #[test]
    fn mixed_operands_sum_exactly() {
        const THREADS: usize = 4;
        const PER: usize = 300;
        let c = SecCounter::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let c = &c;
                scope.spawn(move || {
                    let mut h = c.register();
                    for i in 0..PER {
                        let n = ((t * PER + i) % 7) as u64;
                        h.fetch_add(n);
                    }
                });
            }
        });
        let expect: u64 = (0..THREADS)
            .flat_map(|t| (0..PER).map(move |i| ((t * PER + i) % 7) as u64))
            .sum();
        assert_eq!(c.load(), expect);
    }

    #[test]
    fn elastic_policy_resizes_under_load() {
        let c = SecCounter::with_config(
            SecConfig::new(1, 8)
                .aggregator_policy(AggregatorPolicy::Adaptive {
                    min_k: 1,
                    max_k: 4,
                    window: 8,
                })
                .wait_policy(WaitPolicy::SpinThenPark { spin_rounds: 64 }),
        );
        thread::scope(|scope| {
            for _ in 0..8 {
                let c = &c;
                scope.spawn(move || {
                    let mut h = c.register();
                    for _ in 0..2_000 {
                        h.increment();
                    }
                });
            }
        });
        assert_eq!(c.load(), 16_000);
        // Forced resize keeps working after the run, too.
        assert_eq!(c.set_active_aggregators(4), 4);
        let mut h = c.register();
        assert_eq!(h.fetch_add(1), 16_000);
    }

    #[test]
    fn add_many_returns_the_base_of_its_prefix_sums() {
        let c = SecCounter::new(1);
        let mut h = c.register();
        assert_eq!(h.fetch_add(5), 0);
        assert_eq!(h.add_many(&[1, 2, 3]), 5, "base = value before the bulk");
        assert_eq!(c.load(), 11);
        assert_eq!(h.add_many(&[]), 11, "empty bulk reads the counter");
        assert_eq!(c.load(), 11);
        assert_eq!(h.fetch_add(0), 11, "singles still see every bulk delta");
    }

    #[test]
    fn bulk_ops_are_counted_in_ops_not_announcements() {
        const CALLS: u64 = 50;
        const LEN: u64 = 8;
        let c = SecCounter::new(1);
        let mut h = c.register();
        for _ in 0..CALLS {
            h.add_many(&[1; LEN as usize]);
        }
        let r = c.stats().report();
        assert_eq!(r.ops, CALLS * LEN, "degree counts ops, not announcements");
        assert_eq!(r.batches, CALLS, "one announcement (one batch) per call");
        assert_eq!(c.load(), CALLS * LEN);
    }

    #[test]
    fn concurrent_bulk_and_single_adds_sum_exactly() {
        const THREADS: usize = 6;
        const PER: usize = 200;
        let c = SecCounter::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let c = &c;
                scope.spawn(move || {
                    let mut h = c.register();
                    let deltas: Vec<u64> = (0..4).map(|i| (t + i) as u64 % 5).collect();
                    let per_call: u64 = deltas.iter().sum();
                    for i in 0..PER {
                        if i % 3 == 0 {
                            let base = h.add_many(&deltas);
                            // The bulk is one atomic step: a re-read
                            // directly after it can never be below
                            // base + Σ deltas.
                            assert!(h.load() >= base + per_call);
                        } else {
                            h.fetch_add(1);
                        }
                    }
                });
            }
        });
        let expect: u64 = (0..THREADS)
            .map(|t| {
                let per_call: u64 = (0..4).map(|i| (t + i) as u64 % 5).sum();
                (0..PER)
                    .map(|i| if i % 3 == 0 { per_call } else { 1 })
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(c.load(), expect);
    }

    #[test]
    fn durable_counter_recovers_value_and_classifies_handles() {
        use crate::combine::durable::PendingOutcome;
        const THREADS: usize = 4;
        const PER: usize = 100;
        let c = SecCounter::durable(THREADS, DurablePolicy::volatile().shards(2)).unwrap();
        thread::scope(|scope| {
            for t in 0..THREADS {
                let c = &c;
                scope.spawn(move || {
                    let mut h = c.register();
                    for i in 0..PER {
                        h.fetch_add((t + i) as u64 % 5);
                    }
                });
            }
        });
        let expect: u64 = (0..THREADS)
            .flat_map(|t| (0..PER).map(move |i| (t + i) as u64 % 5))
            .sum();
        assert_eq!(c.load(), expect);
        let stats = c.durable_stats().unwrap();
        assert_eq!(stats.entries, (THREADS * PER) as u64);
        assert!(
            stats.records <= stats.entries,
            "batching can only reduce records"
        );
        let heap = c.durable_heap().unwrap();
        drop(c);
        let (r, report) = SecCounter::recover(DurablePolicy::heap(heap)).unwrap();
        assert_eq!(r.load(), expect);
        assert_eq!(report.replayed_ops(), THREADS * PER);
        assert_eq!(report.torn_records, 0);
        for h in &report.handles[..THREADS] {
            assert_eq!(h.executed, PER as u64);
            // A clean shutdown leaves the last op executed (its
            // intent cell still holds it).
            assert!(
                matches!(h.pending, PendingOutcome::Executed { op_seq, .. } if op_seq == PER as u64)
            );
        }
        // New handles resume their sequence numbers past the log.
        let mut h = r.register();
        assert_eq!(h.fetch_add(1), expect);
        assert_eq!(r.load(), expect + 1);
    }

    #[test]
    fn durable_recovery_is_idempotent() {
        let c = SecCounter::durable(2, DurablePolicy::volatile()).unwrap();
        {
            let mut h = c.register();
            for _ in 0..50 {
                h.increment();
            }
        }
        let heap = c.durable_heap().unwrap();
        drop(c);
        let (r1, rep1) = SecCounter::recover(DurablePolicy::heap(Arc::clone(&heap))).unwrap();
        let (r2, rep2) = SecCounter::recover(DurablePolicy::heap(heap)).unwrap();
        assert_eq!(r1.load(), 50);
        assert_eq!(r2.load(), 50);
        assert_eq!(rep1.replayed_ops(), rep2.replayed_ops());
        assert_eq!(rep1.handles, rep2.handles);
    }

    #[test]
    fn durable_per_op_granularity_matches_per_batch() {
        use crate::combine::durable::LogGranularity;
        for g in [LogGranularity::PerBatch, LogGranularity::PerOp] {
            let c = SecCounter::durable(2, DurablePolicy::volatile().granularity(g)).unwrap();
            thread::scope(|scope| {
                for _ in 0..2 {
                    let c = &c;
                    scope.spawn(move || {
                        let mut h = c.register();
                        for _ in 0..200 {
                            h.increment();
                        }
                    });
                }
            });
            assert_eq!(c.load(), 400);
            let heap = c.durable_heap().unwrap();
            drop(c);
            let (r, rep) = SecCounter::recover(DurablePolicy::heap(heap)).unwrap();
            assert_eq!(r.load(), 400);
            assert_eq!(rep.replayed_ops(), 400);
        }
    }

    #[test]
    fn recovering_a_volatile_policy_is_refused() {
        assert!(matches!(
            SecCounter::recover(DurablePolicy::volatile()),
            Err(DurableError::NothingToRecover)
        ));
    }

    #[test]
    fn recycling_reaches_steady_state() {
        let c = SecCounter::with_config(
            SecConfig::new(1, 2).recycle(RecyclePolicy::PerThread { cache_cap: 64 }),
        );
        thread::scope(|scope| {
            for _ in 0..2 {
                let c = &c;
                scope.spawn(move || {
                    let mut h = c.register();
                    for _ in 0..5_000 {
                        h.increment();
                    }
                });
            }
        });
        assert_eq!(c.load(), 10_000);
        let stats = c.quiesce_reclamation(64);
        assert_eq!(
            stats.retired,
            stats.freed + stats.cached,
            "quiesced counter leaks nothing: {stats:?}"
        );
    }
}
