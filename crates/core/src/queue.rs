//! A concurrent FIFO queue built from the paper's three mechanisms —
//! announcement batching, batch freezing, and single-CAS combining —
//! retargeted from a stack's one contended end to a queue's two.
//!
//! The paper's introduction grounds itself in the FIFO-queue literature
//! (LCRQ, aggregating funnels); this module closes the loop by building
//! the queue those mechanisms imply. Construction: a Michael–Scott-style
//! linked list with a dummy node, plus one SEC batch layer *per end* —
//! two fixed aggregators of the combining engine (`crate::combine`,
//! DESIGN.md §12):
//!
//! * **enqueuers** announce into the tail aggregator's current batch
//!   with one fetch&increment and publish their node in the batch's
//!   slot array; the batch's combiner pre-links all announced nodes in
//!   sequence order and splices the whole chain with a **single CAS on
//!   `tail`** (then writes the old tail's `next` link, the standard
//!   swing-then-link discipline);
//! * **dequeuers** announce into the head aggregator's current batch;
//!   the combiner walks `popCount` nodes from `head` in one traversal
//!   and unlinks them all with a **single CAS on `head`**, publishing
//!   the taken chain (and its length) for the batch's waiters;
//! * **elimination** between enqueues and dequeues is permitted *only
//!   when the combiner observes the queue empty* — any other pairing
//!   would hand a dequeuer a value newer than the queue's front and
//!   break FIFO. When the dequeue combiner validates emptiness
//!   (MS-style: `head == tail` and `head.next == null`), it holds a
//!   bounded rendezvous window open on `head.next`; an enqueue batch
//!   that splices into the empty queue during the window is consumed
//!   directly, combiner-to-combiner, before its values ever age in the
//!   list. The (empty) head link is the elimination slot — routing the
//!   hand-off through it is what keeps emptiness and transfer atomic
//!   (DESIGN.md §9 discusses why a detached slot array cannot).
//!
//! Batches are homogeneous per end: each end uses one lane of the
//! engine's `CombineBatch` while the other lane's counter stays
//! pinned at zero, which makes the engine's combiner election pick
//! exactly the sequence-0 announcer and its cross-lane elimination
//! test vacuous (see `crate::combine`'s module docs). Memory is
//! reclaimed through the same `sec-reclaim` epochs as the stack: the
//! freezer retires its frozen batch, the dequeue combiner retires the
//! outgoing dummy, and each waiter retires the node it consumed
//! (except the chain's last, which becomes the new dummy and is
//! retired by a later combiner).

use crate::combine::durable::{
    self, fault, fault::FaultPoint, opcode, DurableCore, DurableError, DurablePolicy, DurableReq,
    DurableStats, Family, OpResult, RecoveryReport,
};
use crate::combine::{wait_ptr, AggLayout, CombineBatch, CombineEngine, CombineOp, Lane, Role};
use crate::config::{RecyclePolicy, SecConfig, WaitPolicy};
use crate::sec::stats::SecStats;
use crate::traits::{ConcurrentQueue, QueueHandle};
use core::fmt;
use core::mem::MaybeUninit;
use core::ptr;
use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use sec_reclaim::{Guard, Handle as ReclaimHandle};
use sec_sync::event::spin_wait;
use sec_sync::{Backoff, CachePadded};

/// Default length (in spin iterations) of the empty-queue rendezvous
/// window the dequeue combiner holds open for a concurrent enqueue
/// splice. Long enough to catch an in-flight combiner hand-off, short
/// enough that `dequeue` on a genuinely empty queue still returns
/// promptly (the liveness suite depends on this bound).
const DEFAULT_RENDEZVOUS_SPINS: u32 = 128;

/// The head-side engine aggregator (dequeues; no announcement slots),
/// the tail-side one (enqueues; slots carry the announced nodes — for
/// `enqueue_many`, forward chains of them), and the bulk dequeue
/// aggregator (slots carry `DequeueManyReq`s).
const HEAD: usize = 0;
const TAIL: usize = 1;
const HEAD_BULK: usize = 2;

/// Bulk-aggregator index of the first durable shard. The queue's three
/// fixed aggregators are the whole `Fixed` prefix, so the bulk suffix
/// holds nothing *but* durable shards: shard `s` is `bulk_agg(s)`.
const DUR_BASE: usize = 0;

/// A queue node. `value` is `MaybeUninit` (not `ManuallyDrop` as in the
/// stack) because the MS-queue representation needs nodes with *no*
/// value at all: the initial dummy is allocated empty, and every node
/// whose value has been consumed lives on as the dummy until a later
/// dequeue combiner retires it.
struct QNode<T> {
    value: MaybeUninit<T>,
    next: AtomicPtr<QNode<T>>,
}

impl<T> QNode<T> {
    /// Allocates a detached node carrying `value`, reusing a recycled
    /// node block from `reclaim`'s free lists when one is available
    /// (DESIGN.md §10).
    fn alloc_with(reclaim: &ReclaimHandle<'_>, value: T) -> *mut QNode<T> {
        reclaim.alloc_boxed(QNode {
            value: MaybeUninit::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }

    /// Heap-allocates the valueless dummy node.
    fn alloc_dummy() -> *mut QNode<T> {
        Box::into_raw(Box::new(QNode {
            value: MaybeUninit::uninit(),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }

    /// Moves the payload out of `node` without freeing the node.
    ///
    /// # Safety
    ///
    /// The caller must be the unique consumer of this node's value (the
    /// algorithm assigns each taken node to exactly one dequeue), the
    /// value must have been initialized, and the node must stay
    /// allocated for the duration of the call (readers are pinned).
    unsafe fn take_value(node: *mut QNode<T>) -> T {
        // Safety: unique consumption per the caller contract.
        unsafe { ptr::read(&(*node).value).assume_init() }
    }

    /// Frees a node that still owns its payload (teardown path only).
    ///
    /// # Safety
    ///
    /// `node` must be a unique, live node whose value is initialized
    /// and has *not* been taken, with no concurrent accessors.
    unsafe fn drop_with_value(node: *mut QNode<T>) {
        // Safety: per contract we own the node and its payload.
        let boxed = unsafe { Box::from_raw(node) };
        // Safety: the value is initialized per contract.
        unsafe { boxed.value.assume_init() };
        // The payload drops here; the box freed the allocation.
    }
}

/// A bulk-dequeue announcement: `dequeue_many` announces one of these
/// (cast to the node type — the engine never dereferences announcement
/// pointers, only the family hooks do, and they branch on the
/// aggregator index first) instead of `want` separate dequeues.
///
/// The pointers reference the announcing thread's frame, which blocks
/// until the batch is `applied`, so they are live for the combiner's
/// whole walk; the combiner's plain writes to `out`/`taken` are
/// published by the engine's Release store of `applied`.
struct DequeueManyReq<T> {
    /// How many values this request asks for.
    want: usize,
    /// Spare capacity in the caller's buffer; the combiner writes
    /// `taken` initialized values starting here.
    out: *mut T,
    /// How many values the combiner delivered (≤ `want`; short when
    /// the queue ran dry).
    taken: usize,
}

/// Walks a published enqueue chain from its announced first node to
/// its null-terminated last. A plain enqueue is a one-node chain
/// (nodes allocate with a null `next`), so the tail combiner handles
/// both without distinguishing them.
///
/// # Safety
///
/// `first` must be a published announcement node; the chain's links
/// were written by the announcing thread before the Release
/// publication the caller's Acquire slot load paired with.
unsafe fn chain_last<T>(first: *mut QNode<T>) -> *mut QNode<T> {
    let mut cur = first;
    loop {
        // Safety: per the function contract, every link reached from
        // `first` is a live published node.
        let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
        if next.is_null() {
            return cur;
        }
        cur = next;
    }
}

/// The queue's apply logic: the MS-style list (head/tail), the two
/// single-CAS combiners, and the empty-queue rendezvous window.
struct QueueOp<T: Send + 'static> {
    /// Points at the dummy; the queue's front value is `head.next`.
    head: CachePadded<AtomicPtr<QNode<T>>>,
    /// Points at the last spliced node (== the dummy when empty).
    tail: CachePadded<AtomicPtr<QNode<T>>>,
    /// Spin budget of the empty-queue rendezvous window.
    rendezvous_spins: u32,
    /// Dequeue batches that observed the queue empty and then received
    /// an enqueue batch through the rendezvous window (the queue's
    /// elimination counter).
    rendezvous_hits: AtomicU64,
    /// Redo log + intent cells when built durable (DESIGN.md §16);
    /// when set, every mutating op routes through the dedicated
    /// durable aggregators at `bulk_agg(DUR_BASE..)`.
    durable: Option<DurableCore>,
}

impl<T: Send + 'static> QueueOp<T> {
    /// The bulk-dequeue combiner: tally the batch's total demand, take
    /// that many nodes from `head` with one CAS, then deal the block
    /// out to the requests in announcement order — a `dequeue_many(n)`
    /// therefore receives `n` consecutive queue fronts (FIFO, as if by
    /// `n` sequential dequeues).
    ///
    /// Differences from the mapped head combiner: no rendezvous window
    /// (a bulk dequeue on an empty queue reports 0 at once — the
    /// window's purpose is pairing *single* hand-offs, and holding it
    /// per request would stall whole blocks), and the combiner
    /// distributes values itself instead of publishing a chain —
    /// there is one waiter per *request*, not per value.
    fn combine_dequeue_many(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<QNode<T>>,
        my_seq: usize,
        guard: &Guard<'_, '_>,
    ) {
        let cut = batch.frozen_cut(Role::Remove);
        let wait = eng.config().wait;
        let mut total = 0usize;
        for slot in &batch.slots[my_seq..cut] {
            let req = wait_ptr(slot, wait) as *mut DequeueManyReq<T>;
            // Safety: the request outlives the batch (announcer blocks
            // on `applied`); the combiner is its unique accessor.
            total += unsafe { (*req).want };
        }

        // MS-validated traversal + single CAS on `head`, exactly the
        // shape of the mapped combiner's unlink. Races with the other
        // head combiners (mapped and successive bulk batches), hence
        // the retry loop.
        let mut cas_backoff = Backoff::new();
        let (first, taken) = loop {
            let h = self.head.load(Ordering::Acquire);
            let mut cur = h;
            let mut first = ptr::null_mut();
            let mut taken = 0usize;
            while taken < total {
                let nxt = unsafe { (*cur).next.load(Ordering::Acquire) };
                if nxt.is_null() {
                    if ptr::eq(self.tail.load(Ordering::Acquire), cur) {
                        break; // validated: the queue ends at `cur`
                    }
                    // Swing done, link in flight: wait for it.
                    spin_wait(wait, || {
                        !unsafe { (*cur).next.load(Ordering::Acquire) }.is_null()
                    });
                    continue;
                }
                if taken == 0 {
                    first = nxt;
                }
                cur = nxt;
                taken += 1;
            }
            if taken == 0 {
                break (ptr::null_mut(), 0);
            }
            if self
                .head
                .compare_exchange(h, cur, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Safety: the CAS made us the unique retirer of the
                // outgoing dummy; its value (if any) was consumed when
                // it became the dummy.
                unsafe { guard.retire_recycle(h) };
                break (first, taken);
            }
            eng.stats().record_cas_failure();
            cas_backoff.spin();
        };

        // Deal the block out in slot order. The chain's last node is
        // the live dummy — its value is consumed here but its husk
        // stays linked (a later head combiner retires it), and its
        // `next` keeps evolving, so the walk never reads past
        // `taken - 1` links. A drained queue leaves later requests
        // (and the tail of a partly-served one) at `taken < want`.
        let mut cur = first;
        let mut idx = 0usize;
        for slot in &batch.slots[my_seq..cut] {
            let req = slot.load(Ordering::Acquire) as *mut DequeueManyReq<T>;
            let want = unsafe { (*req).want };
            let out = unsafe { (*req).out };
            let mut got = 0usize;
            while got < want && idx < taken {
                let nxt = if idx + 1 < taken {
                    unsafe { (*cur).next.load(Ordering::Acquire) }
                } else {
                    ptr::null_mut()
                };
                // Safety: each taken node's value has exactly one
                // consumer (this walk visits each node once); the
                // destination is uninitialized spare capacity —
                // `write`, not assignment.
                unsafe { out.add(got).write(QNode::take_value(cur)) };
                if idx + 1 < taken {
                    // Safety: fully unlinked non-dummy node, payload
                    // out; the husk recycles.
                    unsafe { guard.retire_recycle(cur) };
                }
                cur = nxt;
                got += 1;
                idx += 1;
            }
            unsafe { (*req).taken = got };
        }
    }

    /// The durable combiner: applies each frozen enqueue/dequeue to
    /// the MS list and redo-logs the batch under the core's apply
    /// lock. On a durable queue *every* mutating op routes here, so
    /// the apply lock is the only `head`/`tail` writer and log order
    /// equals application order — the property replay relies on.
    fn combine_durable(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<QNode<T>>,
        my_seq: usize,
        shard: usize,
        d: &DurableCore,
        guard: &Guard<'_, '_>,
    ) {
        let cut = batch.frozen_cut(Role::Remove);
        let reqs = durable::frozen_reqs(batch, my_seq, cut, eng.config().wait);
        // Safety: every pointer was announced into this frozen batch
        // and its owner blocks until `applied`; the apply lock makes
        // this the list's unique mutator.
        unsafe {
            d.combine_batch(shard, &reqs, |req| match req.opcode {
                opcode::ENQUEUE => {
                    let value: T = durable::from_word(req.operand);
                    let n = Box::into_raw(Box::new(QNode {
                        value: MaybeUninit::new(value),
                        next: AtomicPtr::new(ptr::null_mut()),
                    }));
                    let t = self.tail.load(Ordering::Relaxed);
                    (*t).next.store(n, Ordering::Release);
                    self.tail.store(n, Ordering::Release);
                    req.set_result(OpResult::Unit);
                }
                opcode::DEQUEUE => {
                    let h = self.head.load(Ordering::Relaxed);
                    let n = (*h).next.load(Ordering::Relaxed);
                    if n.is_null() {
                        req.set_result(OpResult::Empty);
                    } else {
                        // MS discipline: `n` becomes the new dummy;
                        // its value moves out, its husk stays linked.
                        let value = QNode::take_value(n);
                        self.head.store(n, Ordering::Release);
                        guard.retire_recycle(h);
                        req.set_result(OpResult::Value(durable::to_word(value)));
                    }
                }
                other => unreachable!("queue durable opcode {other}"),
            });
        }
    }
}

impl<T: Send + 'static> CombineOp for QueueOp<T> {
    type Node = QNode<T>;
    type Value = T;

    // ------------------------------------------------------------------
    // Enqueue combining (the tail aggregator's add lane)
    // ------------------------------------------------------------------

    /// Pre-link the batch's announced nodes in sequence order and
    /// splice the chain with a single CAS on `tail`.
    fn combine_add(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<QNode<T>>,
        my_seq: usize,
        _agg_idx: usize,
        _guard: &Guard<'_, '_>,
    ) {
        let cut = batch.frozen_cut(Role::Add);
        debug_assert!(cut > my_seq);
        // Wait for each announced node (the announcer published its
        // slot right after the fetch&increment; it may just not have
        // gotten there yet — the stack's line-38 wait). An
        // `enqueue_many` publishes a whole forward chain under one
        // announcement, so each slot holds a chain — length one for
        // plain enqueues — and pre-linking joins each chain's *last*
        // node to the next slot's first.
        let first = wait_ptr(&batch.slots[my_seq], eng.config().wait);
        // Safety: published chains, links written before publication.
        let mut prev = unsafe { chain_last(first) };
        for i in my_seq + 1..cut {
            let n = wait_ptr(&batch.slots[i], eng.config().wait);
            // Relaxed suffices: the chain is published wholesale by the
            // Release store of the old tail's `next` below.
            unsafe { (*prev).next.store(n, Ordering::Relaxed) };
            prev = unsafe { chain_last(n) };
        }
        let last = prev;

        // Swing-then-link: one CAS on `tail` claims the splice point;
        // the `next` link makes the chain reachable. A traverser that
        // reaches the old tail before the link lands waits for it (the
        // gap is bounded by this store). Contention on the CAS is only
        // with other enqueue combiners — ≤ one per live tail batch.
        let mut backoff = Backoff::new();
        loop {
            let t = self.tail.load(Ordering::Acquire);
            if self
                .tail
                .compare_exchange(t, last, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Safety: `t` cannot be freed while we are pinned, and
                // only the combiner that moved `tail` off `t` writes
                // `t.next` — that is us.
                unsafe { (*t).next.store(first, Ordering::Release) };
                return;
            }
            eng.stats().record_cas_failure();
            backoff.spin();
        }
    }

    // ------------------------------------------------------------------
    // Dequeue combining (the head aggregator's remove lane)
    // ------------------------------------------------------------------

    /// Walk up to `wanted` nodes from `head`, unlink them with a single
    /// CAS on `head`, and publish the chain + count for the waiters.
    ///
    /// Emptiness is MS-validated: `cur.next == null` with `tail == cur`
    /// means the queue truly ends at `cur` at the moment of the tail
    /// read (a splice would have moved `tail` first). `cur.next ==
    /// null` with `tail != cur` is an in-flight swing-then-link gap;
    /// the link is coming, so the traversal waits for it — the same
    /// class of bounded-by-another-thread's-progress wait as every
    /// other SEC spin.
    fn combine_remove(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<QNode<T>>,
        my_seq: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) {
        // The bulk aggregator's slots hold `DequeueManyReq`s, not
        // nodes — its batches take whole blocks per request.
        if agg_idx == HEAD_BULK {
            return self.combine_dequeue_many(eng, batch, my_seq, guard);
        }
        if let Some(d) = &self.durable {
            if agg_idx >= eng.bulk_agg(DUR_BASE) {
                let shard = agg_idx - eng.bulk_agg(DUR_BASE);
                return self.combine_durable(eng, batch, my_seq, shard, d, guard);
            }
        }
        let wanted = batch.frozen_cut(Role::Remove) - my_seq;
        debug_assert!(wanted >= 1);
        let wait = eng.config().wait;
        // The rendezvous budget spans CAS retries so a contended empty
        // queue cannot pin the combiner in the window forever.
        let mut window = self.rendezvous_spins;
        let mut cas_backoff = Backoff::new();
        'retry: loop {
            // Reset per attempt: a hit is only counted when THIS
            // traversal observed empty and then took values — a lost
            // CAS after a window wait must not count the next round's
            // ordinary unlink as a rendezvous.
            let mut waited_empty = false;
            let h = self.head.load(Ordering::Acquire);
            let mut cur = h;
            let mut first = ptr::null_mut();
            let mut taken = 0usize;
            while taken < wanted {
                let nxt = unsafe { (*cur).next.load(Ordering::Acquire) };
                if nxt.is_null() {
                    if ptr::eq(self.tail.load(Ordering::Acquire), cur) {
                        // Queue ends at `cur`. Empty-only elimination:
                        // if we have taken nothing, the queue is empty
                        // — hold the rendezvous window open for a
                        // concurrent enqueue batch to splice straight
                        // into our hands.
                        if taken == 0 && window > 0 {
                            window -= 1;
                            waited_empty = true;
                            // Policy-aware pause: under the yielding
                            // and parking policies, periodically give
                            // the slice away inside the window — on an
                            // oversubscribed host that is what lets a
                            // producer actually reach its splice (the
                            // wait is anonymous, so parking proper
                            // cannot apply — no waker would know us).
                            if wait == WaitPolicy::Spin || !window.is_multiple_of(32) {
                                core::hint::spin_loop();
                            } else {
                                std::thread::yield_now();
                            }
                            continue;
                        }
                        break;
                    }
                    // Swing done, link in flight: wait for it (bounded
                    // by the enqueue combiner's next store — anonymous,
                    // so never parked).
                    spin_wait(wait, || {
                        !unsafe { (*cur).next.load(Ordering::Acquire) }.is_null()
                    });
                    continue;
                }
                if taken == 0 {
                    first = nxt;
                }
                cur = nxt;
                taken += 1;
            }

            if taken == 0 {
                // Validated empty (and the window, if any, expired):
                // every pop of the batch reports EMPTY.
                batch.result_head.store(ptr::null_mut(), Ordering::Release);
                batch.taken.store(0, Ordering::Release);
                return;
            }
            // One CAS unlinks the whole chain: `cur` becomes the new
            // dummy (its value belongs to the waiter at the last
            // offset, MS-queue style).
            if self
                .head
                .compare_exchange(h, cur, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if waited_empty {
                    self.rendezvous_hits.fetch_add(1, Ordering::Relaxed);
                }
                batch.result_head.store(first, Ordering::Release);
                batch.taken.store(taken as u64, Ordering::Release);
                // Safety: the CAS made us the unique retirer of the
                // outgoing dummy; its value (if it ever had one) was
                // consumed when it became the dummy — the husk recycles.
                unsafe { guard.retire_recycle(h) };
                return;
            }
            // Another head combiner won; re-traverse from the new head.
            eng.stats().record_cas_failure();
            cas_backoff.spin();
            continue 'retry;
        }
    }

    // `eliminate` keeps its default: the engine's cross-lane pairing
    // never fires on homogeneous batches — the queue's *empty-only*
    // elimination lives inside `combine_remove`'s rendezvous window.

    /// The dequeue at `offset` consumes the `offset`-th unlinked node,
    /// or reports EMPTY if the batch drained the queue first. The
    /// chain is *not* null-terminated (its last node is the live dummy
    /// whose `next` keeps evolving), hence the published `taken` bound.
    fn take_result(
        &self,
        eng: &CombineEngine<Self>,
        batch: &CombineBatch<QNode<T>>,
        offset: usize,
        agg_idx: usize,
        guard: &Guard<'_, '_>,
    ) -> Option<T> {
        if agg_idx == HEAD_BULK {
            // Bulk dequeues received their values through their
            // request's buffer; there is no result chain to consume.
            return None;
        }
        if self.durable.is_some() && agg_idx >= eng.bulk_agg(DUR_BASE) {
            // Durable requests carry their results in the request
            // struct. The hook is the harness's mid-publish crash
            // point (results committed, not all consumed yet).
            fault::hit(FaultPoint::MidPublish);
            return None;
        }
        let taken = batch.taken.load(Ordering::Acquire) as usize;
        if offset >= taken {
            return None;
        }
        let mut cur = batch.result_head.load(Ordering::Acquire);
        for _ in 0..offset {
            // In-chain links were all written before the splice that
            // made them reachable; they never change.
            cur = unsafe { (*cur).next.load(Ordering::Acquire) };
        }
        // Safety: each offset is claimed by exactly one dequeue of this
        // batch, so we are the node's unique value consumer; readers
        // are pinned.
        let value = unsafe { QNode::take_value(cur) };
        if offset + 1 < taken {
            // Safety: fully unlinked (the chain's non-last nodes are
            // unreachable from `head` once the combiner's CAS landed);
            // the payload is out, so the husk recycles.
            unsafe { guard.retire_recycle(cur) };
        }
        // The last taken node is the live dummy: a later dequeue
        // combiner retires it when `head` moves past it.
        Some(value)
    }
}

impl<T: Send + 'static> Drop for QueueOp<T> {
    fn drop(&mut self) {
        // Runs during engine teardown (no handles exist, everything is
        // quiescent): the list is dummy → remaining values.
        let dummy = self.head.load(Ordering::Relaxed);
        let mut cur = unsafe { (*dummy).next.load(Ordering::Relaxed) };
        // The dummy's value was consumed (or never existed): free the
        // node only.
        drop(unsafe { Box::from_raw(dummy) });
        while !cur.is_null() {
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            unsafe { QNode::drop_with_value(cur) };
            cur = next;
        }
    }
}

/// The SEC-derived FIFO queue (blocking, linearizable).
///
/// Construct with [`SecQueue::new`]; each thread obtains a
/// [`SecQueueHandle`] via [`SecQueue::register`] (or the
/// [`ConcurrentQueue`] trait) and performs `enqueue`/`dequeue` through
/// it.
///
/// # Examples
///
/// ```
/// use sec_core::queue::SecQueue;
///
/// let q: SecQueue<u32> = SecQueue::new(2);
/// let mut h = q.register();
/// h.enqueue(1);
/// h.enqueue(2);
/// assert_eq!(h.dequeue(), Some(1));
/// assert_eq!(h.dequeue(), Some(2));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct SecQueue<T: Send + 'static> {
    engine: CombineEngine<QueueOp<T>>,
}

impl<T: Send + 'static> SecQueue<T> {
    /// Creates a queue for up to `max_threads` threads.
    pub fn new(max_threads: usize) -> Self {
        Self::build(max_threads, None)
    }

    fn build(max_threads: usize, durable: Option<DurableCore>) -> Self {
        // One engine aggregator per end plus the bulk dequeue
        // aggregator; every thread may operate on either end, so all
        // batch layers admit all of them (the k = 1 configuration pins
        // the per-aggregator capacity at max_threads). Head batches
        // carry no slots — single dequeuers bring no nodes; the bulk
        // aggregator's slots carry requests. Bulk *enqueues* need no
        // aggregator of their own: they announce chains on TAIL, whose
        // combiner is chain-aware. Durable shards (if any) follow as
        // the bulk suffix.
        let shards = durable.as_ref().map_or(0, |d| d.shards());
        let dummy = QNode::alloc_dummy();
        Self {
            engine: CombineEngine::new(
                "SecQueue",
                QueueOp {
                    head: CachePadded::new(AtomicPtr::new(dummy)),
                    tail: CachePadded::new(AtomicPtr::new(dummy)),
                    rendezvous_spins: DEFAULT_RENDEZVOUS_SPINS,
                    rendezvous_hits: AtomicU64::new(0),
                    durable,
                },
                SecConfig::new(1, max_threads),
                AggLayout::Fixed {
                    ends: &[false, true, true],
                    bulk: shards,
                },
            ),
        }
    }

    /// Sets the empty-queue rendezvous window in spin iterations
    /// (builder style). `0` disables empty-only elimination entirely:
    /// a dequeue batch that validates emptiness reports EMPTY at once.
    pub fn rendezvous_spins(mut self, spins: u32) -> Self {
        self.engine.op_mut().rendezvous_spins = spins;
        self
    }

    /// Sets the node-recycling policy (builder style; the default is
    /// [`RecyclePolicy::per_thread`]). Must be applied before any
    /// thread registers, which the consuming receiver guarantees.
    pub fn recycle_policy(mut self, recycle: RecyclePolicy) -> Self {
        self.engine.set_recycle_policy(recycle);
        self
    }

    /// Sets the blocking-wait policy (builder style; the default is
    /// [`WaitPolicy::spin_then_park`] — DESIGN.md §11). Governs both
    /// ends' combiner waits and batch-pointer swaps, and whether the
    /// empty-queue rendezvous window yields inside its budget.
    pub fn wait_policy(mut self, wait: WaitPolicy) -> Self {
        self.engine.config_mut().wait = wait;
        self
    }

    /// Sets the freezer's aggregation backoff in `yield_now` calls
    /// (builder style) — the queue twin of
    /// [`SecConfig::freezer_yields`]. Widening the window lets more
    /// announcers join each batch before it freezes, which matters
    /// most when threads outnumber cores (see the `freezer_backoff`
    /// ablation). Apply before any thread registers.
    pub fn freezer_yields(mut self, yields: u32) -> Self {
        self.engine.config_mut().freezer_yields = yields;
        self
    }

    /// Sets the sec-trace configuration (builder style; DESIGN.md
    /// §14). Rebuilds the recorder when the crate was built with the
    /// `trace` cargo feature; inert otherwise. Apply before any thread
    /// registers, which the consuming receiver guarantees.
    pub fn trace_config(mut self, trace: crate::TraceConfig) -> Self {
        self.engine.set_trace_config(trace);
        self
    }

    /// Registers the calling thread.
    ///
    /// # Panics
    ///
    /// If more threads register than the queue was constructed for.
    pub fn register(&self) -> SecQueueHandle<'_, T> {
        let (reclaim, state) = self.engine.register();
        let tid = state.tid();
        let dur_seq = self
            .engine
            .op()
            .durable
            .as_ref()
            .map_or(1, |d| d.start_seq(tid));
        SecQueueHandle {
            queue: self,
            reclaim,
            tid,
            dur_seq,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &SecConfig {
        self.engine.config()
    }

    /// Batching instrumentation: tail batches record as pushes, head
    /// batches as pops, so `batching_degree` reports the combined
    /// splice/unlink amortization. The stack's elimination share is
    /// structurally zero here — see [`SecQueue::rendezvous_hits`] for
    /// the queue's own pairing counter.
    pub fn stats(&self) -> &SecStats {
        self.engine.stats()
    }

    /// Number of dequeue batches that validated the queue empty and
    /// then consumed an enqueue batch through the rendezvous window —
    /// the queue's "empty-only elimination" events.
    pub fn rendezvous_hits(&self) -> u64 {
        self.engine.op().rendezvous_hits.load(Ordering::Relaxed)
    }

    /// Reclamation statistics (diagnostic). The recycle hit/miss/
    /// overflow counters are exact once every handle has dropped.
    pub fn reclaim_stats(&self) -> sec_reclaim::CollectorStats {
        self.engine.reclaim_stats()
    }

    /// Drives reclamation to completion (up to `rounds` epoch
    /// advances); see [`SecStack::quiesce_reclamation`].
    ///
    /// [`SecStack::quiesce_reclamation`]: crate::SecStack::quiesce_reclamation
    pub fn quiesce_reclamation(&self, rounds: usize) -> sec_reclaim::CollectorStats {
        self.engine.quiesce_reclamation(rounds)
    }

    /// A point-in-time poll of the queue's protocol counters (see
    /// [`SecStack::trace_snapshot`](crate::SecStack::trace_snapshot)).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.engine.trace_snapshot()
    }

    /// The sec-trace recorder: `Some` only when configured via
    /// [`SecQueue::trace_config`] under the `trace` cargo feature.
    pub fn tracer(&self) -> Option<&crate::TraceRecorder> {
        self.engine.tracer()
    }
}

impl SecQueue<u64> {
    /// Creates a crash-durable queue over `policy`'s persistent heap:
    /// every enqueue/dequeue writes an intent cell before announcing
    /// and is redo-logged (with its result) by its batch's combiner
    /// before the result is published (DESIGN.md §16). Durable
    /// structures carry `u64` payloads.
    pub fn durable(max_threads: usize, policy: DurablePolicy) -> Result<Self, DurableError> {
        let core = DurableCore::create(&policy, Family::Queue, 0, max_threads)?;
        Ok(Self::build(max_threads, Some(core)))
    }

    /// Recovers a durable queue from `policy.mode`'s existing heap:
    /// replays the committed redo log in global order (verifying each
    /// logged result against the replay) and reports, per handle,
    /// whether its last announced op executed and with what result.
    pub fn recover(policy: DurablePolicy) -> Result<(Self, RecoveryReport), DurableError> {
        let (core, report) = DurableCore::open(&policy, Family::Queue)?;
        let queue = Self::build(core.max_handles(), Some(core));
        let op = queue.engine.op();
        for logged in &report.ops {
            match logged.opcode {
                opcode::ENQUEUE => {
                    if logged.result != OpResult::Unit {
                        return Err(DurableError::Corrupt(format!(
                            "enqueue logged a non-unit result {:?}",
                            logged.result
                        )));
                    }
                    // Replay is single-threaded: plain link-then-swing.
                    let n = Box::into_raw(Box::new(QNode {
                        value: MaybeUninit::new(logged.operand),
                        next: AtomicPtr::new(ptr::null_mut()),
                    }));
                    let t = op.tail.load(Ordering::Relaxed);
                    // Safety: `t` is the replay list's live tail.
                    unsafe { (*t).next.store(n, Ordering::Relaxed) };
                    op.tail.store(n, Ordering::Relaxed);
                }
                opcode::DEQUEUE => {
                    let h = op.head.load(Ordering::Relaxed);
                    // Safety: `h` is the replay list's live dummy.
                    let n = unsafe { (*h).next.load(Ordering::Relaxed) };
                    let replayed = if n.is_null() {
                        OpResult::Empty
                    } else {
                        // Safety: single-threaded replay; `n` becomes
                        // the dummy, the old dummy's husk (value
                        // already out or never present) frees here.
                        let v = unsafe { QNode::take_value(n) };
                        op.head.store(n, Ordering::Relaxed);
                        drop(unsafe { Box::from_raw(h) });
                        OpResult::Value(v)
                    };
                    if replayed != logged.result {
                        return Err(DurableError::Corrupt(format!(
                            "replay diverged: logged {:?}, replayed {:?}",
                            logged.result, replayed
                        )));
                    }
                }
                other => {
                    return Err(DurableError::Corrupt(format!(
                        "queue log holds foreign opcode {other}"
                    )))
                }
            }
        }
        Ok((queue, report))
    }

    /// The persistent heap backing this queue (durable queues only) —
    /// hold it across a drop to recover a Volatile-mode heap.
    pub fn durable_heap(&self) -> Option<std::sync::Arc<sec_reclaim::PersistentHeap>> {
        self.engine.op().durable.as_ref().map(|d| d.heap())
    }

    /// Redo-log counters (durable queues only).
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.engine.op().durable.as_ref().map(|d| d.stats())
    }
}

impl<T: Send + 'static> fmt::Debug for SecQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecQueue")
            .field("max_threads", &self.engine.config().max_threads)
            .field("rendezvous_spins", &self.engine.op().rendezvous_spins)
            .finish()
    }
}

impl<T: Send + 'static> ConcurrentQueue<T> for SecQueue<T> {
    type Handle<'a>
        = SecQueueHandle<'a, T>
    where
        Self: 'a;

    fn register(&self) -> SecQueueHandle<'_, T> {
        SecQueue::register(self)
    }

    fn name(&self) -> &'static str {
        "SEC-Q"
    }
}

/// A thread's handle to a [`SecQueue`].
pub struct SecQueueHandle<'a, T: Send + 'static> {
    queue: &'a SecQueue<T>,
    reclaim: ReclaimHandle<'a>,
    /// This thread's dense id (the durable intent-cell index).
    tid: usize,
    /// Next per-handle durable op sequence number (1-based; resumes
    /// from the recovered log on durable queues, unused otherwise).
    dur_seq: u64,
}

impl<T: Send + 'static> SecQueueHandle<'_, T> {
    /// A point-in-time poll of the queue's protocol counters (see
    /// [`SecQueue::trace_snapshot`]).
    pub fn trace_snapshot(&self) -> crate::TraceSnapshot {
        self.queue.trace_snapshot()
    }

    /// Appends `value` at the tail. Returns when the enqueue is
    /// linearized (its batch's splice CAS has landed).
    pub fn enqueue(&mut self, value: T) {
        if self.queue.engine.op().durable.is_some() {
            let w = durable::to_word(value);
            self.durable_op(opcode::ENQUEUE, w);
            return;
        }
        // One node per enqueue, reused across batch retries — popped
        // off this thread's recycle cache before touching the heap.
        let node = QNode::alloc_with(&self.reclaim, value);
        self.queue
            .engine
            .run(Lane::At(TAIL), Role::Add, node, &self.reclaim);
    }

    /// Removes the queue's oldest value, or `None` when the queue is
    /// (linearizably) empty. A dequeue's offset within its batch's
    /// taken chain is its sequence number: the batch's dequeues drain
    /// in announcement order, which is what makes the block FIFO.
    pub fn dequeue(&mut self) -> Option<T> {
        if self.queue.engine.op().durable.is_some() {
            return match self.durable_op(opcode::DEQUEUE, 0) {
                OpResult::Empty => None,
                OpResult::Value(w) => Some(durable::from_word(w)),
                OpResult::Unit => unreachable!("dequeue produced a unit result"),
            };
        }
        self.queue
            .engine
            .run(Lane::At(HEAD), Role::Remove, ptr::null_mut(), &self.reclaim)
    }

    /// The durable op path: persist the intent, announce a request on
    /// this thread's durable shard, read the logged result back out of
    /// the request after publish.
    fn durable_op(&mut self, op: u8, operand: u64) -> OpResult {
        let eng = &self.queue.engine;
        let d = eng.op().durable.as_ref().expect("durable route");
        let seq = self.dur_seq;
        d.write_intent(self.tid, seq, op, operand, 0);
        let mut req = DurableReq::new(self.tid, seq, op, operand, 0);
        let node = (&mut req as *mut DurableReq).cast::<QNode<T>>();
        let shard = d.shard_of(self.tid);
        eng.run_weighted(
            Lane::At(eng.bulk_agg(DUR_BASE + shard)),
            Role::Remove,
            node,
            1,
            &self.reclaim,
        );
        self.dur_seq = seq + 1;
        req.take_result()
    }

    /// Bulk enqueue: appends every value of `values`, in slice order,
    /// as one announcement (per `MAX_BULK_OPS`-sized chunk) on the
    /// tail aggregator — the chain is pre-linked by the caller, so the
    /// whole slice costs one slot of the batch and one share of the
    /// splice CAS. The enqueues linearize consecutively at the splice:
    /// afterwards the values sit in the queue back-to-back, in slice
    /// order, with no foreign value interleaved.
    ///
    pub fn enqueue_many(&mut self, values: &[T])
    where
        T: Clone,
    {
        if self.queue.engine.op().durable.is_some() {
            // Durable queues make every enqueue an individually
            // detectable logged op.
            for v in values {
                self.enqueue(v.clone());
            }
            return;
        }
        for chunk in values.chunks(crate::combine::MAX_BULK_OPS) {
            // Build the forward chain the tail combiner expects: the
            // announced node is the chunk's *first* value (FIFO), the
            // last value's node keeps its null `next`.
            let mut head: *mut QNode<T> = ptr::null_mut();
            let mut tail: *mut QNode<T> = ptr::null_mut();
            for v in chunk {
                let n = QNode::alloc_with(&self.reclaim, v.clone());
                if head.is_null() {
                    head = n;
                } else {
                    // Relaxed: published wholesale by the announce
                    // (slot Release store) and again by the splice.
                    unsafe { (*tail).next.store(n, Ordering::Relaxed) };
                }
                tail = n;
            }
            self.queue.engine.run_weighted(
                Lane::At(TAIL),
                Role::Add,
                head,
                chunk.len() as u32,
                &self.reclaim,
            );
        }
    }

    /// Bulk dequeue: removes up to `max` values into `out` (appended
    /// in queue order — oldest first), returning how many were taken.
    /// One announcement per `MAX_BULK_OPS`-sized chunk covers the
    /// whole request; the dequeues linearize consecutively at the bulk
    /// combiner's unlink CAS, so a `dequeue_many(n)` receives `n`
    /// consecutive queue fronts. Returns short (possibly 0) when the
    /// queue runs dry.
    ///
    pub fn dequeue_many(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if self.queue.engine.op().durable.is_some() {
            // Durable queues make every dequeue an individually
            // detectable logged op.
            let mut total = 0usize;
            while total < max {
                match self.dequeue() {
                    Some(v) => {
                        out.push(v);
                        total += 1;
                    }
                    None => break,
                }
            }
            return total;
        }
        let mut total = 0usize;
        while total < max {
            let want = (max - total).min(crate::combine::MAX_BULK_OPS);
            out.reserve(want);
            let mut req = DequeueManyReq {
                want,
                // Safety: `reserve` guaranteed `want` spare slots past
                // the initialized prefix.
                out: unsafe { out.as_mut_ptr().add(out.len()) },
                taken: 0,
            };
            // Type erasure as in the stack's bulk pop: the engine
            // treats announcement pointers as opaque, and the bulk
            // aggregator's combiner knows its slots hold requests.
            let node = (&mut req as *mut DequeueManyReq<T>).cast::<QNode<T>>();
            self.queue.engine.run_weighted(
                Lane::At(HEAD_BULK),
                Role::Remove,
                node,
                want as u32,
                &self.reclaim,
            );
            // Safety: the combiner initialized exactly `taken` values
            // at the spare-capacity cursor before `applied` was
            // published.
            unsafe { out.set_len(out.len() + req.taken) };
            total += req.taken;
            if req.taken < want {
                break; // drained
            }
        }
        total
    }
}

impl<T: Send + 'static> QueueHandle<T> for SecQueueHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        SecQueueHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        SecQueueHandle::dequeue(self)
    }
}

impl<T: Send + 'static> fmt::Debug for SecQueueHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecQueueHandle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashSet, VecDeque};
    use std::thread;

    #[test]
    fn sequential_fifo() {
        let q: SecQueue<u32> = SecQueue::new(1);
        let mut h = q.register();
        for i in 0..50 {
            h.enqueue(i);
        }
        for i in 0..50 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn empty_queue_dequeues_none() {
        let q: SecQueue<u32> = SecQueue::new(2);
        let mut h = q.register();
        for _ in 0..100 {
            assert_eq!(h.dequeue(), None);
        }
        h.enqueue(1);
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn interleaved_matches_vecdeque_model() {
        let q: SecQueue<u64> = SecQueue::new(1);
        let mut h = q.register();
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut x = 0x9E37_79B9_u64 | 1;
        for i in 0..3_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 3 < 2 {
                h.enqueue(i);
                model.push_back(i);
            } else {
                assert_eq!(h.dequeue(), model.pop_front(), "op {i}");
            }
        }
        while let Some(expect) = model.pop_front() {
            assert_eq!(h.dequeue(), Some(expect));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO implies each producer's values are dequeued in its own
        // enqueue order, regardless of interleaving.
        const PRODUCERS: usize = 4;
        const PER: u64 = 2_000;
        let q: SecQueue<u64> = SecQueue::new(PRODUCERS + 1);
        let got: Vec<u64> = thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let q = &q;
                scope.spawn(move || {
                    let mut h = q.register();
                    for i in 0..PER {
                        h.enqueue(((p as u64) << 32) | i);
                    }
                });
            }
            let q = &q;
            scope
                .spawn(move || {
                    let mut h = q.register();
                    let mut got = Vec::new();
                    while got.len() < (PRODUCERS as u64 * PER) as usize {
                        if let Some(v) = h.dequeue() {
                            got.push(v);
                        }
                    }
                    got
                })
                .join()
                .unwrap()
        });
        let mut last = [None::<u64>; PRODUCERS];
        for v in got {
            let p = (v >> 32) as usize;
            let i = v & 0xFFFF_FFFF;
            if let Some(prev) = last[p] {
                assert!(i > prev, "producer {p}: {i} after {prev}");
            }
            last[p] = Some(i);
        }
        for (p, l) in last.iter().enumerate() {
            assert_eq!(*l, Some(PER - 1), "producer {p} fully consumed");
        }
    }

    #[test]
    fn concurrent_conservation_mixed() {
        const THREADS: usize = 8;
        const PER: usize = 1_500;
        let q: SecQueue<u64> = SecQueue::new(THREADS + 1);
        let got: Vec<Vec<u64>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|t| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut h = q.register();
                        let mut got = Vec::new();
                        for i in 0..PER {
                            h.enqueue((t * PER + i) as u64);
                            if i % 3 != 0 {
                                if let Some(v) = h.dequeue() {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        let mut seen: HashSet<u64> = HashSet::new();
        for v in got.into_iter().flatten() {
            assert!(seen.insert(v), "duplicate {v}");
        }
        let mut h = q.register();
        while let Some(v) = h.dequeue() {
            assert!(seen.insert(v), "duplicate {v} in drain");
        }
        assert_eq!(seen.len(), THREADS * PER, "values lost");
    }

    #[test]
    fn values_drop_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
        use std::sync::Arc;
        struct P(Arc<AtomicUsize>);
        impl Drop for P {
            fn drop(&mut self) {
                self.0.fetch_add(1, AOrd::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q: SecQueue<P> = SecQueue::new(4);
            thread::scope(|scope| {
                for t in 0..4usize {
                    let q = &q;
                    let drops = &drops;
                    scope.spawn(move || {
                        let mut h = q.register();
                        for i in 0..500usize {
                            if (t + i) % 3 < 2 {
                                h.enqueue(P(Arc::clone(drops)));
                            } else {
                                drop(h.dequeue());
                            }
                        }
                    });
                }
            });
        }
        let enqueued: usize = (0..4)
            .map(|t| (0..500).filter(|i| (t + i) % 3 < 2).count())
            .sum();
        assert_eq!(drops.load(AOrd::Relaxed), enqueued);
    }

    #[test]
    fn oversubscribed_progress() {
        const THREADS: usize = 12;
        let q: SecQueue<u64> = SecQueue::new(THREADS);
        thread::scope(|scope| {
            for t in 0..THREADS {
                let q = &q;
                scope.spawn(move || {
                    let mut h = q.register();
                    let mut x = (t as u64) | 1;
                    for i in 0..400u64 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if x.is_multiple_of(2) {
                            h.enqueue(i);
                        } else {
                            let _ = h.dequeue();
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn stats_record_both_ends() {
        let q: SecQueue<u64> = SecQueue::new(2);
        let mut h = q.register();
        for i in 0..100 {
            h.enqueue(i);
        }
        for _ in 0..100 {
            let _ = h.dequeue();
        }
        let r = q.stats().report();
        assert!(r.batches >= 2, "both ends froze batches: {r:?}");
        assert_eq!(r.ops, 200);
        assert_eq!(r.eliminated, 0, "queue batches are homogeneous");
        assert_eq!(r.combined, r.ops);
    }

    #[test]
    fn rendezvous_window_can_be_disabled() {
        let q: SecQueue<u64> = SecQueue::new(1).rendezvous_spins(0);
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);
        h.enqueue(9);
        assert_eq!(h.dequeue(), Some(9));
        assert_eq!(q.rendezvous_hits(), 0);
    }

    #[test]
    fn empty_rendezvous_pairs_concurrent_batches() {
        // Producer/consumer ping-pong on an empty queue: consumers that
        // validate emptiness while a producer splices should sometimes
        // pick the batch up inside the window. The hit counter is
        // best-effort (scheduling-dependent), so only the mechanics —
        // conservation and termination — are asserted; the counter just
        // has to stay coherent.
        const ROUNDS: usize = 2_000;
        let q: SecQueue<u64> = SecQueue::new(3);
        let consumed: u64 = thread::scope(|scope| {
            let q1 = &q;
            scope.spawn(move || {
                let mut h = q1.register();
                for i in 0..ROUNDS as u64 {
                    h.enqueue(i);
                }
            });
            let q2 = &q;
            scope
                .spawn(move || {
                    let mut h = q2.register();
                    let mut n = 0u64;
                    while n < ROUNDS as u64 {
                        if h.dequeue().is_some() {
                            n += 1;
                        }
                    }
                    n
                })
                .join()
                .unwrap()
        });
        assert_eq!(consumed, ROUNDS as u64);
        assert!(q.rendezvous_hits() <= q.stats().report().batches);
    }

    #[test]
    fn enqueue_many_dequeue_many_sequential_fifo() {
        let q: SecQueue<u64> = SecQueue::new(1);
        let mut h = q.register();
        h.enqueue_many(&[1, 2, 3, 4, 5]);
        let mut out = Vec::new();
        assert_eq!(h.dequeue_many(&mut out, 3), 3);
        assert_eq!(out, vec![1, 2, 3]);
        // Short return on a drained queue.
        assert_eq!(h.dequeue_many(&mut out, 10), 2);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(h.dequeue_many(&mut out, 4), 0);
        assert_eq!(h.dequeue(), None);
        // Bulk and single operations interleave on the same list.
        h.enqueue_many(&[6, 7]);
        h.enqueue(8);
        assert_eq!(h.dequeue(), Some(6));
        let mut rest = Vec::new();
        assert_eq!(h.dequeue_many(&mut rest, 8), 2);
        assert_eq!(rest, vec![7, 8]);
        h.enqueue_many(&[]);
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn bulk_ops_are_counted_in_ops_not_announcements() {
        const CALLS: u64 = 50;
        const LEN: usize = 8;
        let q: SecQueue<u64> = SecQueue::new(1);
        let mut h = q.register();
        let mut out = Vec::new();
        for _ in 0..CALLS {
            h.enqueue_many(&[7; LEN]);
            assert_eq!(h.dequeue_many(&mut out, LEN), LEN);
            out.clear();
        }
        let r = q.stats().report();
        assert_eq!(r.ops, 2 * CALLS * LEN as u64, "the freezer counts ops");
        assert_eq!(r.batches, 2 * CALLS, "one announcement (batch) per call");
    }

    #[test]
    fn bulk_blocks_stay_contiguous_under_concurrency() {
        // Each enqueue_many linearizes as one splice, so a producer's
        // block sits in the queue back-to-back: the consumer must see
        // each block's values consecutively, with no foreign value in
        // between.
        const PRODUCERS: usize = 3;
        const BLOCKS: usize = 80;
        const LEN: usize = 7;
        let q: SecQueue<u64> = SecQueue::new(PRODUCERS + 1);
        let got: Vec<u64> = thread::scope(|scope| {
            for p in 0..PRODUCERS as u64 {
                let q = &q;
                scope.spawn(move || {
                    let mut h = q.register();
                    for b in 0..BLOCKS as u64 {
                        let base = (p << 32) | (b * LEN as u64);
                        let vals: Vec<u64> = (0..LEN as u64).map(|i| base + i).collect();
                        h.enqueue_many(&vals);
                    }
                });
            }
            let q = &q;
            scope
                .spawn(move || {
                    let mut h = q.register();
                    let mut got = Vec::new();
                    let total = PRODUCERS * BLOCKS * LEN;
                    while got.len() < total {
                        h.dequeue_many(&mut got, 16);
                    }
                    got
                })
                .join()
                .unwrap()
        });
        assert_eq!(got.len(), PRODUCERS * BLOCKS * LEN);
        // Walk the consumed sequence block by block: every run of LEN
        // values starting at a block base must be that block, intact.
        let mut i = 0;
        while i < got.len() {
            let base = got[i];
            // The low half is the in-producer index; block starts are
            // multiples of LEN.
            assert_eq!(
                (base & 0xFFFF_FFFF) % LEN as u64,
                0,
                "block-aligned at {i}: {base}"
            );
            for j in 0..LEN as u64 {
                assert_eq!(got[i + j as usize], base + j, "block torn at {i}");
            }
            i += LEN;
        }
    }

    #[test]
    fn durable_queue_recovery_preserves_fifo_sequence() {
        use crate::DurablePolicy;
        let q = SecQueue::<u64>::durable(1, DurablePolicy::volatile()).unwrap();
        {
            let mut h = q.register();
            for v in [10u64, 20, 30, 40] {
                h.enqueue(v);
            }
            assert_eq!(h.dequeue(), Some(10));
        }
        let heap = q.durable_heap().unwrap();
        drop(q);
        let (r, report) = SecQueue::<u64>::recover(DurablePolicy::heap(heap)).unwrap();
        assert_eq!(report.replayed_ops(), 5);
        let mut h = r.register();
        assert_eq!(h.dequeue(), Some(20));
        assert_eq!(h.dequeue(), Some(30));
        assert_eq!(h.dequeue(), Some(40));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn durable_queue_recovers_contents_under_contention() {
        use crate::{DurablePolicy, PendingOutcome};
        const THREADS: usize = 4;
        const PER: usize = 120;
        let q = SecQueue::<u64>::durable(THREADS, DurablePolicy::volatile().shards(2)).unwrap();
        thread::scope(|scope| {
            for t in 0..THREADS {
                let q = &q;
                scope.spawn(move || {
                    let mut h = q.register();
                    for i in 0..PER {
                        let v = (t * PER + i) as u64;
                        if i % 3 == 2 {
                            h.dequeue();
                        } else {
                            h.enqueue(v);
                        }
                    }
                });
            }
        });
        // Drain the live structure into a sorted multiset, then put
        // the values back (the drain itself was logged).
        let mut live: Vec<u64> = Vec::new();
        {
            let mut h = q.register();
            while let Some(v) = h.dequeue() {
                live.push(v);
            }
            for &v in &live {
                h.enqueue(v);
            }
        }
        live.sort_unstable();
        let heap = q.durable_heap().unwrap();
        drop(q);
        let (r, report) = SecQueue::<u64>::recover(DurablePolicy::heap(heap)).unwrap();
        for h in &report.handles[..THREADS] {
            assert!(matches!(
                h.pending,
                PendingOutcome::Executed { .. } | PendingOutcome::None
            ));
        }
        let mut rec: Vec<u64> = Vec::new();
        let mut h = r.register();
        while let Some(v) = h.dequeue() {
            rec.push(v);
        }
        rec.sort_unstable();
        assert_eq!(rec, live);
    }

    #[test]
    fn durable_queue_bulk_ops_route_through_the_log() {
        use crate::DurablePolicy;
        let q = SecQueue::<u64>::durable(2, DurablePolicy::volatile()).unwrap();
        {
            let mut h = q.register();
            h.enqueue_many(&[1, 2, 3, 4, 5]);
            let mut out = Vec::new();
            assert_eq!(h.dequeue_many(&mut out, 2), 2);
            assert_eq!(out, vec![1, 2]);
        }
        assert_eq!(q.durable_stats().unwrap().entries, 7);
        let heap = q.durable_heap().unwrap();
        drop(q);
        let (r, _) = SecQueue::<u64>::recover(DurablePolicy::heap(heap)).unwrap();
        let mut h = r.register();
        assert_eq!(h.dequeue(), Some(3));
    }
}
