//! Paper-style table and CSV output for the figure binaries.
//!
//! Each figure in the paper is a set of *series* (one per algorithm)
//! over a common x-axis (thread counts). [`Figure`] collects the points
//! and renders either an aligned text table (the "same rows/series the
//! paper reports") or CSV for external plotting.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One figure's data: an x-axis plus named series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure title (e.g. "Fig 2, Emerald-style, 100% updates").
    pub title: String,
    /// X-axis label (always "#threads" in the paper).
    pub x_label: String,
    /// X-axis values.
    pub xs: Vec<usize>,
    /// `(series name, y values aligned with xs)`.
    pub series: Vec<(String, Vec<f64>)>,
    /// Extra per-x columns carried alongside the plotted series —
    /// counters in a different unit (e.g. the elastic-sharding
    /// `grows`/`shrinks` resize totals). Emitted by
    /// [`render_csv`](Self::render_csv) after the main series and
    /// listed as a footnote block by [`render_table`](Self::render_table),
    /// but never plotted (their scale is unrelated to the y-axis).
    pub extras: Vec<(String, Vec<f64>)>,
    /// Y-axis unit for display.
    pub y_unit: String,
}

impl Figure {
    /// Creates an empty figure over the given thread counts.
    pub fn new(title: impl Into<String>, xs: Vec<usize>) -> Self {
        Self {
            title: title.into(),
            x_label: "#threads".into(),
            xs,
            series: Vec::new(),
            extras: Vec::new(),
            y_unit: "Mops/s".into(),
        }
    }

    /// Sets the y-axis unit label (builder style). The default is
    /// `"Mops/s"`, which fits every throughput figure; ablations that
    /// plot degrees or percentages should relabel.
    pub fn y_unit(mut self, unit: impl Into<String>) -> Self {
        self.y_unit = unit.into();
        self
    }

    /// Appends a series; `ys.len()` must equal `self.xs.len()`.
    pub fn add_series(&mut self, name: impl Into<String>, ys: Vec<f64>) {
        assert_eq!(
            ys.len(),
            self.xs.len(),
            "series length must match the x-axis"
        );
        self.series.push((name.into(), ys));
    }

    /// Appends an extra (non-plotted) per-x column — e.g. the
    /// `SEC_Ada1to5_grows` resize counter; `ys.len()` must equal
    /// `self.xs.len()`.
    pub fn add_extra(&mut self, name: impl Into<String>, ys: Vec<f64>) {
        assert_eq!(
            ys.len(),
            self.xs.len(),
            "extra column length must match the x-axis"
        );
        self.extras.push((name.into(), ys));
    }

    /// Renders the aligned text table the binaries print.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} ({})", self.title, self.y_unit);
        // Header.
        let _ = write!(out, "{:>10}", self.x_label);
        for (name, _) in &self.series {
            let _ = write!(out, " {name:>10}");
        }
        let _ = writeln!(out);
        // Rows.
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x:>10}");
            for (_, ys) in &self.series {
                let _ = write!(out, " {:>10.3}", ys[i]);
            }
            let _ = writeln!(out);
        }
        // Winner line: who wins at the largest thread count, by what
        // factor over the runner-up (the paper's headline comparisons).
        if let Some(last) = self.xs.len().checked_sub(1) {
            let mut at_max: Vec<(&str, f64)> = self
                .series
                .iter()
                .map(|(n, ys)| (n.as_str(), ys[last]))
                .collect();
            at_max.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            if at_max.len() >= 2 && at_max[1].1 > 0.0 {
                let _ = writeln!(
                    out,
                    "#  at {} threads: {} leads {} by {:.2}x",
                    self.xs[last],
                    at_max[0].0,
                    at_max[1].0,
                    at_max[0].1 / at_max[1].1
                );
            }
        }
        // Extra (unplotted) columns as a footnote block.
        if !self.extras.is_empty() {
            let _ = write!(out, "#  counters:{:>8}", self.x_label);
            for (name, _) in &self.extras {
                let _ = write!(out, " {name:>18}");
            }
            let _ = writeln!(out);
            for (i, x) in self.xs.iter().enumerate() {
                let _ = write!(out, "#  {x:>17}");
                for (_, ys) in &self.extras {
                    let _ = write!(out, " {:>18.1}", ys[i]);
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Renders a terminal plot of the figure: one column per x value,
    /// one letter per series (legend below), y linearly scaled into
    /// `height` rows. The shape-reading companion to
    /// [`render_table`](Self::render_table) — crossovers and scaling
    /// trends are visible at a glance, as in the paper's figures.
    pub fn render_ascii_plot(&self, height: usize) -> String {
        let height = height.max(4);
        let mut out = String::new();
        if self.series.is_empty() || self.xs.is_empty() {
            let _ = writeln!(out, "## {} — no data", self.title);
            return out;
        }
        let y_max = self
            .series
            .iter()
            .flat_map(|(_, ys)| ys.iter().copied())
            .fold(0.0_f64, f64::max)
            .max(f64::MIN_POSITIVE);

        // Marker per series: A, B, C, …
        let marker = |s: usize| (b'A' + (s % 26) as u8) as char;
        // Column width per x point.
        const COL: usize = 6;
        let width = self.xs.len() * COL;

        let _ = writeln!(
            out,
            "## {} — {} (plot, y-max {:.3})",
            self.title, self.y_unit, y_max
        );
        let mut grid = vec![vec![' '; width]; height];
        for (si, (_, ys)) in self.series.iter().enumerate() {
            for (xi, &y) in ys.iter().enumerate() {
                let row_f = (y / y_max) * (height - 1) as f64;
                let row = height - 1 - (row_f.round() as usize).min(height - 1);
                let col = xi * COL + COL / 2;
                // Overlapping points: keep the first marker, mark the
                // collision with '*' only if different series collide.
                let cell = &mut grid[row][col];
                *cell = match *cell {
                    ' ' => marker(si),
                    c if c == marker(si) => c,
                    _ => '*',
                };
            }
        }
        for (i, row) in grid.iter().enumerate() {
            let y_here = y_max * (height - 1 - i) as f64 / (height - 1) as f64;
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{y_here:>9.2} |{}", line.trim_end());
        }
        let _ = write!(out, "{:>9} +", "");
        let _ = writeln!(out, "{}", "-".repeat(width));
        let _ = write!(out, "{:>11}", "");
        for x in &self.xs {
            let _ = write!(out, "{x:^COL$}");
        }
        let _ = writeln!(out);
        let _ = write!(out, "# legend:");
        for (si, (name, _)) in self.series.iter().enumerate() {
            let _ = write!(out, " {}={name}", marker(si));
        }
        let _ = writeln!(out, "  (*=overlap)");
        out
    }

    /// Renders CSV (`threads,<series...>,<extras...>` header then one
    /// row per x; extra columns come after the plotted series).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "threads");
        for (name, _) in self.series.iter().chain(&self.extras) {
            let _ = write!(out, ",{name}");
        }
        let _ = writeln!(out);
        for (i, x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for (_, ys) in self.series.iter().chain(&self.extras) {
                let _ = write!(out, ",{:.6}", ys[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes the CSV next to the given directory as `<stem>.csv`.
    pub fn write_csv(&self, dir: &Path, stem: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{stem}.csv")), self.render_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("test", vec![1, 2, 4]);
        f.add_series("SEC", vec![1.0, 2.0, 4.0]);
        f.add_series("TRB", vec![1.0, 1.5, 1.2]);
        f
    }

    #[test]
    fn table_contains_all_points_and_winner() {
        let t = sample().render_table();
        assert!(t.contains("SEC"));
        assert!(t.contains("TRB"));
        assert!(t.contains("4.000"));
        assert!(t.contains("SEC leads TRB"));
        assert!(t.contains("3.33x"));
    }

    #[test]
    fn y_unit_relabels_the_header() {
        let f = Figure::new("degrees", vec![1]).y_unit("% of ops");
        assert!(f.render_table().contains("(% of ops)"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "threads,SEC,TRB");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("1,"));
    }

    #[test]
    fn extra_columns_reach_csv_and_table_footnote_but_not_the_plot() {
        let mut f = sample();
        f.add_extra("SEC_grows", vec![0.0, 2.0, 5.0]);
        f.add_extra("SEC_shrinks", vec![0.0, 1.0, 3.0]);
        let csv = f.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "threads,SEC,TRB,SEC_grows,SEC_shrinks");
        assert!(lines[3].starts_with("4,"));
        assert!(lines[3].contains(",5.000000,3.000000"));
        let table = f.render_table();
        assert!(table.contains("counters:"));
        assert!(table.contains("SEC_grows"));
        // The plot must ignore extras (their scale is unrelated).
        let plot = f.render_ascii_plot(8);
        assert!(!plot.contains("SEC_grows"));
    }

    #[test]
    #[should_panic(expected = "extra column length")]
    fn mismatched_extra_panics() {
        let mut f = Figure::new("bad", vec![1, 2]);
        f.add_extra("x", vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "series length")]
    fn mismatched_series_panics() {
        let mut f = Figure::new("bad", vec![1, 2]);
        f.add_series("x", vec![1.0]);
    }

    #[test]
    fn ascii_plot_contains_markers_and_legend() {
        let plot = sample().render_ascii_plot(8);
        assert!(plot.contains("A=SEC"));
        assert!(plot.contains("B=TRB"));
        assert!(plot.contains('A'), "series A plotted");
        assert!(plot.contains('|'), "y axis drawn");
        assert!(plot.contains('+'), "origin drawn");
        // 8 data rows + axis + x labels + legend.
        assert!(plot.lines().count() >= 11);
    }

    #[test]
    fn ascii_plot_handles_empty_figure() {
        let f = Figure::new("empty", vec![]);
        assert!(f.render_ascii_plot(8).contains("no data"));
    }

    #[test]
    fn ascii_plot_marks_overlap() {
        let mut f = Figure::new("collide", vec![1]);
        f.add_series("a", vec![5.0]);
        f.add_series("b", vec![5.0]); // same point → '*'
        let plot = f.render_ascii_plot(6);
        assert!(
            plot.contains('*'),
            "colliding series must show overlap:\n{plot}"
        );
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("sec_workload_table_test");
        sample().write_csv(&dir, "fig_test").unwrap();
        let content = std::fs::read_to_string(dir.join("fig_test.csv")).unwrap();
        assert!(content.starts_with("threads,"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
