//! Algorithm dispatch: construct any of the evaluated stacks, queues,
//! counters or maps and run a measurement against it.

use crate::runner::{
    run_counter_throughput, run_map_throughput, run_queue_throughput, run_throughput, RunConfig,
    RunResult,
};
use core::fmt;
use sec_baselines::{
    CcStack, EbStack, FcStack, LockedHashMap, LockedQueue, LockedStack, MsQueue, TreiberHpStack,
    TreiberStack, TsiStack,
};
use sec_core::{
    AggregatorPolicy, BatchReport, CollectorStats, SecConfig, SecCounter, SecMap, SecQueue,
    SecStack,
};

/// One of the evaluated stack algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// SEC with `k` aggregators (the paper's default is 2).
    Sec {
        /// Number of aggregators.
        aggregators: usize,
    },
    /// SEC with elastic sharding: the active aggregator count moves in
    /// `[min_k, max_k]` under the contention monitor (DESIGN.md §8).
    SecAdaptive {
        /// Lower bound on the active aggregator count.
        min_k: usize,
        /// Upper bound on the active aggregator count.
        max_k: usize,
    },
    /// Treiber stack.
    Trb,
    /// Elimination-backoff stack.
    Eb,
    /// Flat-combining stack.
    Fc,
    /// CC-Synch stack.
    Cc,
    /// Interval timestamped stack.
    Tsi,
    /// Treiber stack over hazard-pointer reclamation (ablation lineup).
    TrbHp,
    /// Mutex-protected sequential stack (sanity floor, not in the
    /// paper's figures).
    Lck,
    /// The SEC-derived batched-combining FIFO queue (DESIGN.md §9).
    SecQueue,
    /// Michael–Scott queue (the queue family's Treiber).
    MsQ,
    /// Mutex-protected `VecDeque` (the queue family's sanity floor).
    LckQ,
    /// The combining fetch-and-add counter (DESIGN.md §12); measured
    /// through [`run_counter_throughput`] (update draws → `fetch_add`,
    /// peek draws → `load`).
    SecCounter,
    /// The SEC-derived batched-combining hash map (DESIGN.md §13);
    /// measured through [`run_map_throughput`] under
    /// [`RunConfig::map_mix`] / [`RunConfig::key_dist`].
    SecMap,
    /// Mutex-protected `HashMap` (the map family's sanity floor).
    LckMap,
}

/// The lineup of Figure 2/3: SEC (2 aggregators) plus the five
/// competitors, in the paper's legend order.
pub const ALL_COMPETITORS: [Algo; 6] = [
    Algo::Cc,
    Algo::Eb,
    Algo::Fc,
    Algo::Sec { aggregators: 2 },
    Algo::Trb,
    Algo::Tsi,
];

/// The extended lineup: the paper's six plus the two auxiliary stacks
/// (hazard-pointer Treiber, mutex floor). Used by the validation binary
/// and the ablation benchmarks.
pub const EXTENDED_LINEUP: [Algo; 8] = [
    Algo::Cc,
    Algo::Eb,
    Algo::Fc,
    Algo::Sec { aggregators: 2 },
    Algo::Trb,
    Algo::Tsi,
    Algo::TrbHp,
    Algo::Lck,
];

/// The queue lineup of the `queue_bench` binary: the SEC-derived queue
/// against the Michael–Scott reference and the locked floor.
pub const QUEUE_LINEUP: [Algo; 3] = [Algo::SecQueue, Algo::MsQ, Algo::LckQ];

/// The map lineup of the `map_bench` binary: the SEC-derived map
/// against the locked floor.
pub const MAP_LINEUP: [Algo; 2] = [Algo::SecMap, Algo::LckMap];

/// One SEC family per structure kind — the validation/soak sweep that
/// proves every family is reachable from the harness (stack, elastic
/// stack, queue, counter, map).
pub const SEC_FAMILIES: [Algo; 5] = [
    Algo::Sec { aggregators: 2 },
    Algo::SecAdaptive { min_k: 1, max_k: 4 },
    Algo::SecQueue,
    Algo::SecCounter,
    Algo::SecMap,
];

impl Algo {
    /// The paper's legend label.
    pub fn label(&self) -> String {
        match self {
            Algo::Sec { aggregators: 2 } => "SEC".into(),
            Algo::Sec { aggregators } => format!("SEC_Agg{aggregators}"),
            Algo::SecAdaptive { min_k, max_k } => format!("SEC_Ada{min_k}to{max_k}"),
            Algo::Trb => "TRB".into(),
            Algo::Eb => "EB".into(),
            Algo::Fc => "FC".into(),
            Algo::Cc => "CC".into(),
            Algo::Tsi => "TSI".into(),
            Algo::TrbHp => "TRB-HP".into(),
            Algo::Lck => "LCK".into(),
            Algo::SecQueue => "SEC-Q".into(),
            Algo::MsQ => "MS".into(),
            Algo::LckQ => "LCK-Q".into(),
            Algo::SecCounter => "SecCounter".into(),
            Algo::SecMap => "SecMap".into(),
            Algo::LckMap => "LCK-M".into(),
        }
    }

    /// The label for the aggregator-count ablations (`fig4`,
    /// `adaptive_k`): like [`label`](Self::label), except a static
    /// SEC series always carries its K — `SEC_Agg2`, not the
    /// fig2-legend `SEC` — so the ablation columns stay comparable
    /// across K. Single owner of that naming rule; the bench binaries
    /// must not re-encode it.
    pub fn ablation_label(&self) -> String {
        match self {
            Algo::Sec { aggregators } => format!("SEC_Agg{aggregators}"),
            _ => self.label(),
        }
    }

    /// `true` for the queue-family variants (dispatched through
    /// [`run_queue_throughput`]).
    pub fn is_queue(&self) -> bool {
        matches!(self, Algo::SecQueue | Algo::MsQ | Algo::LckQ)
    }

    /// `true` for the map-family variants (dispatched through
    /// [`run_map_throughput`], driven by [`RunConfig::map_mix`] and
    /// [`RunConfig::key_dist`]).
    pub fn is_map(&self) -> bool {
        matches!(self, Algo::SecMap | Algo::LckMap)
    }

    /// `true` for the counter family (dispatched through
    /// [`run_counter_throughput`]).
    pub fn is_counter(&self) -> bool {
        matches!(self, Algo::SecCounter)
    }
}

impl fmt::Display for Algo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Measurement outcome plus SEC's per-run batch instrumentation (only
/// populated for the SEC families — [`Algo::Sec`] /
/// [`Algo::SecAdaptive`] / [`Algo::SecQueue`] / [`Algo::SecCounter`] /
/// [`Algo::SecMap`]; feeds Tables 1–3, the elastic-sharding ablation
/// and the queue/map benches' batching columns).
#[derive(Debug, Clone, Copy)]
pub struct AlgoRun {
    /// Throughput measurement.
    pub result: RunResult,
    /// SEC batching/elimination/combining report, if applicable.
    pub sec_report: Option<BatchReport>,
    /// Active aggregator count at the end of the run (SEC only; equals
    /// the configured `K` for a fixed policy).
    pub sec_active: Option<usize>,
    /// Reclamation/recycling counters (SEC family only): retired/
    /// freed/cached plus the recycle hit/miss/overflow totals that
    /// feed the `recycle` CSV columns (DESIGN.md §10). Read after the
    /// workers join, so the per-thread counters have been flushed.
    pub reclaim: Option<CollectorStats>,
}

/// Constructs a fresh instance of `algo` sized for the run and measures
/// it under `cfg`.
pub fn run_algo(algo: Algo, cfg: &RunConfig) -> AlgoRun {
    // One extra registration slot for the prefill handle; an explicit
    // capacity override models provisioned headroom (never less).
    let cap = cfg.sec_capacity.unwrap_or(0).max(cfg.threads + 1);
    // The RunConfig overrides, applied uniformly to every SEC family
    // that takes a whole `SecConfig` (stack, counter, map; the queue
    // applies the same overrides through its builders below).
    let overridden = |sec_config: SecConfig| {
        let sec_config = match cfg.sec_policy {
            Some(policy) => sec_config.aggregator_policy(policy),
            None => sec_config,
        };
        let sec_config = match cfg.recycle {
            Some(recycle) => sec_config.recycle(recycle),
            None => sec_config,
        };
        let sec_config = match cfg.wait {
            Some(wait) => sec_config.wait_policy(wait),
            None => sec_config,
        };
        let sec_config = match cfg.freezer_yields {
            Some(yields) => sec_config.freezer_yields(yields),
            None => sec_config,
        };
        match cfg.trace {
            Some(trace) => sec_config.trace(trace),
            None => sec_config,
        }
    };
    // Durable runs build through the family's `durable()` constructor
    // (which owns its SecConfig — see `RunConfig::durable`); the temp
    // heap file of a file-backed run is removed once the measurement
    // is torn down.
    let durable = cfg.durable.map(|setup| setup.policy());
    let cleanup_heap = |path: &Option<std::path::PathBuf>| {
        if let Some(p) = path {
            let _ = std::fs::remove_file(p);
        }
    };
    let run_sec = |sec_config: SecConfig| {
        let stack: SecStack<u64> = match &durable {
            Some((policy, _)) => {
                SecStack::durable(cap, policy.clone()).expect("create durable stack")
            }
            None => SecStack::with_config(overridden(sec_config)),
        };
        let result = run_throughput(&stack, cfg);
        let run = AlgoRun {
            result,
            sec_report: Some(stack.stats().report()),
            sec_active: Some(stack.active_aggregators()),
            reclaim: Some(stack.reclaim_stats()),
        };
        drop(stack);
        if let Some((_, path)) = &durable {
            cleanup_heap(path);
        }
        run
    };
    match algo {
        Algo::Sec { aggregators } => run_sec(SecConfig::new(aggregators, cap)),
        Algo::SecAdaptive { min_k, max_k } => run_sec(
            SecConfig::new(max_k, cap).aggregator_policy(AggregatorPolicy::adaptive(min_k, max_k)),
        ),
        Algo::Trb => AlgoRun {
            result: run_throughput(&TreiberStack::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::Eb => AlgoRun {
            result: run_throughput(&EbStack::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::Fc => AlgoRun {
            result: run_throughput(&FcStack::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::Cc => AlgoRun {
            result: run_throughput(&CcStack::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::Tsi => AlgoRun {
            result: run_throughput(&TsiStack::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::TrbHp => AlgoRun {
            result: run_throughput(&TreiberHpStack::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::Lck => AlgoRun {
            result: run_throughput(&LockedStack::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::SecQueue => {
            let queue: SecQueue<u64> = match &durable {
                Some((policy, _)) => {
                    SecQueue::durable(cap, policy.clone()).expect("create durable queue")
                }
                None => {
                    let mut queue: SecQueue<u64> = SecQueue::new(cap);
                    if let Some(recycle) = cfg.recycle {
                        queue = queue.recycle_policy(recycle);
                    }
                    if let Some(wait) = cfg.wait {
                        queue = queue.wait_policy(wait);
                    }
                    if let Some(yields) = cfg.freezer_yields {
                        queue = queue.freezer_yields(yields);
                    }
                    if let Some(trace) = cfg.trace {
                        queue = queue.trace_config(trace);
                    }
                    queue
                }
            };
            let result = run_queue_throughput(&queue, cfg);
            let run = AlgoRun {
                result,
                sec_report: Some(queue.stats().report()),
                sec_active: None,
                reclaim: Some(queue.reclaim_stats()),
            };
            drop(queue);
            if let Some((_, path)) = &durable {
                cleanup_heap(path);
            }
            run
        }
        Algo::MsQ => AlgoRun {
            result: run_queue_throughput(&MsQueue::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::LckQ => AlgoRun {
            result: run_queue_throughput(&LockedQueue::<u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
        Algo::SecCounter => {
            let counter = match &durable {
                Some((policy, _)) => {
                    SecCounter::durable(cap, policy.clone()).expect("create durable counter")
                }
                None => SecCounter::with_config(overridden(SecConfig::new(2, cap))),
            };
            let result = run_counter_throughput(&counter, cfg);
            let run = AlgoRun {
                result,
                sec_report: Some(counter.stats().report()),
                sec_active: Some(counter.active_aggregators()),
                reclaim: Some(counter.reclaim_stats()),
            };
            drop(counter);
            if let Some((_, path)) = &durable {
                cleanup_heap(path);
            }
            run
        }
        Algo::SecMap => {
            let map: SecMap<u64, u64> = match &durable {
                Some((policy, _)) => {
                    SecMap::durable(cap, policy.clone()).expect("create durable map")
                }
                None => SecMap::with_config(overridden(SecConfig::new(2, cap))),
            };
            let result = run_map_throughput(&map, cfg);
            let run = AlgoRun {
                result,
                sec_report: Some(map.stats().report()),
                sec_active: Some(map.active_aggregators()),
                reclaim: Some(map.reclaim_stats()),
            };
            drop(map);
            if let Some((_, path)) = &durable {
                cleanup_heap(path);
            }
            run
        }
        Algo::LckMap => AlgoRun {
            result: run_map_throughput(&LockedHashMap::<u64, u64>::new(cap), cfg),
            sec_report: None,
            sec_active: None,
            reclaim: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mix;
    use std::time::Duration;

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(Algo::Sec { aggregators: 2 }.label(), "SEC");
        assert_eq!(Algo::Sec { aggregators: 4 }.label(), "SEC_Agg4");
        assert_eq!(Algo::Sec { aggregators: 2 }.ablation_label(), "SEC_Agg2");
        assert_eq!(Algo::SecQueue.ablation_label(), "SEC-Q");
        assert_eq!(
            Algo::SecAdaptive { min_k: 1, max_k: 5 }.label(),
            "SEC_Ada1to5"
        );
        assert_eq!(Algo::Trb.label(), "TRB");
        assert_eq!(Algo::Tsi.label(), "TSI");
    }

    #[test]
    fn adaptive_algo_runs_and_reports_active_count() {
        let cfg = RunConfig {
            duration: Duration::from_millis(20),
            prefill: 64,
            ..RunConfig::new(3, Mix::UPDATE_100)
        };
        let out = run_algo(Algo::SecAdaptive { min_k: 1, max_k: 4 }, &cfg);
        assert!(out.result.ops > 0);
        let active = out.sec_active.expect("adaptive SEC reports active k");
        assert!((1..=4).contains(&active), "active {active} out of range");
        let report = out.sec_report.expect("adaptive SEC reports batch stats");
        assert_eq!(report.eliminated + report.combined, report.ops);
    }

    #[test]
    fn run_config_policy_overrides_algo_policy() {
        use sec_core::AggregatorPolicy;
        let cfg = RunConfig {
            duration: Duration::from_millis(10),
            prefill: 16,
            sec_policy: Some(AggregatorPolicy::Fixed(3)),
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let out = run_algo(Algo::Sec { aggregators: 1 }, &cfg);
        assert_eq!(out.sec_active, Some(3), "override wins over the variant");
    }

    #[test]
    fn durable_setup_runs_every_sec_family() {
        use crate::DurableSetup;
        for algo in SEC_FAMILIES {
            let cfg = RunConfig {
                duration: Duration::from_millis(15),
                prefill: 64,
                durable: Some(DurableSetup::volatile()),
                ..RunConfig::new(2, Mix::UPDATE_50)
            };
            let out = run_algo(algo, &cfg);
            assert!(out.result.ops > 0, "{algo} made no durable progress");
        }
    }

    #[test]
    fn durable_file_backed_run_cleans_up_its_heap() {
        use crate::DurableSetup;
        let cfg = RunConfig {
            duration: Duration::from_millis(15),
            prefill: 64,
            durable: Some(DurableSetup::file_backed()),
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let out = run_algo(Algo::SecCounter, &cfg);
        assert!(out.result.ops > 0);
        // The generated temp heap must be gone once the run returns.
        let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(&format!("sec-durable-run-{}-", std::process::id())))
            .collect();
        assert!(
            leftovers.is_empty(),
            "heap files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn extended_lineup_labels_are_distinct() {
        let labels: std::collections::HashSet<String> =
            EXTENDED_LINEUP.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), EXTENDED_LINEUP.len());
    }

    #[test]
    fn every_algorithm_runs_the_mixed_workload() {
        for algo in EXTENDED_LINEUP {
            let cfg = RunConfig {
                duration: Duration::from_millis(15),
                prefill: 64,
                ..RunConfig::new(2, Mix::UPDATE_50)
            };
            let out = run_algo(algo, &cfg);
            assert!(out.result.ops > 0, "{algo} made no progress");
        }
    }

    #[test]
    fn sec_run_reports_batch_stats() {
        let cfg = RunConfig {
            duration: Duration::from_millis(15),
            prefill: 64,
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let out = run_algo(Algo::Sec { aggregators: 2 }, &cfg);
        let report = out.sec_report.expect("SEC must report batch stats");
        assert!(report.batches > 0);
        assert_eq!(report.eliminated + report.combined, report.ops);
    }

    #[test]
    fn queue_lineup_runs_the_update_workload() {
        for algo in QUEUE_LINEUP {
            assert!(algo.is_queue());
            let cfg = RunConfig {
                duration: Duration::from_millis(15),
                prefill: 64,
                ..RunConfig::new(2, Mix::UPDATE_100)
            };
            let out = run_algo(algo, &cfg);
            assert!(out.result.ops > 0, "{algo} made no progress");
            assert!(out.sec_active.is_none(), "{algo}: queues have no active K");
        }
    }

    #[test]
    fn sec_queue_reports_batch_stats() {
        let cfg = RunConfig {
            duration: Duration::from_millis(15),
            prefill: 64,
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let out = run_algo(Algo::SecQueue, &cfg);
        let report = out.sec_report.expect("SEC-Q must report batch stats");
        assert!(report.batches > 0);
        assert_eq!(report.eliminated, 0, "queue batches are homogeneous");
        assert_eq!(report.combined, report.ops);
        assert_eq!(report.resizes(), 0, "queues do not resize aggregators");
    }

    #[test]
    fn queue_labels_are_distinct_from_stack_labels() {
        let mut labels: std::collections::HashSet<String> =
            EXTENDED_LINEUP.iter().map(|a| a.label()).collect();
        for a in QUEUE_LINEUP {
            assert!(labels.insert(a.label()), "{a} collides with a stack label");
            assert!(!a.label().is_empty());
        }
    }

    #[test]
    fn sec_runs_report_reclaim_stats_and_honor_recycle_override() {
        use sec_core::RecyclePolicy;
        let cfg = RunConfig {
            duration: Duration::from_millis(15),
            prefill: 64,
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let out = run_algo(Algo::Sec { aggregators: 2 }, &cfg);
        let rs = out.reclaim.expect("SEC reports reclaim stats");
        assert!(
            rs.recycle_hits > 0,
            "the default policy must reuse blocks: {rs:?}"
        );

        let cfg_off = RunConfig {
            recycle: Some(RecyclePolicy::Off),
            ..cfg
        };
        for algo in [Algo::Sec { aggregators: 2 }, Algo::SecQueue] {
            let out = run_algo(algo, &cfg_off);
            let rs = out.reclaim.expect("reclaim stats present when off");
            assert_eq!(rs.recycle_hits, 0, "{algo}: Off must not hit");
            assert_eq!(rs.cached, 0, "{algo}: Off must not cache");
        }
        assert!(
            run_algo(Algo::Trb, &cfg).reclaim.is_none(),
            "non-SEC runs carry no collector snapshot"
        );
    }

    #[test]
    fn wait_policy_override_reaches_both_sec_families() {
        use sec_core::WaitPolicy;
        // Contention is manufactured, not hoped for: a single
        // aggregator plus a widened freezer yield window (both plumbed
        // through `RunConfig`, like the wait policy under test) makes
        // the seq-0 announcer donate its quantum mid-protocol, so even
        // a 1-core host — whose scheduler otherwise runs short rounds
        // near-sequentially, parking nothing — gets waiters announcing
        // into the open batch and parking on it (spin phase cut to
        // zero). The retry loop stays as a backstop so no single
        // scheduling outcome decides the assertion.
        for algo in [Algo::Sec { aggregators: 1 }, Algo::SecQueue] {
            let mut parked = 0;
            for round in 0..10 {
                let cfg = RunConfig {
                    duration: Duration::from_millis(20),
                    prefill: 64,
                    wait: Some(WaitPolicy::SpinThenPark { spin_rounds: 0 }),
                    freezer_yields: Some(4),
                    seed: 0xBEEF ^ round,
                    ..RunConfig::new(4, Mix::UPDATE_100)
                };
                let rep = run_algo(algo, &cfg).sec_report.expect("SEC reports");
                parked += rep.parks;
                if parked > 0 {
                    break;
                }
            }
            assert!(parked > 0, "{algo}: no park recorded in 10 rounds");
        }
    }

    #[test]
    fn counter_algo_runs_and_reports_batch_stats() {
        let cfg = RunConfig {
            duration: Duration::from_millis(15),
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let out = run_algo(Algo::SecCounter, &cfg);
        assert!(out.result.ops > 0);
        let report = out.sec_report.expect("SecCounter must report batch stats");
        assert!(report.batches > 0);
        assert_eq!(report.eliminated, 0, "counter batches are homogeneous");
        assert_eq!(report.combined, report.ops);
        assert!(out.sec_active.is_some());
        assert!(out.reclaim.is_some());
    }

    #[test]
    fn map_lineup_runs_and_sec_map_reports_batch_stats() {
        use crate::spec::{KeyDist, MapMix};
        for algo in MAP_LINEUP {
            assert!(algo.is_map());
            let cfg = RunConfig {
                duration: Duration::from_millis(15),
                prefill: 64,
                map_mix: MapMix::WRITE_HEAVY,
                key_dist: KeyDist::Zipfian {
                    keys: 128,
                    theta: 0.99,
                },
                ..RunConfig::new(2, Mix::UPDATE_100)
            };
            let out = run_algo(algo, &cfg);
            assert!(out.result.ops > 0, "{algo} made no progress");
            if algo == Algo::SecMap {
                let report = out.sec_report.expect("SecMap must report batch stats");
                assert!(report.batches > 0);
                assert_eq!(report.eliminated, 0, "map batches are homogeneous");
                assert_eq!(report.combined, report.ops);
            } else {
                assert!(out.sec_report.is_none(), "{algo} has no batch stats");
            }
        }
    }

    #[test]
    fn sec_families_cover_all_five_kinds_with_distinct_labels() {
        let labels: std::collections::HashSet<String> =
            SEC_FAMILIES.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), SEC_FAMILIES.len());
        assert!(labels.contains("SecCounter"));
        assert!(labels.contains("SecMap"));
        assert!(SEC_FAMILIES.iter().any(|a| a.is_queue()));
        assert!(SEC_FAMILIES.iter().any(|a| a.is_counter()));
        assert!(SEC_FAMILIES.iter().any(|a| a.is_map()));
    }

    #[test]
    fn sec_policy_override_reaches_counter_and_map() {
        use sec_core::AggregatorPolicy;
        let cfg = RunConfig {
            duration: Duration::from_millis(10),
            prefill: 16,
            sec_policy: Some(AggregatorPolicy::Adaptive {
                min_k: 3,
                max_k: 3,
                window: 64,
            }),
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        for algo in [Algo::SecCounter, Algo::SecMap] {
            let out = run_algo(algo, &cfg);
            assert_eq!(out.sec_active, Some(3), "{algo}: override wins");
        }
    }

    #[test]
    fn non_sec_runs_have_no_batch_stats() {
        let cfg = RunConfig {
            duration: Duration::from_millis(10),
            prefill: 16,
            ..RunConfig::new(1, Mix::UPDATE_100)
        };
        assert!(run_algo(Algo::Trb, &cfg).sec_report.is_none());
    }
}
