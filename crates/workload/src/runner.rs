//! The throughput measurement loop (§6 "Methodology").

use crate::spec::{KeyDist, MapMix, MapOpKind, Mix, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sec_core::counter::SecCounter;
use sec_core::{
    AggregatorPolicy, ConcurrentMap, ConcurrentQueue, ConcurrentStack, DurablePolicy,
    LogGranularity, MapHandle, QueueHandle, RecyclePolicy, StackHandle, SyncMode, WaitPolicy,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Parameters of one measurement.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Measurement duration. The paper runs 5 s; the figure binaries
    /// default to 250 ms so a full sweep finishes on a laptop, with a
    /// `--duration-ms` flag to restore the paper's setting.
    pub duration: Duration,
    /// Elements pushed before the measurement starts (paper: 1000).
    pub prefill: usize,
    /// Operation mix.
    pub mix: Mix,
    /// Upper bound (exclusive) for random pushed values (paper: values
    /// drawn uniformly from a range).
    pub value_range: u64,
    /// Base RNG seed; thread `t` of run `r` uses a deterministic
    /// function of (seed, t, r) so runs are reproducible.
    pub seed: u64,
    /// Aggregator policy applied when the measured algorithm is SEC
    /// (`None` keeps the policy implied by the [`Algo`] variant:
    /// `Fixed(k)` for [`Algo::Sec`], the variant's own range for
    /// [`Algo::SecAdaptive`]). Ignored by the other algorithms.
    ///
    /// [`Algo`]: crate::Algo
    /// [`Algo::Sec`]: crate::Algo::Sec
    /// [`Algo::SecAdaptive`]: crate::Algo::SecAdaptive
    pub sec_policy: Option<AggregatorPolicy>,
    /// Node-recycling policy override for the SEC family (`None` keeps
    /// each structure's default, [`RecyclePolicy::per_thread`]).
    /// Ignored by the non-SEC algorithms. Lets the benches sweep the
    /// recycling ablation without a separate [`Algo`] variant.
    ///
    /// [`Algo`]: crate::Algo
    pub recycle: Option<RecyclePolicy>,
    /// Blocking-wait policy override for the SEC family (`None` keeps
    /// each structure's default, [`WaitPolicy::spin_then_park`]).
    /// Ignored by the non-SEC algorithms. Lets the `oversub` bench
    /// sweep spin/yield/park without a separate [`Algo`] variant.
    ///
    /// [`Algo`]: crate::Algo
    pub wait: Option<WaitPolicy>,
    /// Freezer aggregation-backoff override for the SEC family, in
    /// `yield_now` calls (`None` keeps each structure's default —
    /// `SecConfig::freezer_yields`). Ignored by the non-SEC
    /// algorithms. Widening the window grows batches when threads
    /// outnumber cores (the `freezer_backoff` ablation); tests also
    /// use it to manufacture deterministic waiter/combiner overlap on
    /// hosts whose scheduler would otherwise run short workloads
    /// near-sequentially.
    pub freezer_yields: Option<u32>,
    /// Operation mix for the map family (used instead of `mix` by
    /// [`run_map_throughput`]; ignored by the stack/queue runners).
    pub map_mix: MapMix,
    /// Key distribution for the map family. Uniform spreads the
    /// announcements over the shards; zipfian concentrates them on the
    /// hot keys' shards — the regime that exercises the elastic
    /// monitor.
    pub key_dist: KeyDist,
    /// Registration-capacity override (`None` → `threads + 1`, the
    /// tight default). A deployment normally provisions a structure for
    /// its peak thread count, not its current one; benches set this to
    /// model that headroom, which also feeds the elastic monitor's
    /// per-shard share (capacity / active shards — DESIGN.md §8).
    /// Values below `threads + 1` are clamped up to it.
    pub sec_capacity: Option<usize>,
    /// sec-trace configuration for the SEC family (`None` keeps
    /// tracing off, the zero-overhead default). Only takes effect when
    /// the workspace is built with the `trace` cargo feature; without
    /// it the config is carried but no recorder is constructed.
    /// Ignored by the non-SEC algorithms.
    pub trace: Option<sec_core::TraceConfig>,
    /// Durable-logging setup for the SEC families (`None` keeps the
    /// ordinary in-memory structures). When set, [`run_algo`] builds
    /// the SEC structure with its `durable()` constructor instead, so
    /// every operation flows through the persistent redo log
    /// (DESIGN.md §16) — the knob `durable_bench` sweeps to price the
    /// flush-per-batch discipline. Durable construction bypasses
    /// `SecConfig`, so `sec_policy`/`recycle`/`wait`/`freezer_yields`
    /// are ignored on durable runs; non-SEC algorithms ignore this
    /// entirely.
    ///
    /// [`run_algo`]: crate::run_algo
    pub durable: Option<DurableSetup>,
}

impl RunConfig {
    /// A config with the paper's structural defaults (1000-element
    /// prefill) at a laptop-friendly duration.
    pub fn new(threads: usize, mix: Mix) -> Self {
        Self {
            threads: threads.max(1),
            duration: Duration::from_millis(250),
            prefill: 1000,
            mix,
            value_range: 100_000,
            seed: 0xC0FFEE,
            sec_policy: None,
            recycle: None,
            wait: None,
            freezer_yields: None,
            map_mix: MapMix::READ_HEAVY,
            key_dist: KeyDist::Uniform { keys: 1024 },
            sec_capacity: None,
            trace: None,
            durable: None,
        }
    }
}

/// Copyable description of a durable-logging run, lowered to a
/// [`DurablePolicy`] by [`DurableSetup::policy`] at construction time.
/// `RunConfig` is `Copy` (the figure binaries fan it out with struct
/// update syntax in nested sweep loops), so it cannot hold a
/// `DurablePolicy` directly — the policy's heap mode owns a path or an
/// `Arc`. This subset covers what the benches sweep; anything fancier
/// (recovering into an existing heap, a caller-chosen path) builds the
/// structure itself instead of going through [`run_algo`].
///
/// [`run_algo`]: crate::run_algo
#[derive(Debug, Clone, Copy)]
pub struct DurableSetup {
    /// Heap backing: `false` → anonymous volatile heap (full logging
    /// code paths, no file I/O — the tier-1 default); `true` → a
    /// file-backed mmap at a generated path under the OS temp dir,
    /// removed after the run.
    pub file_backed: bool,
    /// Durable combining shards (dedicated log + aggregator pairs).
    pub shards: usize,
    /// Log records per shard. The log is not circular, so this bounds
    /// the run's total batch count (per-op granularity: op count) —
    /// size it from `duration × expected throughput` or the structure
    /// panics mid-run with a "durable log full" message.
    pub record_capacity: usize,
    /// Operation entries per record.
    pub batch_entries: usize,
    /// Flush discipline.
    pub sync: SyncMode,
    /// One record per batch (the combining win) or per op (the
    /// strawman `durable_bench` compares it against).
    pub granularity: LogGranularity,
}

/// Distinguishes concurrently generated temp-file names (the pid alone
/// is not enough: one bench process runs many durable measurements).
static DURABLE_TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl DurableSetup {
    /// Volatile-heap setup with geometry sized for short bench runs.
    pub fn volatile() -> Self {
        Self {
            file_backed: false,
            shards: 2,
            record_capacity: 1 << 15,
            batch_entries: 64,
            sync: SyncMode::None,
            granularity: LogGranularity::PerBatch,
        }
    }

    /// File-backed (mmap) setup; the runner generates and cleans up
    /// the temp path.
    pub fn file_backed() -> Self {
        Self {
            file_backed: true,
            ..Self::volatile()
        }
    }

    /// Lowers the setup to a concrete [`DurablePolicy`], generating a
    /// fresh temp path for file-backed runs. Returns the path so the
    /// caller can remove the heap file once the run is done.
    pub fn policy(&self) -> (DurablePolicy, Option<std::path::PathBuf>) {
        let (policy, path) = if self.file_backed {
            let path = std::env::temp_dir().join(format!(
                "sec-durable-run-{}-{}.heap",
                std::process::id(),
                DURABLE_TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            (DurablePolicy::file(&path), Some(path))
        } else {
            (DurablePolicy::volatile(), None)
        };
        (
            policy
                .shards(self.shards)
                .record_capacity(self.record_capacity)
                .batch_entries(self.batch_entries)
                .sync(self.sync)
                .granularity(self.granularity),
            path,
        )
    }
}

/// Outcome of one measurement.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Total completed operations across all threads.
    pub ops: u64,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
}

impl RunResult {
    /// Throughput in million operations per second (the paper's y-axis).
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Runs one throughput measurement against `stack`.
///
/// The stack must have been constructed for at least
/// `cfg.threads + 1` threads (one extra registration slot is used for
/// the prefill, and is released before the workers start).
pub fn run_throughput<S: ConcurrentStack<u64>>(stack: &S, cfg: &RunConfig) -> RunResult {
    // Prefill from the calling thread (paper: "a stack initially
    // prefilled with 1000 nodes").
    {
        let mut h = stack.register();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);
        for _ in 0..cfg.prefill {
            h.push(rng.gen_range(0..cfg.value_range.max(1)));
        }
    }

    let barrier = Barrier::new(cfg.threads + 1);
    let stop = AtomicBool::new(false);
    let mut per_thread_ops = vec![0u64; cfg.threads];

    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let stack = &stack;
                let barrier = &barrier;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = stack.register();
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    barrier.wait();
                    let mut ops = 0u64;
                    // Check the deadline every CHUNK ops to keep the
                    // clock off the hot path.
                    const CHUNK: u32 = 64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..CHUNK {
                            match cfg.mix.classify(rng.gen_range(0..100)) {
                                OpKind::Push => h.push(rng.gen_range(0..cfg.value_range.max(1))),
                                OpKind::Pop => {
                                    let _ = h.pop();
                                }
                                OpKind::Peek => {
                                    let _ = h.peek();
                                }
                            }
                        }
                        ops += CHUNK as u64;
                    }
                    ops
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for (t, h) in handles.into_iter().enumerate() {
            per_thread_ops[t] = h.join().expect("worker panicked");
        }
        start.elapsed()
    });

    RunResult {
        ops: per_thread_ops.iter().sum(),
        elapsed,
    }
}

/// Runs one throughput measurement against `queue` — the queue-family
/// twin of [`run_throughput`], sharing [`RunConfig`] so the figure
/// binaries sweep both families with one configuration type.
///
/// Queues have no read-only operation, so a [`Mix`] draw that would
/// `peek` a stack performs a `dequeue` here (the queue lineup is
/// normally measured under the peek-free mixes: `UPDATE_100`,
/// `PUSH_ONLY`, `POP_ONLY`).
///
/// The queue must have been constructed for at least `cfg.threads + 1`
/// threads (one extra registration slot is used for the prefill).
pub fn run_queue_throughput<Q: ConcurrentQueue<u64>>(queue: &Q, cfg: &RunConfig) -> RunResult {
    {
        let mut h = queue.register();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);
        for _ in 0..cfg.prefill {
            h.enqueue(rng.gen_range(0..cfg.value_range.max(1)));
        }
    }

    let barrier = Barrier::new(cfg.threads + 1);
    let stop = AtomicBool::new(false);
    let mut per_thread_ops = vec![0u64; cfg.threads];

    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let queue = &queue;
                let barrier = &barrier;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = queue.register();
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    barrier.wait();
                    let mut ops = 0u64;
                    const CHUNK: u32 = 64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..CHUNK {
                            match cfg.mix.classify(rng.gen_range(0..100)) {
                                OpKind::Push => h.enqueue(rng.gen_range(0..cfg.value_range.max(1))),
                                OpKind::Pop | OpKind::Peek => {
                                    let _ = h.dequeue();
                                }
                            }
                        }
                        ops += CHUNK as u64;
                    }
                    ops
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for (t, h) in handles.into_iter().enumerate() {
            per_thread_ops[t] = h.join().expect("queue worker panicked");
        }
        start.elapsed()
    });

    RunResult {
        ops: per_thread_ops.iter().sum(),
        elapsed,
    }
}

/// Runs one throughput measurement against `map` — the map-family twin
/// of [`run_throughput`], driven by [`RunConfig::map_mix`] (read/write
/// shares) and [`RunConfig::key_dist`] (uniform or zipfian key draws)
/// instead of the stack's `mix`.
///
/// The prefill inserts `cfg.prefill` keys drawn from the key
/// distribution (duplicates overwrite, so a zipfian prefill populates
/// the hot head densely and the tail sparsely, like a warmed cache).
///
/// The map must have been constructed for at least `cfg.threads + 1`
/// threads (one extra registration slot is used for the prefill).
pub fn run_map_throughput<M: ConcurrentMap<u64, u64>>(map: &M, cfg: &RunConfig) -> RunResult {
    let sampler = cfg.key_dist.sampler();
    {
        let mut h = map.register();
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5EED);
        for _ in 0..cfg.prefill {
            let k = sampler.sample(&mut rng);
            let _ = h.insert(k, rng.gen_range(0..cfg.value_range.max(1)));
        }
    }

    let barrier = Barrier::new(cfg.threads + 1);
    let stop = AtomicBool::new(false);
    let mut per_thread_ops = vec![0u64; cfg.threads];

    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let map = &map;
                let sampler = &sampler;
                let barrier = &barrier;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = map.register();
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    barrier.wait();
                    let mut ops = 0u64;
                    const CHUNK: u32 = 64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..CHUNK {
                            let key = sampler.sample(&mut rng);
                            match cfg.map_mix.classify(rng.gen_range(0..100)) {
                                MapOpKind::Get => {
                                    let _ = h.get(&key);
                                }
                                MapOpKind::Insert => {
                                    let _ = h.insert(key, rng.gen_range(0..cfg.value_range.max(1)));
                                }
                                MapOpKind::Remove => {
                                    let _ = h.remove(&key);
                                }
                            }
                        }
                        ops += CHUNK as u64;
                    }
                    ops
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for (t, h) in handles.into_iter().enumerate() {
            per_thread_ops[t] = h.join().expect("map worker panicked");
        }
        start.elapsed()
    });

    RunResult {
        ops: per_thread_ops.iter().sum(),
        elapsed,
    }
}

/// Runs one throughput measurement against `counter` — the
/// counter-family twin of [`run_throughput`], sharing [`RunConfig`].
///
/// The counter has two operations, not three; a [`Mix`] draw that
/// would push or pop performs a `fetch_add` (operand from
/// `value_range`), and a peek draw performs a `load`, so
/// [`Mix::UPDATE_10`] measures a read-heavy counter and
/// [`Mix::UPDATE_100`] a pure-RMW one. No prefill: a counter has no
/// contents to warm.
pub fn run_counter_throughput(counter: &SecCounter, cfg: &RunConfig) -> RunResult {
    let barrier = Barrier::new(cfg.threads + 1);
    let stop = AtomicBool::new(false);
    let mut per_thread_ops = vec![0u64; cfg.threads];

    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let counter = &counter;
                let barrier = &barrier;
                let stop = &stop;
                scope.spawn(move || {
                    let mut h = counter.register();
                    let mut rng = SmallRng::seed_from_u64(
                        cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    barrier.wait();
                    let mut ops = 0u64;
                    const CHUNK: u32 = 64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..CHUNK {
                            match cfg.mix.classify(rng.gen_range(0..100)) {
                                OpKind::Push | OpKind::Pop => {
                                    let _ = h.fetch_add(rng.gen_range(0..cfg.value_range.max(1)));
                                }
                                OpKind::Peek => {
                                    let _ = h.load();
                                }
                            }
                        }
                        ops += CHUNK as u64;
                    }
                    ops
                })
            })
            .collect();

        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for (t, h) in handles.into_iter().enumerate() {
            per_thread_ops[t] = h.join().expect("counter worker panicked");
        }
        start.elapsed()
    });

    RunResult {
        ops: per_thread_ops.iter().sum(),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sec_core::SecStack;

    #[test]
    fn runner_measures_positive_throughput() {
        let cfg = RunConfig {
            duration: Duration::from_millis(30),
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let stack: SecStack<u64> = SecStack::new(cfg.threads + 1);
        let r = run_throughput(&stack, &cfg);
        assert!(r.ops > 0);
        assert!(r.mops() > 0.0);
        assert!(r.elapsed >= cfg.duration);
    }

    #[test]
    fn runner_handles_every_preset_mix() {
        for mix in [
            Mix::UPDATE_100,
            Mix::UPDATE_50,
            Mix::UPDATE_10,
            Mix::PUSH_ONLY,
            Mix::POP_ONLY,
        ] {
            let cfg = RunConfig {
                duration: Duration::from_millis(10),
                prefill: 100,
                ..RunConfig::new(2, mix)
            };
            let stack: SecStack<u64> = SecStack::new(cfg.threads + 1);
            let r = run_throughput(&stack, &cfg);
            assert!(r.ops > 0, "{mix}");
        }
    }

    #[test]
    fn config_clamps_zero_threads() {
        assert_eq!(RunConfig::new(0, Mix::UPDATE_100).threads, 1);
    }

    #[test]
    fn queue_runner_measures_positive_throughput() {
        use sec_core::SecQueue;
        let cfg = RunConfig {
            duration: Duration::from_millis(30),
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let queue: SecQueue<u64> = SecQueue::new(cfg.threads + 1);
        let r = run_queue_throughput(&queue, &cfg);
        assert!(r.ops > 0);
        assert!(r.mops() > 0.0);
        assert!(r.elapsed >= cfg.duration);
    }

    #[test]
    fn queue_runner_maps_peek_draws_to_dequeue() {
        use sec_core::SecQueue;
        // A peek-heavy mix must still make progress on a queue.
        let cfg = RunConfig {
            duration: Duration::from_millis(10),
            prefill: 100,
            ..RunConfig::new(2, Mix::UPDATE_10)
        };
        let queue: SecQueue<u64> = SecQueue::new(cfg.threads + 1);
        assert!(run_queue_throughput(&queue, &cfg).ops > 0);
    }

    #[test]
    fn map_runner_measures_positive_throughput() {
        use sec_core::SecMap;
        let cfg = RunConfig {
            duration: Duration::from_millis(30),
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let map: SecMap<u64, u64> = SecMap::new(cfg.threads + 1);
        let r = run_map_throughput(&map, &cfg);
        assert!(r.ops > 0);
        assert!(r.mops() > 0.0);
        assert!(r.elapsed >= cfg.duration);
        // The prefill populated the map from the key distribution.
        assert!(!map.is_empty());
    }

    #[test]
    fn map_runner_handles_zipfian_and_write_heavy() {
        use sec_core::SecMap;
        let cfg = RunConfig {
            duration: Duration::from_millis(10),
            prefill: 100,
            map_mix: MapMix::WRITE_HEAVY,
            key_dist: KeyDist::Zipfian {
                keys: 64,
                theta: 0.99,
            },
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let map: SecMap<u64, u64> = SecMap::new(cfg.threads + 1);
        assert!(run_map_throughput(&map, &cfg).ops > 0);
    }

    #[test]
    fn counter_runner_measures_positive_throughput() {
        let cfg = RunConfig {
            duration: Duration::from_millis(30),
            ..RunConfig::new(2, Mix::UPDATE_100)
        };
        let counter = SecCounter::new(cfg.threads);
        let r = run_counter_throughput(&counter, &cfg);
        assert!(r.ops > 0);
        assert!(counter.load() > 0, "update draws reached fetch_add");
    }

    #[test]
    fn counter_runner_maps_peek_draws_to_load() {
        // Peek-only: loads never advance the counter.
        let cfg = RunConfig {
            duration: Duration::from_millis(10),
            ..RunConfig::new(2, Mix::new(0, 0, 100))
        };
        let counter = SecCounter::new(cfg.threads);
        assert!(run_counter_throughput(&counter, &cfg).ops > 0);
        assert_eq!(counter.load(), 0);
    }
}
